"""One attach path for metrics + I/O tracing.

The harness, the ``stats``/``trace`` CLI and crashcheck all used to
wire up an :class:`~repro.obs.Observer` (and sometimes an
:class:`~repro.disk.trace.IoTracer`) by hand, three slightly different
ways.  :func:`instrument` is the single helper: it builds the observer
(clock-bound when a disk is at hand), optionally attaches a tracer to
the disk, and hands both back.

    kit = instrument(disk, trace=True)
    fs = FSD.mount(disk, obs=kit.obs)
    ...
    kit.detach()          # stop tracing; the observer keeps its data
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.trace import IoTracer
from repro.obs import NULL_OBS, Observer


@dataclass
class Instrumentation:
    """What :func:`instrument` attached: an observer and, when tracing
    was requested, the tracer plus the disk it is attached to."""

    obs: object
    tracer: IoTracer | None = None
    disk: object = None

    def detach(self) -> None:
        """Detach the tracer from the disk (observer data survives)."""
        if self.disk is not None and getattr(self.disk, "tracer", None) is self.tracer:
            self.disk.tracer = None

    def __iter__(self):
        """Unpack as ``obs, tracer`` (the shape the old copies built)."""
        yield self.obs
        yield self.tracer


def instrument(
    disk=None, *, metrics: bool = True, trace: bool = False
) -> Instrumentation:
    """Attach observability to ``disk`` in one call.

    ``metrics`` builds an :class:`Observer` (bound to the disk's clock
    when a disk is given; pass ``metrics=False`` for :data:`NULL_OBS`).
    ``trace`` additionally attaches a fresh :class:`IoTracer` to the
    disk so every operation is recorded with its seek/rotation/transfer
    decomposition.
    """
    if metrics:
        obs = Observer(disk.clock) if disk is not None else Observer()
    else:
        obs = NULL_OBS
    tracer = None
    if trace:
        if disk is None:
            raise ValueError("trace=True needs a disk to attach to")
        tracer = IoTracer()
        disk.tracer = tracer
    return Instrumentation(obs=obs, tracer=tracer, disk=disk)
