"""JSONL export: metrics, spans and disk I/O events on one timeline.

Every exported line is one JSON object with a ``type`` field:

* ``{"type": "span", ...}``    — a finished :class:`SpanRecord`,
* ``{"type": "io", ...}``      — one :class:`IoEvent` from a disk tracer,
* ``{"type": "counter"|"gauge"|"histogram", ...}`` — one metric.

Because spans and I/O events are both timestamped off the simulated
clock, sorting by start time yields the single unified timeline the
paper's methodology implies: each high-level span contains exactly the
disk operations it caused.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.disk.trace import IoEvent
from repro.obs.metrics import Snapshot
from repro.obs.spans import SpanRecord


def span_dict(record: SpanRecord) -> dict:
    """JSON-friendly form of one finished span."""
    out = {
        "type": "span",
        "id": record.span_id,
        "parent": record.parent_id,
        "name": record.name,
        "depth": record.depth,
        "start_ms": record.start_ms,
        "end_ms": record.end_ms,
    }
    if record.attrs:
        out["attrs"] = dict(record.attrs)
    return out


def io_dict(event: IoEvent) -> dict:
    """JSON-friendly form of one disk I/O event."""
    return {
        "type": "io",
        "kind": event.kind,
        "address": event.address,
        "sectors": event.sectors,
        "start_ms": event.start_ms,
        "end_ms": event.start_ms + event.total_ms,
        "seek_ms": event.seek_ms,
        "rotational_ms": event.rotational_ms,
        "transfer_ms": event.transfer_ms,
        "cylinder_distance": event.cylinder_distance,
    }


def metric_dicts(snapshot: Snapshot) -> list[dict]:
    """One JSON-friendly record per metric in ``snapshot``."""
    out: list[dict] = []
    for name, value in snapshot.counters.items():
        out.append({"type": "counter", "name": name, "value": value})
    for name, value in snapshot.gauges.items():
        out.append({"type": "gauge", "name": name, "value": value})
    for name, hist in snapshot.histograms.items():
        out.append(
            {
                "type": "histogram",
                "name": name,
                "bounds": list(hist.bounds),
                "counts": list(hist.counts),
                "total": hist.total,
                "count": hist.count,
                "mean": hist.mean,
            }
        )
    return out


def timeline(
    spans: Iterable[SpanRecord], io_events: Iterable[IoEvent] = ()
) -> list[dict]:
    """Spans and disk events merged into one start-time-ordered list.

    At equal start times spans sort before I/O events and shallower
    spans before deeper ones, so a parent always precedes everything
    it contains.
    """
    rows: list[tuple[tuple, dict]] = []
    for record in spans:
        rows.append(
            ((record.start_ms, 0, record.depth, record.span_id),
             span_dict(record))
        )
    for index, event in enumerate(io_events):
        rows.append(((event.start_ms, 1, 0, index), io_dict(event)))
    rows.sort(key=lambda row: row[0])
    return [row[1] for row in rows]


def folded_stacks(spans: Iterable[SpanRecord]) -> list[str]:
    """Flamegraph folded-stack lines from a finished span log.

    Each line is ``name;child;grandchild <value>`` — the semicolon
    path from the root span down, and the *exclusive* simulated time
    of that frame (its duration minus its direct children's), in
    integer microseconds so standard flamegraph tooling (which expects
    integral sample counts) consumes the output directly.  Identical
    paths across the run are aggregated; zero-weight frames with no
    self time are kept only if they have no children (so leaf spans
    always appear).  Lines come out path-sorted, which is also what
    ``flamegraph.pl`` expects.
    """
    records = list(spans)
    by_id = {record.span_id: record for record in records}
    child_ms: dict[int, float] = {}
    has_children: set[int] = set()
    for record in records:
        if record.parent_id is not None and record.parent_id in by_id:
            child_ms[record.parent_id] = (
                child_ms.get(record.parent_id, 0.0) + record.duration_ms
            )
            has_children.add(record.parent_id)

    def path(record: SpanRecord) -> str:
        names = [record.name]
        cursor = record
        while cursor.parent_id is not None:
            parent = by_id.get(cursor.parent_id)
            if parent is None:
                break
            names.append(parent.name)
            cursor = parent
        return ";".join(reversed(names))

    weights: dict[str, int] = {}
    for record in records:
        exclusive_ms = record.duration_ms - child_ms.get(record.span_id, 0.0)
        value = max(0, round(exclusive_ms * 1000.0))
        if value == 0 and record.span_id in has_children:
            continue
        key = path(record)
        weights[key] = weights.get(key, 0) + value
    return [f"{key} {value}" for key, value in sorted(weights.items())]


def to_jsonl(records: Iterable[dict]) -> str:
    """Render records as one JSON object per line."""
    return "\n".join(json.dumps(record, sort_keys=True) for record in records)


def parse_jsonl(text: str) -> list[dict]:
    """Inverse of :func:`to_jsonl` (blank lines ignored)."""
    return [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]


def validate_timeline(records: list[dict]) -> list[str]:
    """Structural checks on an exported timeline; returns problems.

    Valid means: every span's end is at or after its start (simulated
    time is monotone), every child is contained in its parent's
    interval, and every parent reference resolves.
    """
    problems: list[str] = []
    spans = {r["id"]: r for r in records if r.get("type") == "span"}
    for record in spans.values():
        if record["end_ms"] < record["start_ms"]:
            problems.append(
                f"span {record['name']}#{record['id']} ends before it starts"
            )
        parent_id = record.get("parent")
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(
                f"span {record['name']}#{record['id']} has unknown "
                f"parent {parent_id}"
            )
            continue
        if not (
            parent["start_ms"] <= record["start_ms"]
            and record["end_ms"] <= parent["end_ms"]
        ):
            problems.append(
                f"span {record['name']}#{record['id']} escapes parent "
                f"{parent['name']}#{parent_id}"
            )
        if record["depth"] != parent["depth"] + 1:
            problems.append(
                f"span {record['name']}#{record['id']} depth "
                f"{record['depth']} != parent depth + 1"
            )
    return problems
