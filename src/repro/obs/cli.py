"""The ``repro stats`` and ``repro trace`` subcommands.

Both mount an image with an :class:`~repro.obs.Observer` attached, run
the deterministic scripted workload, and report what the instrumented
layers saw:

* ``stats`` prints every metric grouped by layer (or ``--json`` for
  one JSONL record per metric),
* ``trace`` prints the span tree (or ``--json`` for the unified
  span + disk-I/O JSONL timeline).

Neither command saves the image back by default — they are probes, not
mutations — pass ``--save`` to keep the workload's effects.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.data_cache import DEFAULT_READAHEAD_PAGES
from repro.core.fsd import FSD
from repro.disk.image import load_disk, save_disk
from repro.obs.export import folded_stacks, metric_dicts, timeline, to_jsonl
from repro.obs.instrument import instrument
from repro.obs.metrics import HistogramSnapshot, Snapshot
from repro.obs.workload import run_scripted_workload


def _run(args, trace_io: bool):
    """Mount with an observer, run the workload, unmount; returns
    ``(observer, tracer)``."""
    disk = load_disk(args.image)
    obs, tracer = instrument(disk, trace=trace_io)
    fs = FSD.mount(
        disk,
        obs=obs,
        sched=args.sched,
        data_cache_pages=getattr(args, "data_cache_pages", 0),
        readahead_pages=getattr(args, "readahead", DEFAULT_READAHEAD_PAGES),
        checkpoint_interval_ms=getattr(args, "checkpoint_ms", None),
    )
    run_scripted_workload(fs, ops=args.ops)
    fs.unmount()
    if args.save:
        save_disk(disk, args.image)
    return obs, tracer


def _fmt_value(value: float) -> str:
    return f"{value:g}"


def _print_stats_table(snapshot: Snapshot) -> None:
    for layer, metrics in sorted(snapshot.layers().items()):
        print(f"[{layer}]")
        for name, value in sorted(metrics.items()):
            if isinstance(value, HistogramSnapshot):
                buckets = " ".join(
                    f"{label}:{count}"
                    for label, count in value.nonzero_buckets()
                )
                print(
                    f"  {name:<32} count={value.count} "
                    f"mean={value.mean:.2f}  {buckets}"
                )
            else:
                print(f"  {name:<32} {_fmt_value(value)}")
        print()


def cmd_stats(args) -> int:
    """Run the scripted workload and report per-layer metrics."""
    obs, _ = _run(args, trace_io=False)
    snapshot = obs.snapshot()
    if args.json:
        print(to_jsonl(metric_dicts(snapshot)))
        return 0
    print(f"metrics after {args.ops} scripted ops on {args.image}:\n")
    _print_stats_table(snapshot)
    cache = snapshot.layers().get("cache", {})
    if getattr(args, "data_cache_pages", 0) <= 0:
        # A disabled cache records no lookups: say so instead of
        # printing a meaningless 0/0 ratio (or nothing at all).
        print("data cache: disabled (--data-cache-pages 0)")
    elif "cache.data.hits" in cache or "cache.data.misses" in cache:
        hit_ratio = cache.get("cache.data.hit_ratio", 0.0)
        accuracy = cache.get("cache.data.readahead_accuracy", 0.0)
        print(
            f"data cache: hit ratio {hit_ratio:.1%}, "
            f"read-ahead accuracy {accuracy:.1%}"
        )
    else:
        print("data cache: enabled, no lookups recorded")
    commit = snapshot.layers().get("commit", {})
    absorbed = commit.get("commit.ops_absorbed")
    if isinstance(absorbed, HistogramSnapshot) and absorbed.count:
        print(
            f"group commit: batching factor {absorbed.mean:.2f} "
            f"updates/force over {absorbed.count} forces"
        )
    wal = snapshot.layers().get("wal", {})
    if "wal.third_entries" in wal:
        ckpt = snapshot.layers().get("ckpt", {})
        pages = ckpt.get("ckpt.pages_written", 0)
        suffix = (
            f"; checkpointer wrote {_fmt_value(pages)} pages in background"
            if ckpt else "; checkpointer off"
        )
        print(
            f"log stall: {wal.get('wal.stall_ms', 0.0):.2f} ms "
            f"write-home across {_fmt_value(wal['wal.third_entries'])} "
            f"third entries{suffix}"
        )
    durable = commit.get("commit.durable_latency_ms")
    if isinstance(durable, HistogramSnapshot) and durable.count:
        print(
            "durable latency ms: "
            f"p50~{durable.percentile(0.50):.1f} "
            f"p95~{durable.percentile(0.95):.1f} "
            f"p99~{durable.percentile(0.99):.1f} "
            f"(bucket estimates, {durable.count} updates)"
        )
    return 0


def _print_span_tree(records) -> None:
    for record in sorted(records, key=lambda r: (r.start_ms, r.depth)):
        indent = "  " * record.depth
        attrs = ""
        if record.attrs:
            attrs = "  " + " ".join(
                f"{key}={value}" for key, value in sorted(record.attrs.items())
            )
        print(
            f"{record.start_ms:10.2f}ms {indent}{record.name} "
            f"({record.duration_ms:.2f}ms){attrs}"
        )


def cmd_trace(args) -> int:
    """Run the scripted workload and dump the span/I-O timeline."""
    obs, tracer = _run(args, trace_io=True)
    if args.folded:
        lines = folded_stacks(obs.span_records())
        text = "\n".join(lines)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote {len(lines)} folded stacks to {args.out}")
        else:
            print(text)
        return 0
    if args.json:
        text = to_jsonl(timeline(obs.span_records(), tracer.events))
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"wrote {len(text.splitlines())} records to {args.out}")
        else:
            print(text)
        return 0
    spans = obs.span_records()
    print(
        f"{len(spans)} spans, {len(tracer.events)} disk I/Os over "
        f"{args.ops} scripted ops on {args.image}:\n"
    )
    _print_span_tree(spans)
    return 0


def add_subparsers(sub) -> None:
    """Register ``stats`` and ``trace`` on the main argument parser."""
    p = sub.add_parser(
        "stats",
        help="run a scripted workload and print per-layer metrics",
    )
    p.add_argument("image")
    p.add_argument("--ops", type=int, default=100,
                   help="scripted operations to run (default 100)")
    p.add_argument("--json", action="store_true",
                   help="emit one JSONL record per metric")
    p.add_argument("--save", action="store_true",
                   help="save the image back after the workload")
    p.add_argument("--sched", choices=["fifo", "scan", "deadline"],
                   default="fifo",
                   help="I/O scheduler policy for the mount")
    p.add_argument("--data-cache-pages", type=int, default=0, metavar="N",
                   help="data-page cache capacity in sectors "
                        "(0 disables; default: 0)")
    p.add_argument("--readahead", type=int,
                   default=DEFAULT_READAHEAD_PAGES, metavar="N",
                   help="sequential read-ahead window in pages "
                        f"(default: {DEFAULT_READAHEAD_PAGES})")
    p.add_argument("--checkpoint-ms", type=float, default=None,
                   metavar="MS",
                   help="run the background checkpointer every MS "
                        "simulated ms (default: off)")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "trace",
        help="run a scripted workload and dump the span/IO timeline",
    )
    p.add_argument("image")
    p.add_argument("--ops", type=int, default=25,
                   help="scripted operations to run (default 25)")
    p.add_argument("--json", action="store_true",
                   help="emit the unified JSONL timeline")
    p.add_argument("--folded", action="store_true",
                   help="emit flamegraph folded stacks (exclusive "
                        "simulated time per span path, microseconds)")
    p.add_argument("--out",
                   help="with --json/--folded, write to this file")
    p.add_argument("--save", action="store_true",
                   help="save the image back after the workload")
    p.add_argument("--sched", choices=["fifo", "scan", "deadline"],
                   default="fifo",
                   help="I/O scheduler policy for the mount")
    p.add_argument("--data-cache-pages", type=int, default=0, metavar="N",
                   help="data-page cache capacity in sectors "
                        "(0 disables; default: 0)")
    p.add_argument("--readahead", type=int,
                   default=DEFAULT_READAHEAD_PAGES, metavar="N",
                   help="sequential read-ahead window in pages "
                        f"(default: {DEFAULT_READAHEAD_PAGES})")
    p.add_argument("--checkpoint-ms", type=float, default=None,
                   metavar="MS",
                   help="run the background checkpointer every MS "
                        "simulated ms (default: off)")
    p.set_defaults(fn=cmd_trace)
