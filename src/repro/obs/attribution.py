"""Per-operation causal tracing and latency attribution.

Hagmann's evaluation is an exercise in knowing *where the
milliseconds went* — seeks, rotations, transfers, log forces — yet
the multi-client traffic engine could only report opaque end-to-end
percentiles.  This module closes that gap: every client operation
gets a **trace id** at issue time, the id propagates through the
transaction brackets, the I/O scheduler's submission queue, the data
cache and the group-commit machinery, and the operation's end-to-end
latency is partitioned into named **phases** on the simulated clock:

=============  =====================================================
``retry``      issue → final attempt start: failed attempts plus the
               backoff waits between them (the client error contract;
               0 for ops that succeed first try)
``admission``  attempt start → transaction-bracket entry (log-space
               admission wait, plus any daemon force that ran at
               arrival)
``service``    the operation body: FSD work including disk I/O
``hold``       bracket held open for client processing (``hold_ms``)
``commit``     ``end_op`` → durable: waiting for the covering group
               commit (sync operations only)
``slack``      residual: streamed-read think gaps between chunks and
               event-loop scheduling slack
=============  =====================================================

The phases are computed from consecutive timestamps, so they
partition ``[issue, issue + latency]`` **exactly** — the property
tests pin ``sum(phases) == latency`` to float precision.  Beneath the
exact partition, a ``detail`` dict sub-attributes where it can:
seek/rotation/transfer milliseconds inside ``service`` (disk-stats
deltas around the body), commit-batch wait / log-append / publish
inside ``commit`` (force timing notes from the coordinator),
scheduler queue wait of the writebacks the operation submitted, data
cache hits/misses, and the txn-admission block reasons.

Attachment follows the ``NULL_OBS`` pattern: an
:class:`AttributionRecorder` hangs off ``observer.attribution``
(``None`` by default, including on :data:`~repro.obs.NULL_OBS`), and
every instrumented component guards with one attribute read — a
detached run performs no attribution work and records nothing.
Recording never touches the simulated clock, so an attributed run is
bit-identical on disk state and clock to an unattributed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FsError

#: the top-level phases, in timeline order.  Every operation's latency
#: is partitioned across exactly these (missing phases are 0.0).
PHASES = ("retry", "admission", "service", "hold", "commit", "slack")

#: detail keys always present in a finished trace's ``detail`` dict.
DETAIL_KEYS = (
    "disk_seek_ms",
    "disk_rotation_ms",
    "disk_transfer_ms",
    "service_other_ms",
    "commit_batch_wait_ms",
    "commit_log_append_ms",
    "commit_publish_ms",
    "queue_wait_ms",
    "cache_hits",
    "cache_misses",
)


@dataclass(slots=True)
class OpTrace:
    """One client operation's causal trace.

    Raw timestamps are simulated milliseconds; ``None`` marks a point
    the operation never reached (a read never enters a bracket, an
    async mutation never waits for durability).  ``phases`` is filled
    by :meth:`AttributionRecorder.op_finished`.

    The :data:`DETAIL_KEYS` sub-attribution counters live as slotted
    float fields rather than a per-trace dict — attribution overhead
    is dominated by garbage-collector pressure from tracked
    allocations, so the hot path allocates one slotted object per op
    and no containers (the :attr:`detail` property assembles the dict
    view on demand for reporting).
    """

    trace_id: int
    client: int
    kind: str
    name: str
    sync: bool
    issue_ms: float
    admitted_ms: float | None = None
    body_end_ms: float | None = None
    end_op_ms: float | None = None
    durable_ms: float | None = None
    finish_ms: float | None = None
    latency_ms: float = 0.0
    service_ms: float = 0.0
    admission_blocks: int = 0
    block_reasons: dict[str, int] | None = None
    error: bool = False
    #: how the op resolved under the error contract: ``None`` for a
    #: first-try success, else "retryable"/"fatal"/"degraded"/"timeout"
    #: (or ``None`` again when a retry eventually succeeded).
    error_class: str | None = None
    #: total attempts (1 = no retry); bumped by :meth:`op_retry`.
    attempts: int = 1
    #: when the *final* attempt began (issue_ms unless retried): the
    #: retry phase is everything before it.
    attempt_start_ms: float | None = None
    phases: dict[str, float] = field(default_factory=dict)
    disk_seek_ms: float = 0.0
    disk_rotation_ms: float = 0.0
    disk_transfer_ms: float = 0.0
    service_other_ms: float = 0.0
    commit_batch_wait_ms: float = 0.0
    commit_log_append_ms: float = 0.0
    commit_publish_ms: float = 0.0
    queue_wait_ms: float = 0.0
    cache_hits: float = 0.0
    cache_misses: float = 0.0

    @property
    def detail(self) -> dict[str, float]:
        """Dict view of the sub-attribution counters (reporting API;
        the recorder writes the slotted fields directly)."""
        return {key: getattr(self, key) for key in DETAIL_KEYS}

    @property
    def dominant_phase(self) -> str:
        """The phase holding the largest share of this op's latency."""
        if not self.phases:
            return "service"
        return max(PHASES, key=lambda p: self.phases.get(p, 0.0))

    def as_dict(self) -> dict:
        """JSON-ready form (raw marks + derived phases + detail)."""
        return {
            "trace_id": self.trace_id,
            "client": self.client,
            "kind": self.kind,
            "name": self.name,
            "sync": self.sync,
            "error": self.error,
            "error_class": self.error_class,
            "attempts": self.attempts,
            "issue_ms": self.issue_ms,
            "admitted_ms": self.admitted_ms,
            "body_end_ms": self.body_end_ms,
            "end_op_ms": self.end_op_ms,
            "durable_ms": self.durable_ms,
            "finish_ms": self.finish_ms,
            "latency_ms": self.latency_ms,
            "admission_blocks": self.admission_blocks,
            "block_reasons": dict(self.block_reasons or {}),
            "phases": dict(self.phases),
            "detail": self.detail,
        }


class _Segment:
    """One measured service segment (see
    :meth:`AttributionRecorder.measure`)."""

    __slots__ = ("recorder", "trace", "start_ms", "seek", "rotation",
                 "transfer", "previous")

    def __init__(self, recorder: "AttributionRecorder", trace: OpTrace):
        self.recorder = recorder
        self.trace = trace

    def __enter__(self) -> OpTrace:
        recorder = self.recorder
        clock = recorder.clock
        self.start_ms = clock.now_ms if clock is not None else 0.0
        stats = recorder.disk_stats
        if stats is not None:
            self.seek = stats.seek_ms
            self.rotation = stats.rotational_ms
            self.transfer = stats.transfer_ms
        else:
            self.seek = self.rotation = self.transfer = 0.0
        self.previous = recorder.current
        recorder.current = self.trace
        return self.trace

    def __exit__(self, exc_type, exc, tb) -> None:
        recorder = self.recorder
        trace = self.trace
        recorder.current = self.previous
        clock = recorder.clock
        now = clock.now_ms if clock is not None else 0.0
        trace.service_ms += now - self.start_ms
        trace.body_end_ms = now
        stats = recorder.disk_stats
        if stats is not None:
            trace.disk_seek_ms += stats.seek_ms - self.seek
            trace.disk_rotation_ms += stats.rotational_ms - self.rotation
            trace.disk_transfer_ms += stats.transfer_ms - self.transfer


class AttributionRecorder:
    """Collects :class:`OpTrace` records for one traffic run.

    The traffic engine calls the ``op_*`` lifecycle methods; the
    instrumented layers (scheduler, data cache, group commit, txn)
    call the ``note_*`` methods, keyed off :attr:`current` — the trace
    whose body is executing right now (operation bodies are atomic in
    the single-threaded simulation, so one slot suffices).
    """

    def __init__(self, clock=None, disk_stats=None):
        self.clock = clock
        self.disk_stats = disk_stats
        #: the trace whose operation body is currently executing.
        self.current: OpTrace | None = None
        self.traces: list[OpTrace] = []
        self._next_id = 1
        #: timing of the most recent group-commit force:
        #: (begin_ms, logged_ms, done_ms).
        self._last_force: tuple[float, float, float] | None = None
        self._force_begin_ms: float | None = None
        self._force_logged_ms: float | None = None

    def bind(self, fs) -> None:
        """Point the recorder at a mounted volume's clock and disk
        stats (the stats feed the seek/rotation/transfer detail)."""
        self.clock = fs.clock
        self.disk_stats = fs.io.stats

    def _now(self) -> float:
        return self.clock.now_ms if self.clock is not None else 0.0

    # ------------------------------------------------------------------
    # operation lifecycle (called by the traffic engine)
    # ------------------------------------------------------------------
    def op_issued(self, client: int, op, now_ms: float) -> OpTrace:
        """A client issued ``op``: assign the trace id, start the
        end-to-end window."""
        trace = OpTrace(
            trace_id=self._next_id,
            client=client,
            kind=op.kind,
            name=op.name,
            sync=getattr(op, "sync", False),
            issue_ms=now_ms,
        )
        self._next_id += 1
        self.traces.append(trace)
        return trace

    def op_blocked(self, trace: OpTrace, reason: str) -> None:
        """Admission refused; ``reason`` comes from
        :meth:`~repro.core.txn.TxnManager.block_reason`."""
        trace.admission_blocks += 1
        reasons = trace.block_reasons
        if reasons is None:
            reasons = trace.block_reasons = {}
        reasons[reason] = reasons.get(reason, 0) + 1

    def op_admitted(self, trace: OpTrace, now_ms: float) -> None:
        """The bracket opened (or, for non-mutating ops, the body is
        about to start): the admission phase ends here."""
        trace.admitted_ms = now_ms

    def measure(self, trace: OpTrace) -> "_Segment":
        """Measure one service segment (an op body or one streamed
        chunk): accumulates service time, sets :attr:`current` so the
        scheduler/data-cache/commit layers can stamp this trace, and
        charges the segment's disk seek/rotation/transfer deltas.

        Returns a context manager.  A slotted object reading the disk
        stats' floats directly (instead of snapshotting the dataclass)
        keeps per-segment cost low enough for streamed reads — this is
        the hottest attribution path.
        """
        return _Segment(self, trace)

    def op_error(self, trace: OpTrace, error_class: str | None = None) -> None:
        """The body raised (file vanished mid-stream, etc.)."""
        trace.error = True
        if error_class is not None:
            trace.error_class = error_class

    def op_retry(self, trace: OpTrace, resume_ms: float) -> None:
        """The error contract scheduled another attempt at
        ``resume_ms``: everything accumulated so far — the failed
        attempt's service and the backoff wait about to elapse — folds
        into the ``retry`` phase, and the per-attempt marks reset so
        the final attempt's phases are attributed cleanly."""
        trace.attempts += 1
        trace.attempt_start_ms = resume_ms
        trace.error = False
        trace.error_class = None
        trace.service_ms = 0.0
        trace.admitted_ms = None
        trace.body_end_ms = None
        trace.end_op_ms = None
        trace.durable_ms = None
        trace.disk_seek_ms = 0.0
        trace.disk_rotation_ms = 0.0
        trace.disk_transfer_ms = 0.0

    def op_end(self, trace: OpTrace, now_ms: float) -> None:
        """``end_op`` is about to run: the hold phase ends here."""
        trace.end_op_ms = now_ms

    def op_durable(self, trace: OpTrace, now_ms: float) -> None:
        """The covering group commit completed: close the commit phase
        and sub-attribute it against the force's timing notes."""
        trace.durable_ms = now_ms
        if trace.end_op_ms is None or self._last_force is None:
            return
        begin, logged, done = self._last_force
        trace.commit_batch_wait_ms += max(0.0, begin - trace.end_op_ms)
        trace.commit_log_append_ms += max(0.0, logged - begin)
        trace.commit_publish_ms += max(
            0.0, now_ms - max(logged, trace.end_op_ms)
        )

    def op_finished(self, trace: OpTrace, latency_ms: float) -> None:
        """The latency window closed: partition it into phases.

        The partition is exact by construction: every explicit phase
        is a difference of consecutive marks and ``slack`` absorbs the
        remainder, so ``sum(phases) == latency`` to float precision.
        """
        trace.finish_ms = trace.issue_ms + latency_ms
        trace.latency_ms = latency_ms
        attempt_start = (
            trace.attempt_start_ms
            if trace.attempt_start_ms is not None
            else trace.issue_ms
        )
        attempt_start = min(attempt_start, trace.finish_ms)
        retry = attempt_start - trace.issue_ms
        admitted = trace.admitted_ms if trace.admitted_ms is not None else attempt_start
        admission = max(0.0, admitted - attempt_start)
        service = trace.service_ms
        # An async mutation's latency window closes at body end while
        # its bracket stays open for hold_ms more: clip the hold (and
        # commit) segments to the window so phases partition exactly
        # what the client experienced.
        hold = 0.0
        if trace.end_op_ms is not None and trace.body_end_ms is not None:
            hold = max(
                0.0,
                min(trace.end_op_ms, trace.finish_ms) - trace.body_end_ms,
            )
        commit = 0.0
        if trace.durable_ms is not None and trace.end_op_ms is not None:
            commit = max(
                0.0,
                min(trace.durable_ms, trace.finish_ms) - trace.end_op_ms,
            )
        slack = latency_ms - (retry + admission + service + hold + commit)
        trace.phases = {
            "retry": retry,
            "admission": admission,
            "service": service,
            "hold": hold,
            "commit": commit,
            "slack": slack,
        }
        disk = (
            trace.disk_seek_ms
            + trace.disk_rotation_ms
            + trace.disk_transfer_ms
        )
        trace.service_other_ms = max(0.0, service - disk)

    # ------------------------------------------------------------------
    # layer notes (called by sched / data cache / group commit)
    # ------------------------------------------------------------------
    @property
    def current_trace_id(self) -> int | None:
        return self.current.trace_id if self.current is not None else None

    def note_queue_wait(self, trace_id: int, wait_ms: float) -> None:
        """A write this trace submitted just dispatched after
        ``wait_ms`` in the scheduler queue (background debt — not part
        of the latency partition).  Trace ids are issued sequentially
        from 1 and :attr:`traces` appends in issue order, so the id
        indexes the list directly."""
        index = trace_id - 1
        if 0 <= index < len(self.traces):
            trace = self.traces[index]
            if trace.trace_id == trace_id:
                trace.queue_wait_ms += max(0.0, wait_ms)

    def note_cache(self, hit: bool) -> None:
        """A data-cache demand lookup inside the current body."""
        trace = self.current
        if trace is None:
            return
        if hit:
            trace.cache_hits += 1
        else:
            trace.cache_misses += 1

    def force_begin(self, now_ms: float) -> None:
        """A group-commit force started writing its batch."""
        self._force_begin_ms = now_ms
        self._force_logged_ms = None

    def force_logged(self, now_ms: float) -> None:
        """The force's log records (and durability barrier) are on the
        platter."""
        self._force_logged_ms = now_ms

    def force_done(self, now_ms: float) -> None:
        """The force completed (shadow bitmap applied, hooks run);
        durable waiters are about to wake against this timing."""
        begin = self._force_begin_ms if self._force_begin_ms is not None else now_ms
        logged = self._force_logged_ms if self._force_logged_ms is not None else now_ms
        self._last_force = (begin, logged, now_ms)
        self._force_begin_ms = None
        self._force_logged_ms = None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.traces)

    def report(self, slo_ms: float | None = None) -> dict:
        """Aggregate every finished trace into the attribution report
        (see :func:`build_report`)."""
        finished = [t for t in self.traces if t.finish_ms is not None]
        return build_report(finished, slo_ms=slo_ms)


def _pct(ordered: list[float], q: float) -> float:
    """:func:`~repro.obs.metrics.percentile` on an already-sorted list
    (the report sorts each series once instead of once per quantile)."""
    if not ordered:
        return 0.0
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _phase_summary(values: list[float], total_latency: float) -> dict:
    total = sum(values)
    ordered = sorted(values)
    return {
        "mean_ms": round(total / len(values), 4) if values else 0.0,
        "p50_ms": round(_pct(ordered, 0.50), 4),
        "p95_ms": round(_pct(ordered, 0.95), 4),
        "p99_ms": round(_pct(ordered, 0.99), 4),
        "total_ms": round(total, 4),
        "share": round(total / total_latency, 4) if total_latency else 0.0,
    }


def build_report(traces: list[OpTrace], slo_ms: float | None = None) -> dict:
    """The per-phase percentile attribution report.

    Percentiles are per-phase marginals (they do not sum — percentiles
    never do); the *means* and *totals* partition end-to-end latency
    exactly, and the ``p99`` section decomposes the mean latency of
    the ops at or above the p99 threshold, which again sums exactly.
    """
    if not traces:
        return {"ops": 0, "phases": {}, "consistency": {}, "p99": {}}
    latencies = [t.latency_ms for t in traces]
    total_latency = sum(latencies)
    phases = {
        name: _phase_summary(
            [t.phases.get(name, 0.0) for t in traces], total_latency
        )
        for name in PHASES
    }
    phase_total = sum(p["total_ms"] for p in phases.values())
    consistency = {
        "latency_total_ms": round(total_latency, 4),
        "phase_total_ms": round(phase_total, 4),
        "relative_error": round(
            abs(phase_total - total_latency) / total_latency, 6
        )
        if total_latency
        else 0.0,
    }
    ordered_latencies = sorted(latencies)
    p99_threshold = _pct(ordered_latencies, 0.99)
    tail = [t for t in traces if t.latency_ms >= p99_threshold]
    report = {
        "ops": len(traces),
        "errors": sum(1 for t in traces if t.error),
        "latency": {
            "mean_ms": round(total_latency / len(traces), 4),
            "p50_ms": round(_pct(ordered_latencies, 0.50), 4),
            "p95_ms": round(_pct(ordered_latencies, 0.95), 4),
            "p99_ms": round(p99_threshold, 4),
        },
        "phases": phases,
        "consistency": consistency,
        "p99": _tail_decomposition(tail, p99_threshold),
        "detail": _detail_totals(traces),
        "admission_blocks": _block_reasons(traces),
    }
    if slo_ms is not None:
        report["slo"] = slo_burn(traces, slo_ms)
    return report


def _tail_decomposition(tail: list[OpTrace], threshold: float) -> dict:
    """Where does p99 go: mean phase breakdown of the tail ops."""
    if not tail:
        return {"threshold_ms": round(threshold, 4), "ops": 0}
    mean_latency = sum(t.latency_ms for t in tail) / len(tail)
    breakdown = {
        name: round(
            sum(t.phases.get(name, 0.0) for t in tail) / len(tail), 4
        )
        for name in PHASES
    }
    dominant = max(breakdown, key=lambda name: breakdown[name])
    return {
        "threshold_ms": round(threshold, 4),
        "ops": len(tail),
        "mean_latency_ms": round(mean_latency, 4),
        "breakdown_ms": breakdown,
        "dominant_phase": dominant,
        "kinds": _count_by(tail, lambda t: t.kind),
    }


def _detail_totals(traces: list[OpTrace]) -> dict[str, float]:
    return {
        key: round(sum(getattr(t, key) for t in traces), 4)
        for key in DETAIL_KEYS
    }


def _block_reasons(traces: list[OpTrace]) -> dict[str, int]:
    out: dict[str, int] = {}
    for trace in traces:
        if not trace.block_reasons:
            continue
        for reason, count in trace.block_reasons.items():
            out[reason] = out.get(reason, 0) + count
    return dict(sorted(out.items()))


def _count_by(traces: list[OpTrace], key) -> dict[str, int]:
    out: dict[str, int] = {}
    for trace in traces:
        out[key(trace)] = out.get(key(trace), 0) + 1
    return dict(sorted(out.items()))


def slo_burn(traces: list[OpTrace], slo_ms: float) -> dict:
    """SLO burn diagnosis: every op whose end-to-end latency exceeded
    ``slo_ms``, with the phase that dominated it — the "where did my
    milliseconds go" answer per violation."""
    if slo_ms <= 0:
        raise FsError("slo_ms must be positive")
    violations = [t for t in traces if t.latency_ms > slo_ms]
    worst = sorted(violations, key=lambda t: -t.latency_ms)[:5]
    return {
        "slo_ms": slo_ms,
        "violations": len(violations),
        "violation_rate": round(len(violations) / len(traces), 4)
        if traces
        else 0.0,
        "dominant_phases": _count_by(violations, lambda t: t.dominant_phase),
        "kinds": _count_by(violations, lambda t: t.kind),
        "worst": [
            {
                "trace_id": t.trace_id,
                "client": t.client,
                "kind": t.kind,
                "name": t.name,
                "latency_ms": round(t.latency_ms, 4),
                "dominant_phase": t.dominant_phase,
                "phases": {k: round(v, 4) for k, v in t.phases.items()},
            }
            for t in worst
        ],
    }


def report_lines(report: dict) -> list[str]:
    """Human-readable attribution summary for the CLI."""
    if not report or not report.get("ops"):
        return ["attribution: no finished operations recorded"]
    lines = [
        f"attribution over {report['ops']} ops "
        f"(phase totals sum to end-to-end within "
        f"{report['consistency'].get('relative_error', 0.0):.4%}):",
        f"  {'phase':<10} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'mean':>8}  share",
    ]
    for name in PHASES:
        phase = report["phases"][name]
        lines.append(
            f"  {name:<10} {phase['p50_ms']:>8.2f} {phase['p95_ms']:>8.2f} "
            f"{phase['p99_ms']:>8.2f} {phase['mean_ms']:>8.2f}  "
            f"{phase['share']:.1%}"
        )
    tail = report.get("p99", {})
    if tail.get("ops"):
        breakdown = tail["breakdown_ms"]
        parts = "  ".join(
            f"{name} {breakdown[name]:.2f}" for name in PHASES
            if breakdown[name] > 0.0
        )
        lines.append(
            f"p99 tail ({tail['ops']} ops >= {tail['threshold_ms']:.2f} ms): "
            f"dominant phase {tail['dominant_phase']}; mean ms {parts}"
        )
    blocks = report.get("admission_blocks")
    if blocks:
        parts = ", ".join(f"{k} x{v}" for k, v in blocks.items())
        lines.append(f"admission blocks: {parts}")
    slo = report.get("slo")
    if slo:
        if slo["violations"]:
            parts = ", ".join(
                f"{phase} x{count}"
                for phase, count in slo["dominant_phases"].items()
            )
            lines.append(
                f"SLO burn ({slo['slo_ms']:.0f} ms): {slo['violations']} "
                f"violations ({slo['violation_rate']:.1%}) — dominant: "
                f"{parts}"
            )
            for op in slo["worst"][:3]:
                lines.append(
                    f"  worst: #{op['trace_id']} {op['kind']} "
                    f"{op['name']} {op['latency_ms']:.2f} ms "
                    f"({op['dominant_phase']} "
                    f"{op['phases'][op['dominant_phase']]:.2f} ms)"
                )
        else:
            lines.append(
                f"SLO burn ({slo['slo_ms']:.0f} ms): no violations"
            )
    return lines
