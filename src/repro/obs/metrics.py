"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The paper's whole evaluation is accounting — Hagmann scripts every
operation as seeks, latencies and transfers and validates the model to
~5% against measurement.  This registry extends that discipline above
the disk: every layer (WAL, group commit, cache, B-tree pager, VAM,
recovery, FSD facade) increments named metrics through an attached
:class:`~repro.obs.Observer`, and benchmarks subtract
:class:`Snapshot`\\ s to get deltas, mirroring ``DiskStats.__sub__``.

Metric names are dotted, with the layer as the first component
(``wal.records_appended``, ``commit.batch_pages``); everything that
groups or filters by layer keys off that prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FsError

#: generic power-of-two buckets for size-ish distributions.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


def percentile(values: list[float], q: float) -> float:
    """Exact linear-interpolated percentile of raw samples (``q`` in
    ``[0, 1]``); 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def bucket_index(bounds: tuple[float, ...], value: float) -> int:
    """Index of the first bucket whose upper bound holds ``value``
    (the last index is the overflow bucket)."""
    for index, bound in enumerate(bounds):
        if value <= bound:
            return index
    return len(bounds)


@dataclass
class Counter:
    """Monotonically increasing count (events, sectors, pages...)."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1) -> None:
        """Increase by ``amount`` (negative amounts raise)."""
        if amount < 0:
            raise FsError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Last-written level (free sectors, shadow size...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the level with its newest reading."""
        self.value = value


@dataclass
class Histogram:
    """Fixed-boundary histogram; ``bounds`` are inclusive upper bounds
    and one implicit overflow bucket follows the last bound."""

    name: str
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0

    def __post_init__(self) -> None:
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise FsError(f"histogram {self.name} needs ascending bounds")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample into its bucket."""
        self.counts[bucket_index(self.bounds, value)] += 1
        self.total += value

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        observed = self.count
        return self.total / observed if observed else 0.0


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable point-in-time copy of a histogram, delta-subtractable."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    total: float

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        observed = self.count
        return self.total / observed if observed else 0.0

    def __sub__(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise FsError("cannot subtract histograms with different bounds")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(
                a - b for a, b in zip(self.counts, other.counts)
            ),
            total=self.total - other.total,
        )

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 1]) by linear
        interpolation inside the containing bucket.  Samples past the
        last bound are attributed to the last bound (the estimate
        saturates there); 0.0 for an empty histogram."""
        observed = self.count
        if not observed:
            return 0.0
        target = q * observed
        cumulative = 0
        for index, count in enumerate(self.counts):
            if not count:
                continue
            lower = self.bounds[index - 1] if index >= 1 else 0.0
            if index >= len(self.bounds):
                return self.bounds[-1]
            cumulative += count
            if cumulative >= target:
                upper = self.bounds[index]
                covered = cumulative - count
                frac = (target - covered) / count
                return lower + (upper - lower) * min(max(frac, 0.0), 1.0)
        return self.bounds[-1]

    def nonzero_buckets(self) -> list[tuple[str, int]]:
        """(label, count) for every populated bucket, in bound order."""
        out = []
        for index, count in enumerate(self.counts):
            if not count:
                continue
            if index < len(self.bounds):
                label = f"<={_fmt_bound(self.bounds[index])}"
            else:
                label = f">{_fmt_bound(self.bounds[-1])}"
            out.append((label, count))
        return out


def _fmt_bound(bound: float) -> str:
    return f"{bound:g}"


@dataclass(frozen=True)
class Snapshot:
    """Point-in-time copy of a registry; subtract two for a delta,
    exactly like ``DiskStats`` windows."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def __sub__(self, other: "Snapshot") -> "Snapshot":
        counters = {
            name: value - other.counters.get(name, 0.0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, hist in self.histograms.items():
            before = other.histograms.get(name)
            histograms[name] = hist - before if before is not None else hist
        # Gauges are levels, not flows: a delta keeps the newer reading.
        return Snapshot(
            counters=counters,
            gauges=dict(self.gauges),
            histograms=histograms,
        )

    def counter(self, name: str, default: float = 0.0) -> float:
        """Counter value by name (``default`` when never touched)."""
        return self.counters.get(name, default)

    def layers(self) -> dict[str, dict[str, object]]:
        """All metrics grouped by their layer prefix (text before the
        first dot), for per-layer reporting."""
        out: dict[str, dict[str, object]] = {}
        for group in (self.counters, self.gauges, self.histograms):
            for name, value in group.items():
                layer = name.split(".", 1)[0]
                out.setdefault(layer, {})[name] = value
        return out

    def as_dict(self) -> dict[str, object]:
        """Plain-data form (JSON-friendly) of every metric."""
        data: dict[str, object] = {}
        data.update(self.counters)
        data.update(self.gauges)
        for name, hist in self.histograms.items():
            data[name] = {
                "bounds": list(hist.bounds),
                "counts": list(hist.counts),
                "total": hist.total,
            }
        return data


class MetricsRegistry:
    """Named metrics, created on first touch.

    Touching an existing name with a different metric type (or
    different histogram bounds) raises — one name, one meaning.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first touch."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first touch."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``; re-declaring with different
        ``bounds`` raises."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name=name, bounds=tuple(bounds))
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise FsError(f"metric {name} is not a histogram")
        elif metric.bounds != tuple(bounds):
            raise FsError(f"histogram {name} re-declared with new bounds")
        return metric

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name=name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise FsError(f"metric {name} is not a {cls.__name__.lower()}")
        return metric

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> Snapshot:
        """Immutable copy of every metric for the delta API."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramSnapshot] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = HistogramSnapshot(
                    bounds=metric.bounds,
                    counts=tuple(metric.counts),
                    total=metric.total,
                )
        return Snapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )
