"""Host-runtime profiling: where does *our* wall clock go.

Everything else in ``repro.obs`` measures simulated milliseconds; this
module measures the Python runtime itself.  The ROADMAP's raw-speed
item (≥5x real-time speedup on makedo at t300) needs to know which of
our functions burn the host CPU before anything can be batched away,
so ``repro profile <benchmark>`` wraps a named benchmark in
:mod:`cProfile`, prints a hotspot table, and writes a
``BENCH_profile.json`` baseline that ``repro bench diff`` can compare
across PRs.

Benchmarks run on a freshly formatted in-memory volume at the small
scale (no image file involved), so a profile is reproducible from a
bare checkout.
"""

from __future__ import annotations

import cProfile
import json
import platform
import pstats
import time
from pathlib import Path

from repro.core.fsd import FSD
from repro.disk.disk import SimDisk
from repro.errors import FsError
from repro.harness.adapters import FsdAdapter
from repro.harness.scenarios import SMALL

#: schema of the ``BENCH_profile.json`` document.
PROFILE_SCHEMA_VERSION = 1

#: hotspots reported per profile (the acceptance bar: top 20).
DEFAULT_TOP = 20

_SRC_MARKER = "/src/repro/"


def _fresh_fs() -> FSD:
    disk = SimDisk(geometry=SMALL.geometry)
    FSD.format(disk, SMALL.fsd_params)
    return FSD.mount(disk)


def _bench_makedo() -> None:
    from repro.workloads.makedo import MakeDoWorkload

    fs = _fresh_fs()
    adapter = FsdAdapter(fs)
    workload = MakeDoWorkload(modules=20)
    workload.setup(adapter)
    workload.run(adapter)
    fs.unmount()


def _bench_traffic() -> None:
    from repro.workloads.traffic import TrafficConfig, TrafficEngine

    fs = _fresh_fs()
    config = TrafficConfig(
        clients=20,
        ops_per_client=20,
        seed=1987,
        sync_fraction=0.1,
        population=20,
    )
    TrafficEngine(fs, config).run()
    fs.unmount()


def _bench_scripted() -> None:
    from repro.obs.workload import run_scripted_workload

    fs = _fresh_fs()
    run_scripted_workload(fs, ops=200)
    fs.unmount()


#: the named benchmarks ``repro profile`` accepts.
BENCHMARKS = {
    "makedo": _bench_makedo,
    "traffic": _bench_traffic,
    "scripted": _bench_scripted,
}


def _normalize_location(filename: str, line: int, func: str) -> str:
    """``repro/core/wal.py:123(append_records)`` for our code, the
    bare qualified form for stdlib/builtins — stable across checkouts
    so baselines diff cleanly."""
    if filename.startswith("~") or filename == "":
        return func
    marker = filename.find(_SRC_MARKER)
    if marker >= 0:
        rel = filename[marker + len("/src/"):]
    else:
        rel = Path(filename).name
    return f"{rel}:{line}({func})"


def run_profile(benchmark: str, top: int = DEFAULT_TOP) -> dict:
    """Profile one named benchmark; returns the JSON-ready document.

    ``hotspots`` holds the ``top`` functions by exclusive (tottime)
    host seconds, each with call counts, cumulative time, and its
    share of total profiled time.
    """
    try:
        run = BENCHMARKS[benchmark]
    except KeyError:
        raise FsError(
            f"unknown profile benchmark {benchmark!r} "
            f"(expected one of {sorted(BENCHMARKS)})"
        ) from None
    profiler = cProfile.Profile()
    wall_start = time.perf_counter()
    profiler.enable()
    try:
        run()
    finally:
        profiler.disable()
    total_wall_s = time.perf_counter() - wall_start
    stats = pstats.Stats(profiler)
    total_tt = sum(entry[2] for entry in stats.stats.values())
    ranked = sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True
    )
    hotspots = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in ranked[:top]:
        hotspots.append(
            {
                "function": _normalize_location(filename, line, func),
                "calls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
                "share": round(tt / total_tt, 4) if total_tt else 0.0,
            }
        )
    return {
        "benchmark": f"profile_{benchmark}",
        "schema_version": PROFILE_SCHEMA_VERSION,
        "python": platform.python_version(),
        "total_wall_s": round(total_wall_s, 4),
        "total_tottime_s": round(total_tt, 4),
        "calls": sum(entry[1] for entry in stats.stats.values()),
        "hotspots": hotspots,
    }


def profile_lines(document: dict) -> list[str]:
    """Human-readable hotspot table."""
    lines = [
        f"{document['benchmark']}: {document['total_wall_s']:.3f} s "
        f"wall, {document['calls']} calls "
        f"(python {document['python']})",
        f"  {'share':>6} {'tottime':>9} {'cumtime':>9} {'calls':>9}  "
        f"function",
    ]
    for spot in document["hotspots"]:
        lines.append(
            f"  {spot['share']:>6.1%} {spot['tottime_s']:>9.4f} "
            f"{spot['cumtime_s']:>9.4f} {spot['calls']:>9}  "
            f"{spot['function']}"
        )
    return lines


def cmd_profile(args) -> int:
    """The ``repro profile`` subcommand."""
    document = run_profile(args.benchmark, top=args.top)
    for line in profile_lines(document):
        print(line)
    if args.out:
        Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


def add_subparser(sub) -> None:
    """Register ``profile`` on the main argument parser."""
    p = sub.add_parser(
        "profile",
        help="cProfile a named benchmark and report host-runtime "
             "hotspots (wall clock, not simulated time)",
    )
    p.add_argument("benchmark", choices=sorted(BENCHMARKS))
    p.add_argument("--top", type=int, default=DEFAULT_TOP,
                   help=f"hotspots to report (default: {DEFAULT_TOP})")
    p.add_argument("--out", metavar="PATH",
                   help="write the profile document as JSON "
                        "(e.g. BENCH_profile.json)")
    p.set_defaults(fn=cmd_profile)
