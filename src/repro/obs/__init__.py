"""``repro.obs`` — the unified observability layer.

One :class:`Observer` per mounted volume collects three things:

* **metrics** — counters/gauges/histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry`, named ``layer.metric``,
* **spans** — nested timed regions (``with obs.span("commit.force")``)
  stamped off the simulated clock,
* **exports** — JSONL timelines that merge spans with the disk
  tracer's per-I/O events (:mod:`repro.obs.export`).

Attachment follows the ``IoTracer`` pattern: every instrumented
component holds ``self.obs = NULL_OBS`` by default, and the shared
:data:`NULL_OBS` singleton turns every call into a no-op — no registry
attached means zero simulated-time and zero behavioural difference.
``FSD.mount(disk, obs=Observer(disk.clock))`` attaches one observer
across all of a volume's layers.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    Snapshot,
)
from repro.obs.spans import NULL_SPAN, ActiveSpan, NullSpan, SpanLog, SpanRecord

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBS",
    "NULL_SPAN",
    "ActiveSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NullSpan",
    "Snapshot",
    "SpanLog",
    "SpanRecord",
    "DEFAULT_BUCKETS",
]


class Observer:
    """Metrics + spans for one volume, timestamped off one SimClock."""

    enabled = True

    def __init__(self, clock=None):
        #: the simulated clock spans read; rebound by ``FSD.mount`` so
        #: crash-sweep harnesses can reuse one observer across volumes.
        self.clock = clock
        self.metrics = MetricsRegistry()
        #: per-observer counter handle cache: ``count`` is the hottest
        #: obs call, so it skips the registry's type-checked lookup
        #: after the first touch of each name.
        self._counter_handles: dict = {}
        self.spans = SpanLog(now=self._now)
        #: optional :class:`~repro.obs.attribution.AttributionRecorder`;
        #: instrumented layers guard every note with one ``is None``
        #: check, so detached runs do no attribution work.
        self.attribution = None

    def _now(self) -> float:
        clock = self.clock
        return clock.now_ms if clock is not None else 0.0

    def bind_clock(self, clock) -> None:
        """Point span timestamps at ``clock`` (the mounting volume's)."""
        self.clock = clock

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Increment the counter ``name`` by ``amount``."""
        counter = self._counter_handles.get(name)
        if counter is None:
            counter = self.metrics.counter(name)
            self._counter_handles[name] = counter
        if amount < 0:
            counter.add(amount)  # raises: counters cannot decrease
        counter.value += amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its newest reading."""
        self.metrics.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.metrics.histogram(name, bounds).observe(value)

    def snapshot(self) -> Snapshot:
        """Immutable copy of every metric (for the delta API)."""
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str, /, **attrs) -> ActiveSpan:
        """Open a nested span (a context manager) named ``name``."""
        return self.spans.start(name, **attrs)

    def span_records(self) -> list[SpanRecord]:
        """Every finished span, in completion order."""
        return list(self.spans.records)


class NullObserver:
    """The detached observer: every operation is a no-op.

    Instrumented hot paths call through unconditionally; with this
    observer attached (the default) the calls read one attribute and
    return, never touching the simulated clock — op counts and
    simulated times are bit-identical to uninstrumented code.
    """

    enabled = False

    clock = None

    #: class attribute (never set on the shared :data:`NULL_OBS`); a
    #: fresh ``NullObserver()`` may carry a recorder for
    #: attribution-only runs with metrics off.
    attribution = None

    def bind_clock(self, clock) -> None:
        """No-op (the null observer has no clock to bind)."""

    def count(self, name: str, amount: float = 1) -> None:
        """No-op."""

    def gauge(self, name: str, value: float) -> None:
        """No-op."""

    def observe(self, name: str, value: float, bounds=DEFAULT_BUCKETS) -> None:
        """No-op."""

    def span(self, name: str, /, **attrs) -> NullSpan:
        """Return the shared no-op span."""
        return NULL_SPAN

    def snapshot(self) -> Snapshot:
        """An empty snapshot (nothing is ever recorded)."""
        return Snapshot()

    def span_records(self) -> list[SpanRecord]:
        """An empty list (nothing is ever recorded)."""
        return []


#: the shared detached observer every component starts with.
NULL_OBS = NullObserver()
