"""Deterministic scripted workload for the stats/trace CLI.

The ``repro stats`` and ``repro trace`` subcommands need a repeatable
op mix that exercises every instrumented layer: creates and writes (WAL
+ group commit + VAM + B-tree), opens/reads (cache + leader checks),
renames and deletes (shadow bitmap), lists (B-tree scans), plus
explicit forces so commit metrics appear even on short runs.  The
script is a fixed rotation — no randomness — so two runs over the same
image produce identical metrics and timelines.
"""

from __future__ import annotations

from repro.core.fsd import FSD

#: payload sized to span a few sectors so reads/writes hit the data path.
_PAYLOAD = b"observability-workload-".ljust(1536, b".")


def _paged_read(fs: FSD, handle) -> None:
    """Read a file one 512-byte page at a time, front to back."""
    for offset in range(0, handle.byte_size, 512):
        fs.read(handle, offset, min(512, handle.byte_size - offset))


def run_scripted_workload(fs: FSD, ops: int = 100) -> int:
    """Run ``ops`` deterministic operations against ``fs``.

    The rotation touches, in order: create, open, read, write (extend),
    list, rename, delete — then repeats over a growing/shrinking pool
    of ``obs/NNN`` files.  Ends with one explicit force so the final
    partial batch is committed and counted.  Returns the number of
    operations performed.
    """
    performed = 0
    live: list[str] = []
    serial = 0
    while performed < ops:
        step = performed % 7
        if step == 0 or not live:
            name = f"obs/{serial:03d}"
            serial += 1
            fs.create(name, _PAYLOAD)
            live.append(name)
        elif step == 1:
            fs.open(live[-1])
        elif step == 2:
            # Page-at-a-time read, the cached-client access pattern:
            # sequential pages let the data cache's read-ahead fire.
            _paged_read(fs, fs.open(live[-1]))
        elif step == 3:
            handle = fs.open(live[-1])
            fs.write(handle, handle.byte_size, _PAYLOAD[:512])
        elif step == 4:
            fs.list("obs/")
        elif step == 5:
            old = live.pop(0)
            renamed = f"obs/r{serial:03d}"
            serial += 1
            fs.rename(old, renamed)
            live.append(renamed)
            # The rename invalidated the file's cached pages, so this
            # re-read runs cold: sequential misses that trigger the
            # data cache's read-ahead (a no-op when the cache is off).
            _paged_read(fs, fs.open(renamed))
        else:
            fs.delete(live.pop(0))
        performed += 1
    fs.force()
    return performed
