"""Lightweight span tracing over the simulated clock.

A span brackets one logical operation (``with obs.span("wal.force",
records=n):``); spans nest on a per-log stack, every record carries its
parent id and depth, and all timestamps are ``SimClock.now_ms`` — never
wall clock, so traces are deterministic and line up exactly with the
disk's :class:`~repro.disk.trace.IoTracer` events on one timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    depth: int
    start_ms: float
    end_ms: float
    attrs: dict

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class ActiveSpan:
    """Context manager for one open span; ``set()`` attaches attributes
    discovered mid-span (batch sizes, record counts...)."""

    __slots__ = ("_log", "span_id", "parent_id", "name", "depth",
                 "start_ms", "attrs")

    def __init__(
        self,
        log: "SpanLog",
        span_id: int,
        parent_id: int | None,
        name: str,
        depth: int,
        start_ms: float,
        attrs: dict,
    ):
        self._log = log
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.start_ms = start_ms
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach (or overwrite) span attributes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._log.finish(self)


class NullSpan:
    """Shared no-op span for the detached (NULL observer) path."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        """No-op."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()


def _zero_ms() -> float:
    """Default clock for an unbound span log."""
    return 0.0


@dataclass
class SpanLog:
    """Collects finished spans; maintains the open-span stack."""

    now: Callable[[], float] = _zero_ms
    records: list[SpanRecord] = field(default_factory=list)
    _stack: list[ActiveSpan] = field(default_factory=list)
    _next_id: int = 1

    def start(self, name: str, /, **attrs) -> ActiveSpan:
        """Open a span nested under the current top of the stack."""
        stack = self._stack
        span_id = self._next_id
        self._next_id = span_id + 1
        span = ActiveSpan(
            self,
            span_id,
            stack[-1].span_id if stack else None,
            name,
            len(stack),
            self.now(),
            attrs,
        )
        stack.append(span)
        return span

    def finish(self, span: ActiveSpan) -> None:
        """Close ``span`` (and anything opened inside it)."""
        # Exceptions can unwind several spans at once; close everything
        # above (and including) the finishing span so nesting stays sound.
        stack = self._stack
        records = self.records
        while stack:
            top = stack.pop()
            records.append(
                SpanRecord(
                    top.span_id,
                    top.parent_id,
                    top.name,
                    top.depth,
                    top.start_ms,
                    self.now(),
                    dict(top.attrs),
                )
            )
            if top is span:
                break

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        self.records.clear()
