"""Trident disk labels as CFS used them (paper §2, Table 1).

"PARC file systems for these disks use the label to mark each sector
with information identifying the sector": a uid, the page number
within the file, and the page type (header, free, or data).  Before a
sector's data is read or written the label is verified in microcode;
file allocation, extension, contraction and deletion write the labels.

A free sector carries the all-zero label, which is what the simulated
disk returns for never-written label fields.
"""

from __future__ import annotations

from repro.disk.disk import FREE_LABEL, LABEL_BYTES
from repro.errors import CorruptMetadata
from repro.serial import Packer, Unpacker

PAGE_FREE = 0
PAGE_HEADER = 1
PAGE_DATA = 2
PAGE_NAME_TABLE = 3


def make_label(uid: int, page: int, page_type: int) -> bytes:
    """Build the 13-byte label (padded to the hardware's 16)."""
    if page_type not in (PAGE_FREE, PAGE_HEADER, PAGE_DATA, PAGE_NAME_TABLE):
        raise CorruptMetadata(f"bad label page type {page_type}")
    packer = Packer(capacity=LABEL_BYTES)
    packer.u64(uid)
    packer.u32(page)
    packer.u8(page_type)
    return packer.bytes(pad_to=LABEL_BYTES)


def free_label() -> bytes:
    """The all-zero label of an unallocated sector."""
    return FREE_LABEL


def parse_label(label: bytes) -> tuple[int, int, int]:
    """Decode a label into (uid, page, page_type); free sectors decode
    to (0, 0, PAGE_FREE)."""
    reader = Unpacker(label)
    uid = reader.u64()
    page = reader.u32()
    page_type = reader.u8()
    if page_type not in (PAGE_FREE, PAGE_HEADER, PAGE_DATA, PAGE_NAME_TABLE):
        raise CorruptMetadata(f"bad label page type {page_type}")
    return uid, page, page_type


def is_free(label: bytes) -> bool:
    """True when the label marks the sector free."""
    return label == FREE_LABEL


def data_labels(uid: int, first_page: int, count: int) -> list[bytes]:
    """Labels for ``count`` consecutive data pages starting at
    ``first_page``."""
    return [
        make_label(uid, first_page + offset, PAGE_DATA)
        for offset in range(count)
    ]


def header_labels(uid: int) -> list[bytes]:
    """Labels for the two header pages of a file."""
    return [make_label(uid, 0, PAGE_HEADER), make_label(uid, 1, PAGE_HEADER)]
