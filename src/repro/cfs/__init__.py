"""CFS — the label-based Cedar file system, the paper's baseline."""

from repro.cfs.cfs import CFS, CfsFile, CfsLayout, CfsOpCounts, CfsParams
from repro.cfs.header import HEADER_SECTORS, decode_header, encode_header
from repro.cfs.labels import (
    PAGE_DATA,
    PAGE_FREE,
    PAGE_HEADER,
    PAGE_NAME_TABLE,
    data_labels,
    free_label,
    header_labels,
    is_free,
    make_label,
    parse_label,
)
from repro.cfs.name_table import CfsNameTable, CfsNameTablePager
from repro.cfs.scavenger import ScavengeReport, scavenge

__all__ = [
    "CFS",
    "CfsFile",
    "CfsLayout",
    "CfsNameTable",
    "CfsNameTablePager",
    "CfsOpCounts",
    "CfsParams",
    "HEADER_SECTORS",
    "PAGE_DATA",
    "PAGE_FREE",
    "PAGE_HEADER",
    "PAGE_NAME_TABLE",
    "ScavengeReport",
    "data_labels",
    "decode_header",
    "encode_header",
    "free_label",
    "header_labels",
    "is_free",
    "make_label",
    "parse_label",
    "scavenge",
]
