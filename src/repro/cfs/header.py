"""CFS file headers (paper §2, Table 1).

"Header sectors contain file properties (e.g., the file's name, length
and create date) and a run table describing the extents of the file.
The header sectors serve about the same purpose as the inodes do in
the UNIX file system."  A CFS header occupies two consecutive sectors.

Note the redundancy the paper points out: the text name is stored both
here and in the file name table, and the run table can be recomputed
from the labels — that is what the scavenger exploits.
"""

from __future__ import annotations

from repro.core.types import FileProperties, Run, RunTable
from repro.errors import CorruptMetadata
from repro.serial import Packer, Unpacker, checksum

_HEADER_MAGIC = 0x43465348  # "CFSH"
#: sectors per header.
HEADER_SECTORS = 2


def encode_header(
    props: FileProperties, runs: RunTable, sector_bytes: int
) -> list[bytes]:
    """Serialize a header to its two sectors."""
    body = Packer()
    body.u64(props.uid)
    body.string(props.name)
    body.u16(props.version)
    body.u8(props.keep)
    body.u64(props.byte_size)
    body.f64(props.create_time_ms)
    body.u16(len(runs.runs))
    for run in runs.runs:
        body.u32(run.start)
        body.u16(run.count)
    payload = body.bytes()
    if len(payload) > 2 * sector_bytes - 12:
        raise CorruptMetadata(
            f"run table of {len(runs.runs)} runs overflows the header"
        )
    framed = Packer(capacity=2 * sector_bytes)
    framed.u32(_HEADER_MAGIC)
    framed.u32(checksum(payload))
    framed.u32(len(payload))
    framed.raw(payload)
    blob = framed.bytes(pad_to=2 * sector_bytes)
    return [blob[:sector_bytes], blob[sector_bytes:]]


def decode_header(
    sectors: list[bytes], sector_bytes: int
) -> tuple[FileProperties, RunTable]:
    """Parse a header from its two sectors."""
    blob = b"".join(sectors)
    reader = Unpacker(blob)
    if reader.u32() != _HEADER_MAGIC:
        raise CorruptMetadata("bad CFS header magic")
    expect = reader.u32()
    length = reader.u32()
    payload = reader.raw(length)
    if checksum(payload) != expect:
        raise CorruptMetadata("CFS header checksum mismatch")
    body = Unpacker(payload)
    uid = body.u64()
    name = body.string()
    version = body.u16()
    keep = body.u8()
    byte_size = body.u64()
    create_time = body.f64()
    run_count = body.u16()
    runs = RunTable([Run(body.u32(), body.u16()) for _ in range(run_count)])
    props = FileProperties(
        name=name,
        version=version,
        uid=uid,
        byte_size=byte_size,
        create_time_ms=create_time,
        keep=keep,
    )
    return props, runs
