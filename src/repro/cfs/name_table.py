"""CFS's file name table (paper Table 1, §5.3).

A B-tree mapping (name, version) to (uid, keep, header page 0 disk
address) — the properties and run table live in the file header, so
almost every operation that needs them costs a header read.

The CFS tree has the two weaknesses the paper calls out and FSD fixes:

* pages span **multiple disk sectors** and are written **in place**,
  so a crash mid-write can corrupt a page (the simulated disk's
  weak-atomic writes reproduce this), and
* multi-page operations (splits, joins) are **not atomic**, so a crash
  between page writes leaves the tree inconsistent — only the
  scavenger can repair it.

Pages are written through (no delayed write); a small read cache keeps
hot interior pages in memory, as the real system's buffering did.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.btree import BTree
from repro.cfs.labels import PAGE_NAME_TABLE, make_label
from repro.core.types import (
    FileProperties,
    decode_key,
    encode_key,
    name_prefix,
)
from repro.disk.clock import SimClock
from repro.disk.disk import SimDisk
from repro.errors import CorruptMetadata, VolumeFull
from repro.serial import Packer, Unpacker

#: CFS name-table pages span multiple sectors (the corruption source).
NT_PAGE_SECTORS = 2

#: uid under which the name-table extent's labels are written.
NAME_TABLE_UID = 0x4346534E54  # "CFSNT"


class CfsNameTablePager:
    """Write-through pager over the CFS name-table extent."""

    def __init__(
        self,
        disk: SimDisk,
        extent_start: int,
        nt_pages: int,
        cache_pages: int,
        clock: SimClock,
    ):
        self.disk = disk
        self.extent_start = extent_start
        self.nt_pages = nt_pages
        self.page_size = NT_PAGE_SECTORS * disk.geometry.sector_bytes
        self.clock = clock
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self._cache_capacity = cache_pages
        # Volatile allocation bitmap, rebuilt at mount by walking the
        # tree; CFS had no crash-consistent page allocator either.
        self._used: set[int] = set()
        self._cursor = 1
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def _address(self, page_no: int) -> int:
        if not (0 <= page_no < self.nt_pages):
            raise CorruptMetadata(f"CFS name-table page {page_no} out of range")
        return self.extent_start + page_no * NT_PAGE_SECTORS

    def _labels(self, page_no: int) -> list[bytes]:
        return [
            make_label(NAME_TABLE_UID, page_no * NT_PAGE_SECTORS + i, PAGE_NAME_TABLE)
            for i in range(NT_PAGE_SECTORS)
        ]

    # -- Pager protocol -------------------------------------------------
    def read(self, page_no: int) -> bytes:
        """B-tree pager read: cached, else a label-verified disk read."""
        self.clock.advance_cpu(self.clock.cpu.btree_node_ms)
        cached = self._cache.get(page_no)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(page_no)
            return cached
        self.cache_misses += 1
        self.reads += 1
        sectors = self.disk.read(
            self._address(page_no),
            NT_PAGE_SECTORS,
            expect_labels=self._labels(page_no),
        )
        data = b"".join(sectors)
        self._remember(page_no, data)
        return data

    def write(self, page_no: int, data: bytes) -> None:
        """Write through, in place, non-atomically."""
        self.clock.advance_cpu(self.clock.cpu.btree_node_ms)
        data = data.ljust(self.page_size, b"\x00")
        sector_bytes = self.disk.geometry.sector_bytes
        sectors = [
            data[i : i + sector_bytes] for i in range(0, len(data), sector_bytes)
        ]
        self.writes += 1
        self.disk.write(
            self._address(page_no), sectors, set_labels=self._labels(page_no)
        )
        self._remember(page_no, data)

    def allocate(self) -> int:
        """Allocate a free page in the name-table extent (volatile map)."""
        for probe in range(1, self.nt_pages):
            page_no = 1 + (self._cursor - 1 + probe - 1) % (self.nt_pages - 1)
            if page_no not in self._used:
                self._used.add(page_no)
                self._cursor = page_no + 1
                return page_no
        raise VolumeFull("CFS name table out of pages")

    def free(self, page_no: int) -> None:
        """Release a name-table page and drop it from the cache."""
        self._used.discard(page_no)
        self._cache.pop(page_no, None)

    # -- cache ----------------------------------------------------------
    def _remember(self, page_no: int, data: bytes) -> None:
        self._cache[page_no] = data
        self._cache.move_to_end(page_no)
        while len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)

    def mark_used(self, page_no: int) -> None:
        """Record a page as in use (rebuilding the volatile map)."""
        self._used.add(page_no)

    def discard_cache(self) -> None:
        """A crash: the read cache vanishes."""
        self._cache.clear()


# ----------------------------------------------------------------------
# entry codec: Table 1's CFS name-table columns
# ----------------------------------------------------------------------
def encode_cfs_entry(uid: int, keep: int, header_addr: int) -> bytes:
    """Serialize a CFS name-table value (Table 1's columns)."""
    return Packer().u64(uid).u8(keep).u32(header_addr).bytes()


def decode_cfs_entry(value: bytes) -> tuple[int, int, int]:
    """Parse a CFS name-table value into (uid, keep, header addr)."""
    reader = Unpacker(value)
    return reader.u64(), reader.u8(), reader.u32()


class CfsNameTable:
    """Typed wrapper: (name, version) -> (uid, keep, header address)."""

    def __init__(self, tree: BTree, pager: CfsNameTablePager):
        self.tree = tree
        self.pager = pager

    @classmethod
    def format(cls, pager: CfsNameTablePager) -> "CfsNameTable":
        pager.mark_used(0)
        tree = BTree.create(pager)
        return cls(tree, pager)

    @classmethod
    def open(cls, pager: CfsNameTablePager) -> "CfsNameTable":
        tree = BTree.open(pager)
        table = cls(tree, pager)
        table._rebuild_used_pages()
        return table

    def _rebuild_used_pages(self) -> None:
        """Walk the tree to learn which extent pages are in use."""
        self.pager.mark_used(0)

        def walk(page_no: int) -> None:
            from repro.btree.node import Node

            self.pager.mark_used(page_no)
            node = Node.from_bytes(self.pager.read(page_no))
            if not node.is_leaf:
                for child in node.children:
                    walk(child)

        walk(self.tree._root)

    # ------------------------------------------------------------------
    def insert(self, props: FileProperties, header_addr: int) -> None:
        """Insert (or replace) the entry for a file version."""
        self.tree.insert(
            encode_key(props.name, props.version, 0),
            encode_cfs_entry(props.uid, props.keep, header_addr),
        )

    def get(self, name: str, version: int) -> tuple[int, int, int] | None:
        """Entry for (name, version) or None."""
        value = self.tree.get(encode_key(name, version, 0))
        return None if value is None else decode_cfs_entry(value)

    def delete(self, name: str, version: int) -> bool:
        """Remove an entry; True if it existed."""
        return self.tree.delete(encode_key(name, version, 0))

    def versions(self, name: str) -> list[int]:
        """All versions of ``name``, ascending."""
        out = []
        for key, _ in self.tree.scan_prefix(name_prefix(name)):
            _, version, chunk = decode_key(key)
            if chunk == 0:
                out.append(version)
        return out

    def highest_version(self, name: str) -> int | None:
        """Newest version of ``name``, or None."""
        versions = self.versions(name)
        return versions[-1] if versions else None

    def enumerate(
        self, prefix: str = ""
    ) -> Iterator[tuple[str, int, int, int, int]]:
        """Yield (name, version, uid, keep, header_addr) in name order."""
        start = prefix.encode("utf-8") if prefix else None
        for key, value in self.tree.scan(start):
            name, version, chunk = decode_key(key)
            if prefix and not name.startswith(prefix):
                break
            if chunk != 0:
                continue
            uid, keep, header_addr = decode_cfs_entry(value)
            yield name, version, uid, keep, header_addr
