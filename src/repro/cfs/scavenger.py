"""The CFS scavenger (paper §2, §5.9).

"It is possible to scavenge the file system: by reading the labels and
interpreting some of the disk sectors, file system structural
information, such as the free page map and the file name table, can be
reconstructed."  And: "Scavenge in CFS was infrequent but very time
consuming... an hour or more on a 300 megabyte disk."

The scan reads every label on the volume (cylinder-sized label reads),
finds the header pages, reads each header, and rebuilds the name table
(write-through B-tree inserts) and the VAM.  As the paper notes, the
CFS scavenger trusted the run tables stored in headers rather than
cross-verifying them against the data labels; we reproduce that too
(``verify_runs=False`` by default) and offer the stricter mode the
paper says CFS never implemented.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfs.cfs import CFS, CfsLayout, CfsParams
from repro.cfs.header import HEADER_SECTORS, decode_header
from repro.cfs.labels import PAGE_DATA, PAGE_HEADER, is_free, parse_label
from repro.cfs.name_table import CfsNameTable, CfsNameTablePager
from repro.core.types import Run
from repro.core.vam import VolumeAllocationMap
from repro.disk.disk import SimDisk
from repro.errors import CorruptMetadata


@dataclass
class ScavengeReport:
    sectors_scanned: int = 0
    headers_found: int = 0
    files_recovered: int = 0
    files_damaged: int = 0
    orphan_data_sectors: int = 0
    run_table_mismatches: int = 0
    elapsed_ms: float = 0.0


def scavenge(
    disk: SimDisk,
    params: CfsParams | None = None,
    verify_runs: bool = False,
) -> tuple[CFS, ScavengeReport]:
    """Rebuild a CFS volume's name table and VAM from labels + headers.

    Returns the freshly mounted file system and a report.  This is the
    only recovery CFS has; Table 2's "crash recovery: 3600+ seconds"
    row is this function on a moderately full 300 MB volume.
    """
    params = params or CfsParams()
    layout = CfsLayout.compute(disk, params)
    clock = disk.clock
    report = ScavengeReport()
    start_ms = clock.now_ms
    geo = disk.geometry

    # Phase 1: read every label on the disk, a cylinder at a time.
    headers: list[int] = []
    data_sectors: dict[int, int] = {}  # uid -> count seen
    data_by_uid: dict[int, set[int]] = {}
    for cylinder in range(geo.cylinders):
        base = geo.cylinder_start(cylinder)
        labels = disk.read_labels(base, geo.sectors_per_cylinder)
        clock.advance_cpu(
            clock.cpu.scavenge_sector_ms * geo.sectors_per_cylinder
        )
        for offset, label in enumerate(labels):
            address = base + offset
            report.sectors_scanned += 1
            if is_free(label):
                continue
            if address < layout.data_start:
                continue  # name-table extent: being rebuilt
            uid, page, page_type = parse_label(label)
            if page_type == PAGE_HEADER and page == 0:
                headers.append(address)
            elif page_type == PAGE_DATA:
                data_sectors[uid] = data_sectors.get(uid, 0) + 1
                if verify_runs:
                    data_by_uid.setdefault(uid, set()).add(address)

    # Phase 2: rebuild the name table and VAM from the headers.
    pager = CfsNameTablePager(
        disk, layout.nt_start, params.nt_pages, params.cache_pages, clock
    )
    name_table = CfsNameTable.format(pager)
    vam = VolumeAllocationMap(geo.total_sectors)
    vam.mark_allocated(Run(0, layout.data_start))
    max_uid = 0
    recovered_uids: set[int] = set()
    for header_addr in headers:
        report.headers_found += 1
        sectors = disk.read_maybe(header_addr, HEADER_SECTORS)
        if any(sector is None for sector in sectors):
            report.files_damaged += 1
            continue
        try:
            props, runs = decode_header(
                [s for s in sectors if s is not None], geo.sector_bytes
            )
        except CorruptMetadata:
            report.files_damaged += 1
            continue
        if verify_runs:
            # The check the paper says CFS never did: cross-verify the
            # header's run table against the data labels.
            labelled = data_by_uid.get(props.uid, set())
            claimed = {
                sector for run in runs.runs for sector in range(run.start, run.end)
            }
            if claimed != labelled:
                report.run_table_mismatches += 1
        vam.mark_allocated(Run(header_addr, HEADER_SECTORS))
        for run in runs.runs:
            vam.mark_allocated(run)
        name_table.insert(props, header_addr)
        max_uid = max(max_uid, props.uid)
        recovered_uids.add(props.uid)
        report.files_recovered += 1
        clock.advance_cpu(clock.cpu.entry_interpret_ms)

    # Data sectors whose file header was lost: their pages stay out of
    # the VAM until manually reclaimed ("free pages may be lost").
    report.orphan_data_sectors = sum(
        count for uid, count in data_sectors.items()
        if uid not in recovered_uids
    )

    report.elapsed_ms = clock.now_ms - start_ms
    fs = CFS(
        disk=disk,
        params=params,
        layout=layout,
        name_table=name_table,
        vam=vam,
        next_uid=max_uid + 1,
    )
    return fs, report
