"""CFS — the baseline file system the paper reimplements (§2, §4).

Everything the paper criticizes is faithfully present:

* metadata is split across the name table, per-file header sectors and
  per-sector labels, so creates take "(at least) six I/Os" and listing
  or opening files costs a header read each;
* name-table pages are multi-sector and written in place, so a crash
  can tear them; multi-page B-tree updates are not atomic;
* labels are verified on nearly every I/O (robustness CFS gets that
  FSD must replace with leader pages and double writes);
* the allocator is a single-area first-fit that fragments free space;
* recovery from corruption is the scavenger: a full-disk label scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfs.header import HEADER_SECTORS, decode_header, encode_header
from repro.cfs.labels import (
    data_labels,
    free_label,
    header_labels,
    is_free,
)
from repro.cfs.name_table import CfsNameTable, CfsNameTablePager, NT_PAGE_SECTORS
from repro.core.types import FileProperties, Run, RunTable
from repro.core.vam import VolumeAllocationMap
from repro.disk.disk import SimDisk
from repro.errors import (
    CorruptMetadata,
    FileNotFound,
    FsError,
    NotMounted,
    VolumeFull,
)


@dataclass(frozen=True)
class CfsParams:
    """CFS volume parameters."""

    nt_pages: int = 2048          # name-table pages (2 sectors each)
    nt_cylinder: int = 5          # NOT central: CFS predates that insight
    cache_pages: int = 64
    max_io_sectors: int = 120
    max_file_runs: int = 512


@dataclass(frozen=True)
class CfsLayout:
    nt_start: int
    nt_sectors: int
    data_start: int
    data_end: int

    @classmethod
    def compute(cls, disk: SimDisk, params: CfsParams) -> "CfsLayout":
        geo = disk.geometry
        nt_start = geo.cylinder_start(params.nt_cylinder)
        nt_sectors = params.nt_pages * NT_PAGE_SECTORS
        data_start = nt_start + nt_sectors
        if data_start >= geo.total_sectors:
            raise FsError("volume too small for the CFS name table")
        return cls(
            nt_start=nt_start,
            nt_sectors=nt_sectors,
            data_start=data_start,
            data_end=geo.total_sectors,
        )


@dataclass
class CfsFile:
    """An open CFS file: properties and run table read from its header."""

    props: FileProperties
    runs: RunTable
    header_addr: int

    @property
    def name(self) -> str:
        return self.props.name

    @property
    def byte_size(self) -> int:
        return self.props.byte_size


@dataclass
class CfsOpCounts:
    creates: int = 0
    opens: int = 0
    reads: int = 0
    writes: int = 0
    deletes: int = 0
    lists: int = 0
    header_reads: int = 0
    header_writes: int = 0
    label_verify_ios: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class CFS:
    """One mounted CFS volume."""

    DEFAULT_KEEP = 2

    def __init__(
        self,
        disk: SimDisk,
        params: CfsParams,
        layout: CfsLayout,
        name_table: CfsNameTable,
        vam: VolumeAllocationMap,
        next_uid: int,
    ):
        self.disk = disk
        self.clock = disk.clock
        self.params = params
        self.layout = layout
        self.name_table = name_table
        self.vam = vam
        self.ops = CfsOpCounts()
        self._next_uid = next_uid
        self._cursor = layout.data_start
        self._mounted = True

    # ==================================================================
    # lifecycle
    # ==================================================================
    @classmethod
    def format(cls, disk: SimDisk, params: CfsParams | None = None) -> None:
        params = params or CfsParams()
        layout = CfsLayout.compute(disk, params)
        pager = CfsNameTablePager(
            disk,
            layout.nt_start,
            params.nt_pages,
            params.cache_pages,
            disk.clock,
        )
        CfsNameTable.format(pager)

    @classmethod
    def mount(cls, disk: SimDisk, params: CfsParams | None = None) -> "CFS":
        """Mount a CFS volume; reconstructs the VAM hint by reading
        every file's header (there is no saved free map)."""
        params = params or CfsParams()
        layout = CfsLayout.compute(disk, params)
        pager = CfsNameTablePager(
            disk,
            layout.nt_start,
            params.nt_pages,
            params.cache_pages,
            disk.clock,
        )
        name_table = CfsNameTable.open(pager)
        vam = VolumeAllocationMap(disk.geometry.total_sectors)
        vam.mark_allocated(Run(0, layout.data_start))
        max_uid = 0
        fs = cls(disk, params, layout, name_table, vam, next_uid=1)
        for name, version, uid, keep, header_addr in name_table.enumerate():
            max_uid = max(max_uid, uid)
            props, runs = fs._read_header(header_addr, uid)
            vam.mark_allocated(Run(header_addr, HEADER_SECTORS))
            for run in runs.runs:
                vam.mark_allocated(run)
        fs._next_uid = max_uid + 1
        return fs

    def crash(self) -> None:
        """All volatile state (caches, VAM hint) vanishes."""
        self.name_table.pager.discard_cache()
        self._mounted = False

    def unmount(self) -> None:
        """Mark the volume unmounted (CFS writes through; nothing to flush)."""
        self._mounted = False

    # ==================================================================
    # operations
    # ==================================================================
    def create(
        self, name: str, data: bytes = b"", keep: int | None = None
    ) -> CfsFile:
        """The paper's CFS create script: verify candidate pages free by
        reading labels, write labels to claim them, write the header,
        update the name table, write the data, rewrite the header."""
        self._enter()
        self.ops.creates += 1
        keep = self.DEFAULT_KEEP if keep is None else keep
        version = (self.name_table.highest_version(name) or 0) + 1
        uid = self._next_uid
        self._next_uid += 1
        sector_bytes = self.disk.geometry.sector_bytes
        data_sectors = -(-len(data) // sector_bytes)

        # Allocate header + data together so small files verify with a
        # single contiguous label read (the paper's 3-page transfer).
        table = self._allocate(HEADER_SECTORS + data_sectors)
        header_run = Run(table.runs[0].start, HEADER_SECTORS)
        runs = _strip_header(table)
        header_addr = header_run.start

        # 1) verify the candidate pages really are free: one label read
        #    per contiguous run (the paper's single 3-page transfer for
        #    a header+data allocation).
        for run in table.runs:
            self._verify_free(run)

        # 2) write header labels to claim them
        self.disk.write_labels(header_addr, header_labels(uid))
        # 3) write data labels to claim the data pages
        page = 0
        for run in runs.runs:
            self.disk.write_labels(run.start, data_labels(uid, page, run.count))
            page += run.count

        props = FileProperties(
            name=name,
            version=version,
            uid=uid,
            byte_size=len(data),
            create_time_ms=self.clock.now_ms,
            keep=keep,
        )
        # 4) write the header
        self._write_header(header_addr, props, runs)
        # 5) update the file name table (write-through B-tree)
        self.name_table.insert(props, header_addr)
        handle = CfsFile(props=props, runs=runs, header_addr=header_addr)
        if data:
            # 6) write the data
            self._write_payload(handle, 0, data)
            # 7) rewrite the header (final byte size)
            self._write_header(header_addr, props, runs)
        if keep > 0:
            self._trim_versions(name, keep)
        return handle

    def open(self, name: str, version: int | None = None) -> CfsFile:
        """Open = name-table lookup + header read (one I/O always)."""
        self._enter()
        self.ops.opens += 1
        name_, version_, uid, keep, header_addr = self._resolve(name, version)
        props, runs = self._read_header(header_addr, uid)
        return CfsFile(props=props, runs=runs, header_addr=header_addr)

    def read(
        self, handle: CfsFile, offset: int = 0, length: int | None = None
    ) -> bytes:
        """Read data pages, verifying each sector's label in microcode."""
        self._enter()
        self.ops.reads += 1
        if length is None:
            length = handle.props.byte_size - offset
        if offset < 0 or length < 0 or offset + length > handle.props.byte_size:
            raise FsError("read outside file")
        if length == 0:
            return b""
        sector_bytes = self.disk.geometry.sector_bytes
        first_page = offset // sector_bytes
        last_page = (offset + length - 1) // sector_bytes
        chunks: list[bytes] = []
        page = first_page
        for extent in handle.runs.extents_for(
            first_page, last_page - first_page + 1
        ):
            cursor = 0
            while cursor < extent.count:
                count = min(extent.count - cursor, self.params.max_io_sectors)
                labels = data_labels(handle.props.uid, page, count)
                chunks.extend(
                    self.disk.read(
                        extent.start + cursor,
                        count,
                        expect_labels=labels,
                        cpu_overlap=True,
                    )
                )
                self.ops.label_verify_ios += 1
                cursor += count
                page += count
        blob = b"".join(chunks)
        skip = offset - first_page * sector_bytes
        return blob[skip : skip + length]

    def write(self, handle: CfsFile, offset: int, data: bytes) -> None:
        """Overwrite/extend; extension claims labels for the new pages
        and rewrites the header."""
        self._enter()
        self.ops.writes += 1
        if not data:
            return
        end = offset + len(data)
        self._ensure_capacity(handle, end)
        old_size = handle.props.byte_size
        self._write_payload(handle, offset, data, old_size)
        if end != handle.props.byte_size:
            handle.props = handle.props.with_updates(
                byte_size=max(end, handle.props.byte_size)
            )
        self._write_header(handle.header_addr, handle.props, handle.runs)

    def delete(self, name: str, version: int | None = None) -> FileProperties:
        """Delete: read the header, free every label, update the name
        table — each a synchronous I/O (Table 2's 214 ms small delete)."""
        self._enter()
        self.ops.deletes += 1
        name_, version_, uid, keep, header_addr = self._resolve(name, version)
        props, runs = self._read_header(header_addr, uid)
        # Free the data labels run by run.
        for run in runs.runs:
            self.disk.write_labels(run.start, [free_label()] * run.count)
            self.vam.mark_free(run)
        # Free the header labels.
        self.disk.write_labels(header_addr, [free_label()] * HEADER_SECTORS)
        self.vam.mark_free(Run(header_addr, HEADER_SECTORS))
        self.name_table.delete(name_, version_)
        return props

    def list(self, prefix: str = "") -> list[FileProperties]:
        """List with properties: CFS must read every file's header
        (Table 3: 146 I/Os to list 100 files, vs FSD's 3)."""
        self._enter()
        self.ops.lists += 1
        out = []
        for name, version, uid, keep, header_addr in self.name_table.enumerate(
            prefix
        ):
            props, _ = self._read_header(header_addr, uid)
            out.append(props)
        return out

    def versions(self, name: str) -> list[int]:
        """All live versions of ``name``, ascending."""
        self._enter()
        return self.name_table.versions(name)

    def exists(self, name: str, version: int | None = None) -> bool:
        """True when the file (version) exists."""
        self._enter()
        try:
            self._resolve(name, version)
            return True
        except FileNotFound:
            return False

    # ==================================================================
    # internals
    # ==================================================================
    def _enter(self) -> None:
        if not self._mounted:
            raise NotMounted("CFS volume is not mounted")
        self.clock.tick()

    def _resolve(
        self, name: str, version: int | None
    ) -> tuple[str, int, int, int, int]:
        if version is None:
            version = self.name_table.highest_version(name)
            if version is None:
                raise FileNotFound(name)
        entry = self.name_table.get(name, version)
        if entry is None:
            raise FileNotFound(f"{name}!{version}")
        uid, keep, header_addr = entry
        return name, version, uid, keep, header_addr

    def _trim_versions(self, name: str, keep: int) -> None:
        versions = self.name_table.versions(name)
        while len(versions) > keep:
            self.delete(name, versions.pop(0))
            self.ops.deletes -= 1  # internal trim, not a client delete

    # ------------------------------------------------------------------
    # allocation (the fragmenting single-area first-fit, §5.6)
    # ------------------------------------------------------------------
    def _allocate(self, sectors: int) -> RunTable:
        table = RunTable()
        remaining = sectors
        wrapped = False
        cursor = self._cursor
        while remaining > 0:
            run = self.vam.find_free_run(
                cursor, self.layout.data_end, remaining, ascending=True
            )
            if run is None:
                if wrapped:
                    for taken in table.runs:
                        self.vam.mark_free(taken)
                    raise VolumeFull(f"CFS: no room for {sectors} sectors")
                wrapped = True
                cursor = self.layout.data_start
                continue
            self.vam.mark_allocated(run)
            table.append(run)
            remaining -= run.count
            cursor = run.end
        self._cursor = cursor
        if len(table.runs) > self.params.max_file_runs:
            for taken in table.runs:
                self.vam.mark_free(taken)
            raise VolumeFull("CFS: allocation too fragmented")
        return table

    def _verify_free(self, run: Run) -> None:
        """Read the candidate pages' labels and check they are free
        (the VAM is only a hint)."""
        cursor = 0
        while cursor < run.count:
            count = min(run.count - cursor, self.params.max_io_sectors)
            labels = self.disk.read_labels(run.start + cursor, count)
            for offset, label in enumerate(labels):
                if not is_free(label):
                    raise CorruptMetadata(
                        f"sector {run.start + cursor + offset} claimed "
                        f"free but label says otherwise"
                    )
            cursor += count

    # ------------------------------------------------------------------
    # header I/O
    # ------------------------------------------------------------------
    def _read_header(
        self, header_addr: int, uid: int
    ) -> tuple[FileProperties, RunTable]:
        self.ops.header_reads += 1
        sectors = self.disk.read(
            header_addr, HEADER_SECTORS, expect_labels=header_labels(uid)
        )
        return decode_header(sectors, self.disk.geometry.sector_bytes)

    def _write_header(
        self, header_addr: int, props: FileProperties, runs: RunTable
    ) -> None:
        self.ops.header_writes += 1
        sectors = encode_header(props, runs, self.disk.geometry.sector_bytes)
        self.disk.write(
            header_addr,
            sectors,
            expect_labels=header_labels(props.uid),
        )

    # ------------------------------------------------------------------
    # data I/O
    # ------------------------------------------------------------------
    def _ensure_capacity(self, handle: CfsFile, byte_size: int) -> None:
        sector_bytes = self.disk.geometry.sector_bytes
        have = handle.runs.total_sectors
        need = -(-byte_size // sector_bytes)
        if need <= have:
            return
        extra = self._allocate(need - have)
        page = have
        for run in extra.runs:
            self._verify_free(run)
            self.disk.write_labels(
                run.start, data_labels(handle.props.uid, page, run.count)
            )
            page += run.count
            handle.runs.append(run)

    def _write_payload(
        self,
        handle: CfsFile,
        offset: int,
        data: bytes,
        old_size: int | None = None,
    ) -> None:
        sector_bytes = self.disk.geometry.sector_bytes
        old_size = handle.props.byte_size if old_size is None else old_size
        end = offset + len(data)
        first_page = offset // sector_bytes
        last_page = (end - 1) // sector_bytes
        head_pad = offset - first_page * sector_bytes
        payload = data
        if head_pad:
            payload = (
                self._read_page(handle, first_page)[:head_pad] + payload
            )
        if end % sector_bytes and end < old_size:
            tail = self._read_page(handle, last_page)
            payload = payload + tail[end % sector_bytes :]
        sectors = [
            payload[i : i + sector_bytes]
            for i in range(0, len(payload), sector_bytes)
        ]
        page = first_page
        cursor = 0
        for extent in handle.runs.extents_for(
            first_page, last_page - first_page + 1
        ):
            inner = 0
            while inner < extent.count:
                count = min(
                    extent.count - inner, self.params.max_io_sectors
                )
                labels = data_labels(handle.props.uid, page, count)
                self.disk.write(
                    extent.start + inner,
                    sectors[cursor : cursor + count],
                    expect_labels=labels,
                    cpu_overlap=True,
                )
                self.ops.label_verify_ios += 1
                inner += count
                cursor += count
                page += count

    def _read_page(self, handle: CfsFile, page: int) -> bytes:
        if page * self.disk.geometry.sector_bytes >= handle.props.byte_size:
            return b"\x00" * self.disk.geometry.sector_bytes
        address = handle.runs.sector_of_page(page)
        labels = data_labels(handle.props.uid, page, 1)
        return self.disk.read(address, 1, expect_labels=labels)[0]

    @property
    def mounted(self) -> bool:
        return self._mounted


def _strip_header(table: RunTable) -> RunTable:
    """Remove the first HEADER_SECTORS sectors from an allocation."""
    runs = RunTable()
    skip = HEADER_SECTORS
    for run in table.runs:
        if skip >= run.count:
            skip -= run.count
            continue
        runs.append(Run(run.start + skip, run.count - skip))
        skip = 0
    return runs
