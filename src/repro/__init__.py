"""repro — Reimplementing the Cedar File System Using Logging and
Group Commit (Hagmann, SOSP 1987), as a runnable Python system.

Quickstart::

    from repro import SimDisk, FSD

    disk = SimDisk()                  # a ~306 MB Trident-class drive
    FSD.format(disk)
    fs = FSD.mount(disk)
    handle = fs.create("doc/hello.txt", b"hello, cedar")
    print(fs.read(fs.open("doc/hello.txt")))
    fs.force()                        # group commit (<= 0.5 s anyway)
    fs.crash()                        # volatile state vanishes
    fs = FSD.mount(disk)              # log redo + VAM rebuild
    assert fs.exists("doc/hello.txt")

Packages:

* :mod:`repro.core` — FSD, the paper's contribution (log, group
  commit, double-written name table, leaders, VAM, allocator).
* :mod:`repro.disk` — the simulated Dorado/Trident disk (timing,
  labels, faults, virtual clock).
* :mod:`repro.btree` — the page B-tree both name tables share.
* :mod:`repro.cfs` — CFS, the label-based baseline, with scavenger.
* :mod:`repro.bsd` — a simplified 4.3 BSD FFS with fsck.
* :mod:`repro.model` — the paper's §6 analytical disk model.
* :mod:`repro.workloads` / :mod:`repro.harness` — benchmark plumbing.
"""

from repro.bsd import FFS, FfsParams, fsck
from repro.cfs import CFS, CfsParams, scavenge
from repro.core import (
    FSD,
    FileKind,
    FileProperties,
    FsdFile,
    Run,
    RunTable,
    VolumeParams,
)
from repro.disk import (
    DiskGeometry,
    DiskTiming,
    FaultInjector,
    SimClock,
    SimDisk,
)
from repro.errors import (
    CorruptMetadata,
    DamagedSectorError,
    FileExists,
    FileNotFound,
    FsError,
    LabelCheckError,
    ReproError,
    SimulatedCrash,
    VolumeFull,
)

__version__ = "1.0.0"

__all__ = [
    "CFS",
    "CfsParams",
    "CorruptMetadata",
    "DamagedSectorError",
    "DiskGeometry",
    "DiskTiming",
    "FFS",
    "FSD",
    "FaultInjector",
    "FfsParams",
    "FileExists",
    "FileKind",
    "FileNotFound",
    "FileProperties",
    "FsError",
    "FsdFile",
    "LabelCheckError",
    "ReproError",
    "Run",
    "RunTable",
    "SimClock",
    "SimDisk",
    "SimulatedCrash",
    "VolumeFull",
    "VolumeParams",
    "scavenge",
    "fsck",
    "__version__",
]
