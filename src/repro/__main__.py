"""Command-line interface: an FSD volume in a disk-image file.

    python -m repro mkfs vol.img [--size {small,t300}] [--log-vam]
    python -m repro put vol.img LOCAL_FILE FSD_NAME [--crash]
    python -m repro get vol.img FSD_NAME [LOCAL_FILE]
    python -m repro ls vol.img [PREFIX]
    python -m repro rm vol.img FSD_NAME
    python -m repro info vol.img
    python -m repro verify vol.img
    python -m repro crashcheck [--scenario NAME] [--max-points N]
    python -m repro stats vol.img [--ops N] [--json]
    python -m repro trace vol.img [--ops N] [--json|--folded] [--out FILE]
    python -m repro traffic vol.img [--clients N] [--attrib] [--slo-ms MS]
    python -m repro profile {makedo,traffic,scripted} [--out FILE]
    python -m repro bench diff BEFORE.json AFTER.json [--fail-over FRAC]
    python -m repro salvage vol.img rebuilt.img
    python -m repro soak [--seed N] [--runs N] [--json FILE]
    python -m repro chaos [--clients N] [--faults N] [--mirror] [--json FILE]

Each command loads the image, mounts the volume (recovering it if the
last session crashed), performs the operation, unmounts cleanly, and
saves the image back.  ``put --crash`` deliberately skips the unmount
and saves a dirty image — run any other command next to watch log redo
and VAM reconstruction happen.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.data_cache import DEFAULT_READAHEAD_PAGES
from repro.core.fsd import FSD
from repro.core.layout import VolumeParams
from repro.core.verify import verify_volume
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry, TRIDENT_T300
from repro.disk.image import load_disk, save_disk
from repro.errors import ReproError

SMALL_GEOMETRY = DiskGeometry(cylinders=200, heads=8, sectors_per_track=48)
SMALL_PARAMS = VolumeParams(
    nt_pages=1024, log_record_sectors=600, cache_pages=96
)


def _mount(path: str, args=None) -> tuple[SimDisk, FSD]:
    disk = load_disk(path)
    fs = FSD.mount(
        disk,
        sched=getattr(args, "sched", "fifo"),
        data_cache_pages=getattr(args, "data_cache_pages", 0),
        readahead_pages=getattr(args, "readahead", DEFAULT_READAHEAD_PAGES),
        checkpoint_interval_ms=getattr(args, "checkpoint_ms", None),
    )
    report = fs.mount_report
    if report.log_records_replayed or report.vam_rebuild_entries:
        print(
            f"(recovered: {report.log_records_replayed} log records "
            f"replayed, VAM {'loaded' if report.vam_loaded else 'rebuilt'}, "
            f"{report.total_ms / 1000:.1f} simulated s)"
        )
    return disk, fs


def _finish(disk: SimDisk, fs: FSD, path: str, crash: bool = False) -> None:
    if crash:
        fs.crash()
        print("crashed without unmounting (volume left dirty)")
    else:
        fs.unmount()
    save_disk(disk, path)


def cmd_mkfs(args) -> int:
    if args.size == "t300":
        geometry, params = TRIDENT_T300, VolumeParams()
    else:
        geometry, params = SMALL_GEOMETRY, SMALL_PARAMS
    if args.log_vam:
        from dataclasses import replace

        params = replace(params, log_vam=True)
    disk = SimDisk(geometry=geometry)
    FSD.format(disk, params)
    written = save_disk(disk, args.image)
    print(
        f"formatted {geometry.total_bytes // 2**20} MB FSD volume "
        f"({written} image bytes) at {args.image}"
    )
    return 0


def cmd_put(args) -> int:
    data = Path(args.local).read_bytes()
    disk, fs = _mount(args.image, args)
    handle = fs.create(args.name, data)
    print(
        f"wrote {args.name}!{handle.version} "
        f"({handle.byte_size} bytes, {len(handle.runs.runs)} runs)"
    )
    _finish(disk, fs, args.image, crash=args.crash)
    return 0


def cmd_get(args) -> int:
    disk, fs = _mount(args.image, args)
    handle = fs.open(args.name)
    data = fs.read(handle)
    if args.local:
        Path(args.local).write_bytes(data)
        print(f"read {handle.name}!{handle.version} -> {args.local}")
    else:
        sys.stdout.buffer.write(data)
    _finish(disk, fs, args.image)
    return 0


def cmd_ls(args) -> int:
    disk, fs = _mount(args.image, args)
    entries = fs.list(args.prefix or "")
    for props in entries:
        print(
            f"{props.byte_size:>10}  v{props.version:<3} "
            f"{props.kind.name.lower():<7} {props.name}"
        )
    print(f"{len(entries)} file(s)")
    _finish(disk, fs, args.image)
    return 0


def cmd_rm(args) -> int:
    disk, fs = _mount(args.image, args)
    props = fs.delete(args.name)
    print(f"deleted {props.name}!{props.version}")
    _finish(disk, fs, args.image)
    return 0


def cmd_info(args) -> int:
    disk, fs = _mount(args.image, args)
    geo = disk.geometry
    print(f"geometry : {geo.cylinders} cyl x {geo.heads} heads x "
          f"{geo.sectors_per_track} sectors ({geo.total_bytes // 2**20} MB)")
    print(f"boot     : #{fs.boot_count}")
    print(f"free     : {fs.vam.free_count} of {geo.total_sectors} sectors")
    print(f"params   : nt_pages={fs.params.nt_pages} "
          f"log={fs.params.log_record_sectors} sectors "
          f"commit={fs.params.commit_interval_ms:.0f} ms "
          f"log_vam={fs.params.log_vam}")
    files = fs.list()
    print(f"files    : {len(files)}")
    _finish(disk, fs, args.image)
    return 0


def cmd_verify(args) -> int:
    disk, fs = _mount(args.image, args)
    report = verify_volume(fs)
    print(
        f"checked {report.files_checked} files, "
        f"{report.leaders_verified} leaders, "
        f"{report.nt_pages_checked} name-table pages; "
        f"{report.leaked_sectors} leaked sectors"
    )
    if report.clean:
        print("volume is clean")
        status = 0
    else:
        for problem in report.problems:
            print(f"PROBLEM: {problem}")
        status = 1
    _finish(disk, fs, args.image)
    return status


def cmd_traffic(args) -> int:
    import json

    from repro.workloads.traffic import TrafficConfig, TrafficEngine

    config = TrafficConfig(
        clients=args.clients,
        ops_per_client=args.ops,
        seed=args.seed,
        arrival=args.arrival,
        mean_think_ms=args.think_ms,
        population=args.population,
        shared_fraction=args.shared_fraction,
        hold_ms=args.hold_ms,
        sync_fraction=args.sync_fraction,
        slo_ms=args.slo_ms,
    )
    if args.attrib:
        # Attribution rides a fresh detached observer (metrics stay
        # off): the recorder alone is attached, so the run's simulated
        # times and disk state remain bit-identical to a plain run.
        from repro.obs import NullObserver
        from repro.obs.attribution import AttributionRecorder

        obs = NullObserver()
        obs.attribution = AttributionRecorder()
        disk = load_disk(args.image)
        fs = FSD.mount(
            disk,
            obs=obs,
            sched=args.sched,
            data_cache_pages=args.data_cache_pages,
            readahead_pages=args.readahead,
            checkpoint_interval_ms=args.checkpoint_ms,
        )
    else:
        disk, fs = _mount(args.image, args)
    engine = TrafficEngine(fs, config)
    report = engine.run()
    if args.json:
        print(report.to_json())
    else:
        for line in report.summary_lines():
            print(line)
    fs.unmount()
    if args.save:
        save_disk(disk, args.image)
    if args.slo_ms is not None:
        p95 = report.latency.get("p95_ms", 0.0)
        if p95 > args.slo_ms:
            print(
                f"SLO VIOLATION: p95 {p95:.2f} ms > {args.slo_ms:.2f} ms",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_salvage(args) -> int:
    from repro.core.salvage import salvage_volume

    source = load_disk(args.image)
    destination, report = salvage_volume(source)
    written = save_disk(destination, args.out)
    print(report.summary())
    for label, reason in report.lost:
        print(f"LOST: {label}: {reason}")
    print(f"salvaged volume saved to {args.out} ({written} image bytes)")
    return 0 if not report.lost else 1


def cmd_soak(args) -> int:
    import json

    from repro.crashcheck.soak import SoakConfig, run_campaign

    config = SoakConfig(
        seed=args.seed,
        runs=args.runs,
        ops_per_run=args.ops,
        faults_per_run=args.faults,
    )

    def progress(done, total, result) -> None:
        faults = sum(result.faults.values())
        print(
            f"run {done:>3}/{total}: {result.verdict:<9} "
            f"({result.ops} ops, {faults} faults, "
            f"{result.crashes} crashes, "
            f"{result.files_verified} files verified)"
        )

    report = run_campaign(config, progress=progress if not args.quiet else None)
    print(report.summary())
    for finding in report.silent_corruptions:
        print(f"SILENT CORRUPTION: {finding}")
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_json(), indent=2))
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    from repro.workloads.chaos import ChaosConfig, run_chaos
    from repro.workloads.traffic import TrafficConfig

    traffic = TrafficConfig(
        clients=args.clients,
        ops_per_client=args.ops,
        seed=args.seed,
        mean_think_ms=args.think_ms,
        sync_fraction=args.sync_fraction,
        max_file_bytes=8_000,
        settle=False,
        max_retries=args.max_retries,
        deadline_ms=args.deadline_ms,
        slo_ms=args.slo_ms,
    )
    chaos = ChaosConfig(
        faults=args.faults,
        fault_interval_ms=args.fault_interval_ms,
        crash_cycles=args.crashes,
        mirror=args.mirror,
        slo_ms=args.slo_ms if args.slo_ms is not None else 50.0,
    )
    report = run_chaos(
        traffic,
        chaos,
        sched=args.sched,
        data_cache_pages=args.data_cache_pages,
        checkpoint_interval_ms=args.checkpoint_ms,
    )
    if not args.quiet:
        for line in report.summary_lines():
            print(line)
    if args.json:
        Path(args.json).write_text(report.to_json())
        print(f"report written to {args.json}")
    if args.bench:
        import json

        from repro.workloads.chaos import chaos_bench_doc

        Path(args.bench).write_text(
            json.dumps(chaos_bench_doc(report), indent=2)
        )
        print(f"bench doc written to {args.bench}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FSD (Cedar-FS-with-logging) volumes in image files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _sched_arg(p) -> None:
        p.add_argument(
            "--sched", choices=["fifo", "scan", "deadline"],
            default="fifo",
            help="I/O scheduler policy for the mount (default: fifo)",
        )
        p.add_argument(
            "--data-cache-pages", type=int, default=0, metavar="N",
            help="data-page cache capacity in sectors (0 disables; "
                 "default: 0)",
        )
        p.add_argument(
            "--readahead", type=int, default=DEFAULT_READAHEAD_PAGES,
            metavar="N",
            help="sequential read-ahead window in pages (default: "
                 f"{DEFAULT_READAHEAD_PAGES})",
        )
        p.add_argument(
            "--checkpoint-ms", type=float, default=None, metavar="MS",
            help="run the background checkpointer every MS simulated "
                 "ms (default: off — third entries write home "
                 "synchronously)",
        )

    p = sub.add_parser("mkfs", help="format a new volume image")
    p.add_argument("image")
    p.add_argument("--size", choices=["small", "t300"], default="small")
    p.add_argument("--log-vam", action="store_true",
                   help="enable the §5.3 VAM-logging extension")
    p.set_defaults(fn=cmd_mkfs)

    p = sub.add_parser("put", help="copy a local file into the volume")
    p.add_argument("image")
    p.add_argument("local")
    p.add_argument("name")
    p.add_argument("--crash", action="store_true",
                   help="simulate a crash instead of unmounting")
    _sched_arg(p)
    p.set_defaults(fn=cmd_put)

    p = sub.add_parser("get", help="copy a file out of the volume")
    p.add_argument("image")
    p.add_argument("name")
    p.add_argument("local", nargs="?")
    _sched_arg(p)
    p.set_defaults(fn=cmd_get)

    p = sub.add_parser("ls", help="list files")
    p.add_argument("image")
    p.add_argument("prefix", nargs="?")
    _sched_arg(p)
    p.set_defaults(fn=cmd_ls)

    p = sub.add_parser("rm", help="delete a file")
    p.add_argument("image")
    p.add_argument("name")
    _sched_arg(p)
    p.set_defaults(fn=cmd_rm)

    p = sub.add_parser("info", help="volume information")
    p.add_argument("image")
    _sched_arg(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("verify", help="offline integrity check")
    p.add_argument("image")
    _sched_arg(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "salvage",
        help="rebuild a damaged volume into a fresh image (offline)",
    )
    p.add_argument("image", help="damaged source image (read-only)")
    p.add_argument("out", help="destination image for the rebuilt volume")
    p.set_defaults(fn=cmd_salvage)

    p = sub.add_parser(
        "traffic",
        help="multi-client simulated-time traffic run with latency "
             "percentiles and commit batching",
    )
    p.add_argument("image")
    p.add_argument("--clients", type=int, default=10)
    p.add_argument("--ops", type=int, default=40,
                   help="operations per client (default: 40)")
    p.add_argument("--seed", type=int, default=1987)
    p.add_argument("--arrival", choices=["poisson", "bursty", "uniform"],
                   default="poisson",
                   help="client think-time process (default: poisson)")
    p.add_argument("--think-ms", type=float, default=200.0,
                   help="mean think time between a client's operations "
                        "(default: 200)")
    p.add_argument("--population", type=int, default=40,
                   help="shared files created before the run "
                        "(default: 40)")
    p.add_argument("--shared-fraction", type=float, default=0.5,
                   help="reads/writes aimed at shared files "
                        "(default: 0.5)")
    p.add_argument("--hold-ms", type=float, default=1.0,
                   help="client processing inside each bracket "
                        "(default: 1)")
    p.add_argument("--sync-fraction", type=float, default=0.0,
                   help="mutations that wait for durability "
                        "(default: 0)")
    p.add_argument("--slo-ms", type=float, default=None,
                   help="exit 1 when p95 op latency exceeds this; "
                        "with --attrib, also diagnose each violation's "
                        "dominant phase")
    p.add_argument("--attrib", action="store_true",
                   help="record per-op causal traces and report "
                        "per-phase latency attribution")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.add_argument("--save", action="store_true",
                   help="save the image back after the run")
    _sched_arg(p)
    p.set_defaults(fn=cmd_traffic)

    p = sub.add_parser(
        "soak", help="seeded multi-fault soak campaign with recovery oracle"
    )
    p.add_argument("--seed", type=int, default=1987)
    p.add_argument("--runs", type=int, default=12)
    p.add_argument("--ops", type=int, default=30,
                   help="operations per run (default: 30)")
    p.add_argument("--faults", type=int, default=18,
                   help="faults injected per run (default: 18)")
    p.add_argument("--json", metavar="PATH",
                   help="write the campaign report as JSON")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-run progress lines")
    p.set_defaults(fn=cmd_soak)

    p = sub.add_parser(
        "chaos",
        help="fault injection under live multi-client traffic, with "
             "the client error contract and recovery oracle",
    )
    p.add_argument("--clients", type=int, default=32)
    p.add_argument("--ops", type=int, default=12,
                   help="operations per client (default: 12)")
    p.add_argument("--seed", type=int, default=1987)
    p.add_argument("--faults", type=int, default=120,
                   help="faults injected during the run (default: 120)")
    p.add_argument("--fault-interval-ms", type=float, default=60.0,
                   help="simulated ms between injections (default: 60)")
    p.add_argument("--crashes", type=int, default=3,
                   help="mid-run crash/recover cycles (default: 3)")
    p.add_argument("--mirror", action="store_true",
                   help="run on a shadowed pair and lose one unit "
                        "mid-run")
    p.add_argument("--think-ms", type=float, default=150.0,
                   help="mean client think time (default: 150)")
    p.add_argument("--sync-fraction", type=float, default=0.25,
                   help="mutations that wait for durability "
                        "(default: 0.25)")
    p.add_argument("--max-retries", type=int, default=4,
                   help="per-op retry budget (default: 4)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-op deadline; exceeding it resolves the op "
                        "as a typed timeout (default: none)")
    p.add_argument("--slo-ms", type=float, default=None,
                   help="latency bar for time-to-restored-SLO "
                        "(default: 50)")
    p.add_argument("--json", metavar="PATH",
                   help="write the campaign report as JSON")
    p.add_argument("--bench", metavar="PATH",
                   help="write the flat bench-gating doc as JSON")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the summary lines")
    _sched_arg(p)
    p.set_defaults(fn=cmd_chaos)

    from repro.crashcheck.cli import add_subparser as add_crashcheck
    from repro.harness.benchdiff import add_subparser as add_bench
    from repro.obs.cli import add_subparsers as add_obs
    from repro.obs.profile import add_subparser as add_profile

    add_crashcheck(sub)
    add_obs(sub)
    add_profile(sub)
    add_bench(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
