"""Recorded workloads: run an op script once, capture everything.

The crash-point explorer needs three things from one live run of a
workload:

* the exact disk mutation stream (every write's address and payload,
  in I/O order), so the image a crash at any boundary would leave can
  be synthesized without re-running the workload,
* the commit watermarks — after how many completed I/Os each group
  commit returned, and how many ops it covered — which define the
  committed/uncommitted split at every crash boundary,
* the op script itself, so the semantic oracle can model expected
  contents.

The simulation is fully deterministic (virtual clock, no real
randomness at run time), so the I/O stream of a run crashed at I/O
``i`` is byte-identical to the first ``i`` I/Os of the recorded run —
synthesis and live replay agree, and a test cross-checks that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.fsd import FSD
from repro.disk.disk import SimDisk, _pad_label
from repro.errors import SimulatedCrash
from repro.harness.adapters import FsdAdapter

if TYPE_CHECKING:  # pragma: no cover
    from repro.crashcheck.scenarios import CrashScenario


# ----------------------------------------------------------------------
# op scripts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Op:
    """One step of a workload script.

    ``kind`` is ``"create"`` (next version of ``name`` holding
    ``data``), ``"delete"`` (newest version of ``name``), ``"force"``
    (an explicit group commit; the script's durability points) or
    ``"checkpoint"`` (one background checkpointer tick: write-home of
    every logged image plus the anchor advance — only legal in
    scenarios mounted with a checkpoint interval).
    """

    kind: str
    name: str = ""
    data: bytes = b""
    keep: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("create", "delete", "force", "checkpoint"):
            raise ValueError(f"unknown op kind {self.kind!r}")


@dataclass(frozen=True)
class AppliedOp:
    """An op as executed: which I/O span of the recording it covers."""

    op: Op
    index: int
    start_io: int
    end_io: int


# ----------------------------------------------------------------------
# the disk recorder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IoRec:
    """One recorded disk operation.

    ``payloads`` holds the sector images a write persisted (padded to
    the sector size, exactly as they landed on the platter); reads
    carry none.  ``set_labels`` mirrors the label rewrite of a data
    write; ``labels`` the payload of a label-only write.
    """

    kind: str                      # "read" | "write" | "label_read" | "label_write"
    address: int
    count: int
    payloads: tuple[bytes, ...] = ()
    set_labels: tuple[bytes, ...] | None = None
    labels: tuple[bytes, ...] = ()

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


class DiskRecorder:
    """Wraps one :class:`SimDisk` instance and records its I/O stream.

    Installation shadows the four physical entry points with
    instance-level wrappers (``read`` delegates to ``read_maybe``, so
    it needs no wrapper of its own); uninstalling restores the class
    methods.  Recording adds no virtual time and no I/O.
    """

    def __init__(self, disk: SimDisk):
        self.disk = disk
        self.records: list[IoRec] = []
        self._installed = False

    @property
    def io_count(self) -> int:
        """Completed disk operations since :meth:`install`."""
        return len(self.records)

    def install(self) -> None:
        """Shadow the disk's physical entry points with recording wrappers."""
        if self._installed:
            raise RuntimeError("recorder already installed")
        disk = self.disk
        orig_read_maybe = disk.read_maybe
        orig_write = disk.write
        orig_read_labels = disk.read_labels
        orig_write_labels = disk.write_labels

        def read_maybe(address, count=1, expect_labels=None, cpu_overlap=False):
            out = orig_read_maybe(address, count, expect_labels, cpu_overlap)
            self.records.append(IoRec("read", address, count))
            return out

        def write(address, sectors, expect_labels=None, set_labels=None,
                  cpu_overlap=False):
            orig_write(address, sectors, expect_labels, set_labels, cpu_overlap)
            self.records.append(
                IoRec(
                    "write",
                    address,
                    len(sectors),
                    payloads=tuple(disk._pad(s) for s in sectors),
                    set_labels=(
                        None
                        if set_labels is None
                        else tuple(_pad_label(l) for l in set_labels)
                    ),
                )
            )

        def read_labels(address, count=1):
            out = orig_read_labels(address, count)
            self.records.append(IoRec("label_read", address, count))
            return out

        def write_labels(address, labels):
            orig_write_labels(address, labels)
            self.records.append(
                IoRec(
                    "label_write",
                    address,
                    len(labels),
                    labels=tuple(_pad_label(l) for l in labels),
                )
            )

        disk.read_maybe = read_maybe  # type: ignore[method-assign]
        disk.write = write  # type: ignore[method-assign]
        disk.read_labels = read_labels  # type: ignore[method-assign]
        disk.write_labels = write_labels  # type: ignore[method-assign]
        self._installed = True

    def uninstall(self) -> None:
        """Restore the plain class methods; keeps the records."""
        if not self._installed:
            return
        for name in ("read_maybe", "write", "read_labels", "write_labels"):
            delattr(self.disk, name)
        self._installed = False


# ----------------------------------------------------------------------
# disk-state snapshots
# ----------------------------------------------------------------------
@dataclass
class DiskState:
    """A point-in-time copy of a simulated drive's persistent state."""

    data: dict[int, bytes]
    labels: dict[int, bytes]
    damaged: set[int]

    @classmethod
    def snapshot(cls, disk: SimDisk) -> "DiskState":
        return cls(
            data=dict(disk._data),
            labels=dict(disk._labels),
            damaged=set(disk.faults.damaged),
        )

    def clone(self) -> "DiskState":
        """An independent copy safe to mutate."""
        return DiskState(
            data=dict(self.data),
            labels=dict(self.labels),
            damaged=set(self.damaged),
        )


# ----------------------------------------------------------------------
# the recording
# ----------------------------------------------------------------------
@dataclass
class Recording:
    """Everything one baseline run of a scenario produced."""

    scenario: "CrashScenario"
    base: DiskState                       # disk state at body start
    records: list[IoRec]                  # the body's I/O stream
    applied: list[AppliedOp]              # body ops with I/O spans
    #: ``(io_count, ops_done)`` per group commit that returned: after
    #: ``io_count`` completed I/Os, the first ``ops_done`` body ops are
    #: durable (their metadata is in fully written log records).
    watermarks: list[tuple[int, int]] = field(default_factory=list)

    @property
    def io_total(self) -> int:
        return len(self.records)

    def committed_ops_at(self, boundary: int) -> int:
        """Body ops guaranteed durable when I/O ``boundary`` is torn
        (I/Os ``0..boundary-1`` completed)."""
        done = 0
        for io_count, ops in self.watermarks:
            if io_count <= boundary:
                done = max(done, ops)
        return done

    def pending_ops_at(self, boundary: int) -> list[AppliedOp]:
        """Body ops that started before the crash but are not covered
        by a returned commit — may be applied atomically or lost."""
        done = self.committed_ops_at(boundary)
        return [a for a in self.applied[done:] if a.start_io <= boundary]


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
def _build_volume(
    scenario: "CrashScenario", data_cache_pages: int = 0
) -> tuple[SimDisk, FSD, FsdAdapter]:
    disk = SimDisk(geometry=scenario.scale.geometry)
    FSD.format(disk, scenario.scale.fsd_params)
    fs = FSD.mount(
        disk,
        data_cache_pages=data_cache_pages,
        checkpoint_interval_ms=scenario.checkpoint_interval_ms,
    )
    return disk, fs, FsdAdapter(fs)


def apply_op(adapter, op: Op) -> None:
    """Apply one script op through the harness adapter surface."""
    if op.kind == "create":
        adapter.create(op.name, op.data, keep=op.keep)
    elif op.kind == "delete":
        adapter.delete(op.name)
    elif op.kind == "checkpoint":
        adapter.fs.checkpointer.tick()
    else:  # force
        adapter.settle()


def record_scenario(
    scenario: "CrashScenario", data_cache_pages: int = 0
) -> Recording:
    """Run ``scenario`` once, uncrashed, and record its body."""
    disk, fs, adapter = _build_volume(scenario, data_cache_pages)
    for op in scenario.setup:
        apply_op(adapter, op)
    adapter.settle()

    recorder = DiskRecorder(disk)
    recorder.install()
    base = DiskState.snapshot(disk)
    watermarks: list[tuple[int, int]] = []
    ops_done = [0]
    fs.coordinator.add_commit_hook(
        lambda: watermarks.append((recorder.io_count, ops_done[0]))
    )

    applied: list[AppliedOp] = []
    for index, op in enumerate(scenario.body):
        start = recorder.io_count
        apply_op(adapter, op)
        ops_done[0] = index + 1
        applied.append(
            AppliedOp(op=op, index=index, start_io=start, end_io=recorder.io_count)
        )
    recorder.uninstall()
    fs.crash()
    return Recording(
        scenario=scenario,
        base=base,
        records=recorder.records,
        applied=applied,
        watermarks=watermarks,
    )


def run_with_armed_crash(
    scenario: "CrashScenario",
    after_ios: int,
    surviving_sectors: int | None = None,
    damage_tail: int = 1,
    data_cache_pages: int = 0,
) -> SimDisk:
    """Live replay: re-run the scenario with a real armed crash at body
    I/O ``after_ios``; returns the crashed disk.  Used to cross-check
    that synthesized crash images match what the fault injector
    actually leaves behind."""
    disk, fs, adapter = _build_volume(scenario, data_cache_pages)
    for op in scenario.setup:
        apply_op(adapter, op)
    adapter.settle()
    disk.faults.arm_crash(
        after_ios=after_ios,
        surviving_sectors=surviving_sectors,
        damage_tail=damage_tail,
    )
    try:
        for op in scenario.body:
            apply_op(adapter, op)
        disk.faults.disarm_crash()
    except SimulatedCrash:
        pass
    fs.crash()
    return disk
