"""Seeded multi-fault soak campaigns.

The crash-point explorer (:mod:`repro.crashcheck.engine`) is
exhaustive over *where* a single crash lands.  The soak campaign is
the complementary axis: many randomized runs, each mixing a live FSD
workload with media faults **beyond the paper's single-fault model** —
permanent 1–2-sector damage, transient read failures, latent faults
that surface on the next read, wild writes into the name-table extents
and leader sectors, and mid-run crash/remount cycles.

The oracle is the robustness claim itself: every run must end in
exactly one of three honest states —

* ``recovered``  — the final mount is clean and every committed file
  reads back exactly (or fails with an *explicit* error where its data
  sectors were destroyed),
* ``degraded``   — the escalation ladder was exhausted or committed
  log records were lost; the volume says so and refuses writes, and a
  salvage pass must then succeed,
* ``salvaged``   — the volume would not even mount; the salvager must
  rebuild a volume whose surviving files are byte-faithful.

What is *never* acceptable is **silent corruption**: a committed file
absent or altered while the mount claims to be healthy, or any file
whose content was never written to it.  Runs are seeded and fully
deterministic, so a campaign is a reproducible regression artifact
(``python -m repro soak --json``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.fsd import FSD
from repro.core.salvage import SalvageReport, salvage_volume
from repro.crashcheck.scenarios import CRASH_SCALE
from repro.disk.disk import SimDisk
from repro.errors import (
    CorruptMetadata,
    DegradedVolumeError,
    DiskError,
    FileNotFound,
    FsError,
)

#: fault kinds and their selection weights.  ``nt_pair`` destroys both
#: home copies of one name-table page — deliberately past the paper's
#: single-fault model, so the escalation ladder's degraded rung and the
#: salvager actually get exercised.  Shared with the chaos engine
#: (:mod:`repro.workloads.chaos`), which fires the same mix *under*
#: live multi-client traffic.
FAULT_KINDS = (
    ("permanent", 0.30),
    ("transient", 0.20),
    ("latent", 0.15),
    ("wild_write", 0.20),
    ("nt_pair", 0.15),
)

_FAULT_KINDS = FAULT_KINDS  # backwards-compatible alias


@dataclass(frozen=True)
class SoakConfig:
    """One campaign's shape.  The defaults inject 12 × 18 = 216 faults
    — comfortably past the single-fault model the rest of the test
    suite explores."""

    seed: int = 1987
    runs: int = 12
    ops_per_run: int = 30
    faults_per_run: int = 18
    #: per-op probability of a crash/remount cycle mid-run.
    crash_probability: float = 0.12

    @property
    def total_faults(self) -> int:
        return self.runs * self.faults_per_run


@dataclass
class RunResult:
    """Outcome of one seeded run."""

    index: int
    seed: int
    verdict: str = ""  # "recovered" | "degraded" | "salvaged"
    ops: int = 0
    crashes: int = 0
    faults: dict[str, int] = field(default_factory=dict)
    op_errors: int = 0
    files_expected: int = 0
    files_verified: int = 0
    files_honestly_lost: int = 0
    #: descriptions of silent-corruption findings; MUST stay empty.
    silent_corruptions: list[str] = field(default_factory=list)
    salvage_summary: str | None = None

    @property
    def faults_injected(self) -> int:
        return sum(self.faults.values())


@dataclass
class CampaignReport:
    """A whole campaign: per-run results plus the aggregate oracle."""

    config: SoakConfig
    results: list[RunResult] = field(default_factory=list)

    @property
    def faults_injected(self) -> int:
        return sum(result.faults_injected for result in self.results)

    @property
    def verdict_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return counts

    @property
    def silent_corruptions(self) -> list[str]:
        out = []
        for result in self.results:
            out.extend(
                f"run {result.index}: {finding}"
                for finding in result.silent_corruptions
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.silent_corruptions and all(
            result.verdict in ("recovered", "degraded", "salvaged")
            for result in self.results
        )

    def to_json(self) -> dict:
        """JSON-serializable campaign report (the CI artifact)."""
        return {
            "seed": self.config.seed,
            "runs": self.config.runs,
            "ops_per_run": self.config.ops_per_run,
            "faults_per_run": self.config.faults_per_run,
            "faults_injected": self.faults_injected,
            "verdicts": self.verdict_counts,
            "silent_corruptions": self.silent_corruptions,
            "ok": self.ok,
            "results": [
                {
                    "index": result.index,
                    "verdict": result.verdict,
                    "ops": result.ops,
                    "crashes": result.crashes,
                    "faults": result.faults,
                    "op_errors": result.op_errors,
                    "files_expected": result.files_expected,
                    "files_verified": result.files_verified,
                    "files_honestly_lost": result.files_honestly_lost,
                    "salvage": result.salvage_summary,
                }
                for result in self.results
            ],
        }

    def summary(self) -> str:
        """One-line human-readable digest of the whole campaign."""
        verdicts = ", ".join(
            f"{count} {verdict}"
            for verdict, count in sorted(self.verdict_counts.items())
        )
        status = "OK" if self.ok else "SILENT CORRUPTION"
        return (
            f"soak campaign seed={self.config.seed}: "
            f"{len(self.results)} runs, {self.faults_injected} faults "
            f"injected ({verdicts}) — {status}"
        )


# ----------------------------------------------------------------------
# one run
# ----------------------------------------------------------------------
class _RunState:
    """Everything a run tracks to judge its own outcome honestly."""

    def __init__(self) -> None:
        #: op log: ("create", name, data) / ("delete", name, b"").
        self.oplog: list[tuple[str, str, bytes]] = []
        #: every payload ever written per name — the only contents a
        #: read may ever return for it.
        self.history: dict[str, set[bytes]] = {}
        #: ops covered by a returned group commit.
        self.committed_ops = 0
        #: leader sectors of live files (wild-write targets).
        self.leader_addrs: dict[tuple[str, int], int] = {}
        #: any mount reported log damage / lost records, or the volume
        #: marked itself degraded: absence of a committed file is then
        #: an honest loss, not a silent one.
        self.honesty_flag = False

    def expected_visible(self, keep: int = 2) -> dict[str, bytes]:
        """Replay the committed op prefix: name -> newest content."""
        stacks: dict[str, list[bytes]] = {}
        for kind, name, data in self.oplog[: self.committed_ops]:
            if kind == "create":
                stack = stacks.setdefault(name, [])
                stack.append(data)
                del stack[:-keep]
            elif kind == "delete" and stacks.get(name):
                stacks[name].pop()
        return {
            name: stack[-1] for name, stack in stacks.items() if stack
        }

    def uncommitted_touches(self, name: str) -> bool:
        return any(
            op_name == name for _, op_name, _ in self.oplog[self.committed_ops :]
        )


def _install_watermark(fs: FSD, state: _RunState) -> list[int]:
    """Commit hook: ops finished before a commit returned are durable."""
    ops_done = [len(state.oplog)]

    def hook() -> None:
        state.committed_ops = max(state.committed_ops, ops_done[0])

    fs.coordinator.add_commit_hook(hook)
    return ops_done


def nt_page(layout, rng: random.Random) -> int:
    """A name-table page number, biased toward the low pages a small
    volume actually uses (uniform hits over thousands of blank pages
    would never stress anything)."""
    nt_pages = layout.params.nt_pages
    if rng.random() < 0.6:
        return rng.randrange(min(32, nt_pages))
    return rng.randrange(nt_pages)


def pick_fault_kind(rng: random.Random) -> str:
    """One kind from :data:`FAULT_KINDS` by weight."""
    roll = rng.random()
    cumulative = 0.0
    kind = FAULT_KINDS[-1][0]
    for name, weight in FAULT_KINDS:
        cumulative += weight
        if roll < cumulative:
            kind = name
            break
    return kind


def fault_target(
    layout, leader_addrs: dict, rng: random.Random
) -> int:
    """Pick a sector for a damage fault: name-table copies, the log,
    or a live file's sectors — the places recovery has to care about.
    ``leader_addrs`` maps live (name, version) pairs to their leader
    sectors."""
    choice = rng.random()
    if choice < 0.3:
        return layout.nt_a_start + nt_page(layout, rng)
    if choice < 0.5 and not layout.params.single_nt_copy:
        return layout.nt_b_start + nt_page(layout, rng)
    if choice < 0.75:
        return layout.log_start + rng.randrange(
            3 + layout.params.log_record_sectors
        )
    if leader_addrs and choice < 0.9:
        return rng.choice(sorted(leader_addrs.values()))
    area = layout.big_area if rng.random() < 0.5 else layout.small_area
    return area.start + rng.randrange(area.count)


def wild_write_target(
    layout, leader_addrs: dict, rng: random.Random
) -> int:
    """Wild writes model software scribbling over mapped metadata: they
    land only on name-table extents or leader sectors (paper §5.3's
    read-protection motivation)."""
    if leader_addrs and rng.random() < 0.4:
        return rng.choice(sorted(leader_addrs.values()))
    base = (
        layout.nt_a_start
        if layout.params.single_nt_copy or rng.random() < 0.5
        else layout.nt_b_start
    )
    return base + nt_page(layout, rng)


def inject_fault(
    disk: SimDisk, layout, leader_addrs: dict, rng: random.Random
) -> str:
    """Inject one weighted fault against ``disk``; returns its kind."""
    kind = pick_fault_kind(rng)
    if kind == "permanent":
        disk.faults.damage(
            fault_target(layout, leader_addrs, rng),
            count=rng.choice((1, 2)),
        )
    elif kind == "transient":
        disk.faults.damage_transient(
            fault_target(layout, leader_addrs, rng),
            failures=rng.choice((1, 2)),
        )
    elif kind == "latent":
        disk.faults.damage_latent(fault_target(layout, leader_addrs, rng))
    elif kind == "nt_pair":
        page_no = nt_page(layout, rng)
        address_a, address_b = layout.nt_page_addresses(page_no)
        disk.faults.damage(address_a)
        if not layout.params.single_nt_copy:
            disk.faults.damage(address_b)
    else:  # wild_write
        junk = bytes(rng.getrandbits(8) for _ in range(48))
        disk.write(wild_write_target(layout, leader_addrs, rng), [junk])
    return kind


def _inject_fault(
    disk: SimDisk, fs: FSD, state: _RunState, rng: random.Random
) -> str:
    return inject_fault(disk, fs.layout, state.leader_addrs, rng)


def _note_mount_honesty(fs: FSD, state: _RunState) -> None:
    report = fs.mount_report
    if report.log_damage or report.log_records_lost or fs.degraded:
        state.honesty_flag = True


def run_soak(index: int, config: SoakConfig) -> RunResult:
    """One seeded workload-plus-faults run, judged honestly."""
    seed = config.seed * 100_003 + index
    rng = random.Random(seed)
    result = RunResult(index=index, seed=seed)
    state = _RunState()

    disk = SimDisk(geometry=CRASH_SCALE.geometry)
    FSD.format(disk, CRASH_SCALE.fsd_params)
    fs = FSD.mount(disk)
    ops_done = _install_watermark(fs, state)

    names = [f"soak/file-{n:02d}" for n in range(10)]
    faults_left = config.faults_per_run
    payload_counter = 0

    for op_index in range(config.ops_per_run):
        remaining_ops = config.ops_per_run - op_index
        while faults_left > 0 and rng.random() < faults_left / remaining_ops:
            kind = _inject_fault(disk, fs, state, rng)
            result.faults[kind] = result.faults.get(kind, 0) + 1
            faults_left -= 1

        roll = rng.random()
        try:
            if roll < 0.55:
                name = rng.choice(names)
                payload_counter += 1
                stamp = f"{name}#{seed}#{payload_counter}|".encode()
                data = stamp * (1 + rng.randrange(40))
                handle = fs.create(name, data)
                state.history.setdefault(name, set()).add(data)
                state.oplog.append(("create", name, data))
                version = handle.props.version
                state.leader_addrs[(name, version)] = (
                    handle.props.leader_addr
                )
                # Versions beyond the keep limit were trimmed by the
                # create: their leader sectors are free again and must
                # never be wild-write targets (they may be reallocated
                # as plain data, where a scribble would be silent).
                for key in [
                    k
                    for k in state.leader_addrs
                    if k[0] == name and k[1] <= version - FSD.DEFAULT_KEEP
                ]:
                    del state.leader_addrs[key]
            elif roll < 0.75:
                name = rng.choice(names)
                props = fs.delete(name)
                state.oplog.append(("delete", name, b""))
                state.leader_addrs.pop((name, props.version), None)
            else:
                fs.force()
            result.ops += 1
            ops_done[0] = len(state.oplog)
        except DegradedVolumeError:
            state.honesty_flag = True
            break
        except (FsError, DiskError):
            result.op_errors += 1
        if fs.degraded:
            state.honesty_flag = True
            break

        if rng.random() < config.crash_probability:
            fs.crash()
            result.crashes += 1
            # Ops not covered by a returned commit died with the crash;
            # they must never be counted committed by a *later* commit.
            # (If an in-flight force secretly made one durable, the
            # content-history check still accepts what it reads back.)
            del state.oplog[state.committed_ops :]
            try:
                fs = FSD.mount(disk)
            except (DegradedVolumeError, CorruptMetadata):
                state.honesty_flag = True
                fs = None
                break
            ops_done = _install_watermark(fs, state)
            ops_done[0] = len(state.oplog)
            _note_mount_honesty(fs, state)
            # Creates lost in the crash leave stale leader addresses
            # whose sectors are free for data reallocation; re-derive
            # the wild-write targets from what actually survived.
            try:
                state.leader_addrs = {
                    (props.name, props.version): props.leader_addr
                    for props in fs.list()
                }
            except (FsError, DiskError):
                state.leader_addrs.clear()

    if fs is not None:
        fs.crash()

    _classify(disk, state, result)
    return result


# ----------------------------------------------------------------------
# classification + verification
# ----------------------------------------------------------------------
def _classify(disk: SimDisk, state: _RunState, result: RunResult) -> None:
    try:
        fs = FSD.mount(disk)
    except (DegradedVolumeError, CorruptMetadata):
        result.verdict = "salvaged"
        _verify_salvage(disk, state, result)
        return
    _note_mount_honesty(fs, state)
    result.verdict = "degraded" if fs.degraded else "recovered"
    _verify_mounted(fs, state, result)
    fs.crash()
    if result.verdict == "degraded":
        # A degraded volume must still be salvageable.
        _verify_salvage(disk, state, result)


def _verify_mounted(fs: FSD, state: _RunState, result: RunResult) -> None:
    expected = state.expected_visible()
    result.files_expected = len(expected)
    for name, want in sorted(expected.items()):
        try:
            handle = fs.open(name)
            got = fs.read(handle)
        except FileNotFound:
            if (
                state.honesty_flag
                or state.uncommitted_touches(name)
            ):
                result.files_honestly_lost += 1
            else:
                result.silent_corruptions.append(
                    f"committed file {name} vanished from a mount that "
                    "claims to be healthy"
                )
            continue
        except (DiskError, CorruptMetadata):
            # Explicit failure: destroyed data sectors / wild-written
            # leaders are reported, never papered over.
            result.files_honestly_lost += 1
            continue
        if got == want or got in state.history.get(name, ()):
            result.files_verified += 1
        else:
            result.silent_corruptions.append(
                f"file {name} returned {len(got)} bytes that were "
                "never written to it"
            )


def _verify_salvage(
    disk: SimDisk, state: _RunState, result: RunResult
) -> None:
    try:
        destination, report = salvage_volume(disk)
    except (DegradedVolumeError, CorruptMetadata) as error:
        result.silent_corruptions.append(f"salvage failed: {error}")
        return
    result.salvage_summary = report.summary()
    fs = FSD.mount(destination)
    expected = state.expected_visible()
    if not result.files_expected:
        result.files_expected = len(expected)
    for name, want in sorted(expected.items()):
        try:
            handle = fs.open(name)
            got = fs.read(handle)
        except (FileNotFound, DiskError, CorruptMetadata):
            # Salvage is best-effort: a file whose every trace was
            # destroyed is honestly absent (and the lost list says so
            # when any trace survived).
            result.files_honestly_lost += 1
            continue
        if got == want or got in state.history.get(name, ()):
            result.files_verified += 1
        else:
            result.silent_corruptions.append(
                f"salvaged file {name} returned {len(got)} bytes that "
                "were never written to it"
            )
    fs.crash()


def run_campaign(config: SoakConfig | None = None, progress=None) -> CampaignReport:
    """Run a whole soak campaign; deterministic for a given config."""
    config = config or SoakConfig()
    report = CampaignReport(config=config)
    for index in range(config.runs):
        result = run_soak(index, config)
        report.results.append(result)
        if progress is not None:
            progress(index + 1, config.runs, result)
    return report
