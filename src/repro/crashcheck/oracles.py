"""Recovery oracles: what must hold after crash + remount.

Two layers, per the paper's durability contract:

* **structural** — the offline integrity sweep (:mod:`repro.core.verify`)
  passes in strict-VAM mode: the B-tree is valid, both home copies of
  every name-table page agree, every leader verifies, no sector is
  claimed twice, and the live VAM exactly matches a rebuild.

* **semantic** — every operation the workload saw committed (a group
  commit covering it returned before the crash point) is fully
  present, byte for byte; operations after the last returned commit
  are either absent or *atomically* applied — a file is never present
  with content that no create ever wrote.

The semantic oracle models FSD's versioned namespace as per-name
version stacks.  For uncommitted ops it accepts any per-name prefix
of the pending sequence (a strict superset of the globally consistent
prefixes recovery can actually produce, so it never false-alarms, but
partial or garbled content is still always caught).

Oracles are pluggable: anything with a ``name`` and a
``check(fs, ctx) -> list[str]`` fits the engine's oracle slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.fsd import FSD
from repro.core.verify import verify_volume
from repro.crashcheck.workload import AppliedOp, Op, Recording

#: sentinel for "the name resolves to no file" in allowed-state sets.
ABSENT = "<absent>"


# ----------------------------------------------------------------------
# the namespace model
# ----------------------------------------------------------------------
def model_apply(stacks: dict[str, list[bytes]], op: Op) -> None:
    """Apply one op to the version-stack model of the namespace.

    Mirrors FSD semantics: a create pushes the next version (trimming
    the oldest past ``keep`` when retention is bounded); a delete pops
    the newest version, exposing the previous one if any.
    """
    if op.kind == "create":
        stack = stacks.setdefault(op.name, [])
        stack.append(op.data)
        if op.keep > 0 and len(stack) > op.keep:
            del stack[: len(stack) - op.keep]
    elif op.kind == "delete":
        stack = stacks.get(op.name)
        if stack:
            stack.pop()
            if not stack:
                del stacks[op.name]
    # "force" and "checkpoint" have no namespace effect


def model_state(ops: list[Op]) -> dict[str, list[bytes]]:
    """The version stacks after applying ``ops`` to an empty volume."""
    stacks: dict[str, list[bytes]] = {}
    for op in ops:
        model_apply(stacks, op)
    return stacks


# ----------------------------------------------------------------------
# oracle context
# ----------------------------------------------------------------------
@dataclass
class OracleContext:
    """Everything an oracle may consult about one crash point."""

    boundary: int
    variant: str
    committed: dict[str, list[bytes]]      # version stacks, oldest first
    pending: list[AppliedOp]

    _allowed: dict[str, set] = field(default_factory=dict, repr=False)

    @classmethod
    def at(cls, recording: Recording, boundary: int, variant: str) -> "OracleContext":
        done = recording.committed_ops_at(boundary)
        committed = model_state(
            list(recording.scenario.setup)
            + [a.op for a in recording.applied[:done]]
        )
        return cls(
            boundary=boundary,
            variant=variant,
            committed=committed,
            pending=recording.pending_ops_at(boundary),
        )

    def allowed_states(self) -> dict[str, set]:
        """Per name: the set of contents (or :data:`ABSENT`) recovery
        may legitimately expose.  Committed-only names map to exactly
        their committed content; names touched by pending ops also
        admit each intermediate pending state."""
        if self._allowed:
            return self._allowed
        allowed: dict[str, set] = {}

        def top(stacks: dict[str, list[bytes]], name: str):
            stack = stacks.get(name)
            return stack[-1] if stack else ABSENT

        for name in self.committed:
            allowed[name] = {top(self.committed, name)}
        stacks = {name: list(stack) for name, stack in self.committed.items()}
        for applied in self.pending:
            op = applied.op
            if op.kind in ("force", "checkpoint"):
                continue
            allowed.setdefault(op.name, {top(stacks, op.name)})
            model_apply(stacks, op)
            allowed[op.name].add(top(stacks, op.name))
        self._allowed = allowed
        return allowed


@runtime_checkable
class Oracle(Protocol):
    """The pluggable oracle surface the engine fans out to."""

    name: str

    def check(self, fs: FSD, ctx: OracleContext) -> list[str]:
        """Return a problem string per violated invariant (empty = ok)."""
        ...


# ----------------------------------------------------------------------
# structural oracle
# ----------------------------------------------------------------------
class StructuralOracle:
    """The offline verify sweep, in strict-VAM mode by default.

    After crash recovery the VAM is freshly rebuilt from the name
    table, so even strict mode must find zero leaked sectors; any
    report at all is a recovery bug.
    """

    name = "structural"

    def __init__(self, strict_vam: bool = True):
        self.strict_vam = strict_vam

    def check(self, fs: FSD, ctx: OracleContext) -> list[str]:
        """Every verifier problem is a structural violation."""
        report = verify_volume(fs, strict_vam=self.strict_vam)
        return list(report.problems)


# ----------------------------------------------------------------------
# semantic oracle
# ----------------------------------------------------------------------
class SemanticOracle:
    """Committed ops fully present; pending ops atomic or absent."""

    name = "semantic"

    def check(self, fs: FSD, ctx: OracleContext) -> list[str]:
        """Compare the recovered namespace against the allowed states."""
        problems: list[str] = []
        allowed = ctx.allowed_states()
        present = {props.name for props in fs.list()}

        for name in sorted(present - set(allowed)):
            problems.append(f"unexpected file {name!r} after recovery")

        for name, states in sorted(allowed.items()):
            if name not in present:
                if ABSENT not in states:
                    problems.append(
                        f"committed file {name!r} lost by recovery"
                    )
                continue
            try:
                content = fs.read(fs.open(name))
            except Exception as error:
                problems.append(f"file {name!r} unreadable: {error}")
                continue
            if content not in states:
                kind = (
                    "committed content corrupted"
                    if ABSENT not in states
                    else "partial/garbled uncommitted state"
                )
                expected = sorted(
                    f"{len(s)}B" for s in states if s is not ABSENT
                )
                problems.append(
                    f"{kind} for {name!r}: recovered {len(content)} bytes, "
                    f"expected one of {expected or ['absent']}"
                )
        return problems


# ----------------------------------------------------------------------
# cache-coherence oracle
# ----------------------------------------------------------------------
class CacheCoherenceOracle:
    """A post-crash read must never observe cached pre-crash data.

    The data-page cache is volatile, so a recovered mount must start
    cold — any page already cached when the oracles run would be a leak
    of pre-crash state across the crash boundary.  When the remount
    enables the cache, the oracle also reads every surviving file twice
    and requires the warm (cache-served) pass to be byte-identical to
    the cold pass straight off the platter.

    Runs before :class:`SemanticOracle` (whose reads warm the cache);
    the structural sweep only touches leaders via ``fs.io``, so the
    cache is still exactly as ``FSD.mount`` left it here.
    """

    name = "cache-coherence"

    def check(self, fs: FSD, ctx: OracleContext) -> list[str]:
        """Flag a warm cache at mount; cross-check cold vs warm reads."""
        problems: list[str] = []
        if len(fs.data_cache):
            problems.append(
                f"data cache holds {len(fs.data_cache)} page(s) at mount "
                "— pre-crash cached data survived the crash"
            )
        if not fs.data_cache.enabled:
            return problems
        for props in fs.list():
            try:
                handle = fs.open(props.name)
                cold = fs.read(handle)
                warm = fs.read(handle)
            except Exception:
                continue  # the semantic oracle reports unreadable files
            if cold != warm:
                problems.append(
                    f"cached re-read of {props.name!r} diverges from the "
                    f"platter copy after recovery ({len(cold)} vs "
                    f"{len(warm)} bytes or content mismatch)"
                )
        return problems


def default_oracles(strict_vam: bool = True) -> list[Oracle]:
    """The standard oracle stack: structural first, then the cache
    check (while the cache is still untouched), then semantic."""
    return [
        StructuralOracle(strict_vam=strict_vam),
        CacheCoherenceOracle(),
        SemanticOracle(),
    ]
