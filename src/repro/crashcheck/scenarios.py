"""Named crashcheck scenarios.

A scenario is a :class:`~repro.harness.scenarios.Scale` (the same
dataclass the benchmark harness uses, so geometry and per-FS
parameters are shared vocabulary) plus two op scripts: ``setup`` runs
and commits before recording starts (it shapes the volume the way
:func:`repro.harness.scenarios.populate` shapes benchmark volumes),
``body`` is the recorded region whose every I/O boundary the explorer
crashes.

Scripts keep each force's batch comfortably under
``max_record_pages`` so every commit is a single (atomic) log record;
larger batches split across records, and a crash between the records
of one force is outside the per-operation atomicity the oracles
assert (the client never saw that force return, but partial
application across the split would still trip the semantic oracle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layout import VolumeParams
from repro.crashcheck.workload import Op
from repro.disk.geometry import DiskGeometry
from repro.harness.scenarios import SMALL, Scale
from repro.workloads.generators import payload

#: Compact scale for exhaustive sweeps: the same shape as the harness
#: SMALL scale, but a smaller drive and log so every boundary of a
#: scenario can be explored in seconds.  The log is deliberately small
#: (77-sector thirds) so longer scenarios wrap it and exercise the
#: third-entry writeback protocol under crashes.
CRASH_SCALE = Scale(
    name="crashcheck",
    geometry=DiskGeometry(cylinders=120, heads=8, sectors_per_track=24),
    fsd_params=VolumeParams(
        nt_pages=512,
        log_record_sectors=231,
        cache_pages=32,
        max_record_pages=24,
    ),
    cfs_params=SMALL.cfs_params,
    ffs_params=SMALL.ffs_params,
    populate_files=24,
    recovery_files=24,
    recovery_big_files=1,
    recovery_big_bytes=64 * 1024,
)


@dataclass(frozen=True)
class CrashScenario:
    """One named workload for the crash-point explorer."""

    name: str
    description: str
    scale: Scale
    setup: tuple[Op, ...]
    body: tuple[Op, ...]
    #: mount the recorded volume with the background checkpointer at
    #: this interval (parked far out: ``"checkpoint"`` ops drive it
    #: explicitly, keeping the recording deterministic).  ``None``
    #: mounts without a checkpointer, as every pre-existing scenario
    #: did.
    checkpoint_interval_ms: float | None = None


def _aged_setup(count: int, seed: int = 1987) -> tuple[Op, ...]:
    """Pre-create ``count`` committed files (the populate() shape)."""
    return tuple(
        Op("create", f"aged/file-{index:03d}", payload(200 + 61 * index % 900, seed + index))
        for index in range(count)
    )


def _quickstart() -> CrashScenario:
    """The README/examples quickstart walk, scripted: one-byte create,
    a burst of small creates, a forced commit, more work including a
    delete, and an un-forced tail that a crash may lose."""
    body: list[Op] = [
        Op("create", "crash/warmup", b"?"),
        Op("create", "crash/one-byte", b"!"),
    ]
    for index in range(6):
        body.append(Op("create", f"crash/file-{index:02d}", b"cedar" * index))
    body.append(Op("force"))
    for index in range(4):
        body.append(Op("create", f"crash/extra-{index}", payload(300 + 70 * index, index)))
    body.append(Op("delete", "crash/file-03"))
    body.append(Op("force"))
    body.append(Op("create", "crash/never-forced", payload(800, 99)))
    return CrashScenario(
        name="quickstart",
        description="the quickstart walk: creates, a delete, forced "
        "commits, and an un-forced tail",
        scale=CRASH_SCALE,
        setup=_aged_setup(20),
        body=tuple(body),
    )


def _churn() -> CrashScenario:
    """Version churn: re-creates stacking versions, deletes exposing
    older versions, and multi-sector data writes whose torn-write
    variant space is the widest."""
    body = (
        Op("create", "churn/one", payload(1800, 1)),
        Op("create", "churn/two", payload(700, 2)),
        Op("force"),
        Op("create", "churn/one", payload(2600, 3)),   # second version
        Op("delete", "churn/two"),
        Op("force"),
        Op("create", "churn/three", payload(512 * 5, 4)),
        Op("delete", "churn/one"),                     # exposes version 1
        Op("force"),
        Op("create", "churn/four", payload(90, 5)),
        Op("create", "churn/five", payload(1300, 6)),
        # no final force: an uncommitted tail
    )
    return CrashScenario(
        name="churn",
        description="version churn with multi-sector writes and "
        "deletes exposing older versions",
        scale=CRASH_SCALE,
        setup=_aged_setup(16),
        body=body,
    )


def _wrap() -> CrashScenario:
    """Enough committed rounds to wrap the small log at least once,
    so crashes land inside third-entry writebacks, anchor advances and
    skip records."""
    body: list[Op] = []
    for round_index in range(14):
        for index in range(4):
            body.append(
                Op(
                    "create",
                    f"wrap/r{round_index:02d}-{index}",
                    payload(180 + 53 * index, round_index),
                )
            )
        if round_index % 3 == 2:
            body.append(Op("delete", f"wrap/r{round_index - 1:02d}-0"))
        body.append(Op("force"))
    body.append(Op("create", "wrap/never-forced", payload(400, 7)))
    return CrashScenario(
        name="wrap",
        description="log-wrapping committed rounds (third-entry "
        "protocol and anchor advances under crash)",
        scale=CRASH_SCALE,
        setup=_aged_setup(12),
        body=tuple(body),
    )


def _concurrent_burst() -> CrashScenario:
    """Four clients' interleaved streams sharing group commits: each
    force's record carries updates from several clients, so a crash
    mid-commit loses (or keeps) the whole multi-client batch
    atomically.  Ends with an un-forced multi-client tail plus a
    delete whose shadowed frees span a client boundary."""
    clients = 4
    body: list[Op] = []
    for round_index in range(4):
        # Round-robin: one small create per client per round.
        for client in range(clients):
            body.append(
                Op(
                    "create",
                    f"c{client}/r{round_index:02d}",
                    payload(150 + 97 * client + 13 * round_index,
                            client * 100 + round_index),
                )
            )
        if round_index % 2 == 1:
            # Group commit: the batch holds 8 creates from 4 clients
            # (still one atomic record at CRASH_SCALE).
            body.append(Op("force"))
    body.append(Op("delete", "c1/r00"))
    body.append(Op("force"))
    # Un-forced tail from three different clients: a crash may lose
    # all of it, but never a proper subset of one operation.
    body.append(Op("create", "c0/tail", payload(260, 900)))
    body.append(Op("create", "c2/tail", payload(410, 901)))
    body.append(Op("delete", "c3/r03"))
    return CrashScenario(
        name="concurrent_burst",
        description="four interleaved client streams sharing group "
        "commits, crashed mid-batch with clients in flight",
        scale=CRASH_SCALE,
        setup=_aged_setup(16),
        body=tuple(body),
    )


def _mid_checkpoint() -> CrashScenario:
    """Crash points inside background checkpoints: the window between
    the checkpointer's write-home pass and the anchor advance is where
    home pages are already durable but the log still claims the records
    covering them — recovery must replay those records idempotently
    over the installed pages.  Later rounds keep mutating the same
    files so installed home images are genuinely stale by the next
    checkpoint, and an un-forced tail rides the final tick."""
    body: list[Op] = []
    for round_index in range(3):
        for index in range(4):
            body.append(
                Op(
                    "create",
                    f"ckpt/r{round_index}-{index}",
                    payload(220 + 67 * index + 31 * round_index,
                            round_index * 10 + index),
                )
            )
        # Re-create a shared name every round: its home page is
        # re-dirtied after each install, so every checkpoint has real
        # write-home work, not just the first.
        body.append(
            Op("create", "ckpt/hot", payload(900 + 130 * round_index,
                                             round_index))
        )
        if round_index == 2:
            body.append(Op("delete", "ckpt/r1-0"))
        body.append(Op("force"))
        # The recorded checkpoint: flush_all_home's background writes
        # followed by the sync anchor write.  Every I/O boundary in
        # between is a mid-checkpoint crash.
        body.append(Op("checkpoint"))
    body.append(Op("create", "ckpt/never-forced", payload(500, 77)))
    return CrashScenario(
        name="mid_checkpoint",
        description="background checkpoints crashed between write-home "
        "and anchor advance (redo idempotence over installed pages)",
        scale=CRASH_SCALE,
        setup=_aged_setup(16),
        body=tuple(body),
        checkpoint_interval_ms=1e12,
    )


SCENARIOS: dict[str, CrashScenario] = {
    scenario.name: scenario
    for scenario in (
        _quickstart(),
        _churn(),
        _wrap(),
        _concurrent_burst(),
        _mid_checkpoint(),
    )
}


def get_scenario(name: str) -> CrashScenario:
    """Look up a scenario by name (raises with the known names)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})") from None
