"""The ``python -m repro crashcheck`` front end.

Runs a named scenario's crash-point sweep and prints a progress line,
per-violation details and a coverage summary.  Exits non-zero iff any
oracle failed at any explored crash point.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.crashcheck.engine import explore
from repro.crashcheck.scenarios import SCENARIOS, get_scenario


def add_subparser(sub) -> None:
    """Register the ``crashcheck`` subcommand on an argparse subparsers
    object (called from :mod:`repro.__main__`)."""
    p = sub.add_parser(
        "crashcheck",
        help="exhaustive crash-point exploration with recovery oracles",
        description=(
            "Record a workload scenario once, then crash it at every "
            "I/O boundary (and every torn-write variant), remount "
            "through real recovery and check structural + semantic "
            "recovery oracles."
        ),
    )
    p.add_argument(
        "--scenario",
        default="quickstart",
        choices=sorted(SCENARIOS),
        help="workload scenario to sweep (default: quickstart)",
    )
    p.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="bound the sweep to N evenly spaced crash points "
        "(default: explore all of them)",
    )
    p.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )
    p.set_defaults(fn=cmd_crashcheck)


def cmd_crashcheck(args) -> int:
    """Run the sweep (or ``--list`` scenarios); non-zero on violations."""
    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name:<12} {scenario.description}")
        return 0

    scenario = get_scenario(args.scenario)
    show_progress = not args.quiet and sys.stderr.isatty()

    def progress(done: int, total: int) -> None:
        if show_progress and (done % 25 == 0 or done == total):
            print(
                f"\r  crashcheck [{scenario.name}] {done}/{total} points",
                end="" if done < total else "\n",
                file=sys.stderr,
                flush=True,
            )

    started = time.monotonic()
    summary = explore(
        scenario, max_points=args.max_points, progress=progress
    )
    elapsed = time.monotonic() - started

    for violation in summary.violations:
        print(f"VIOLATION {violation}")
    print(
        f"crashcheck [{summary.scenario}]: "
        f"{summary.checked} crash points checked "
        f"({summary.deduplicated} deduplicated, "
        f"{summary.selected} selected of {summary.candidates} candidates "
        f"across {summary.io_boundaries} I/O boundaries) "
        f"in {elapsed:.1f}s"
    )
    if summary.ok:
        print("all recovery oracles passed")
        return 0
    print(f"{len(summary.violations)} oracle violation(s)")
    return 1
