"""The ``python -m repro crashcheck`` front end.

Runs a named scenario's crash-point sweep and prints a progress line,
per-violation details and a coverage summary.  Exits non-zero iff any
oracle failed at any explored crash point.
"""

from __future__ import annotations

import sys
import time

from repro.crashcheck.engine import explore
from repro.crashcheck.scenarios import SCENARIOS, get_scenario
from repro.obs import Observer
from repro.obs.instrument import instrument


def add_subparser(sub) -> None:
    """Register the ``crashcheck`` subcommand on an argparse subparsers
    object (called from :mod:`repro.__main__`)."""
    p = sub.add_parser(
        "crashcheck",
        help="exhaustive crash-point exploration with recovery oracles",
        description=(
            "Record a workload scenario once, then crash it at every "
            "I/O boundary (and every torn-write variant), remount "
            "through real recovery and check structural + semantic "
            "recovery oracles."
        ),
    )
    p.add_argument(
        "--scenario",
        default="quickstart",
        choices=sorted(SCENARIOS),
        help="workload scenario to sweep (default: quickstart)",
    )
    p.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="bound the sweep to N evenly spaced crash points "
        "(default: explore all of them)",
    )
    p.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="print recovery metrics aggregated across all mounts",
    )
    p.add_argument(
        "--data-cache-pages",
        type=int,
        default=0,
        metavar="N",
        help="enable an N-sector data-page cache in the recorded run "
        "and every post-crash remount, so the cache-coherence oracle "
        "exercises cached reads (default: 0, disabled)",
    )
    p.set_defaults(fn=cmd_crashcheck)


def _print_recovery_metrics(obs: Observer) -> None:
    """Per-sweep recovery totals: what all those remounts replayed."""
    snap = obs.snapshot()
    mounts = snap.counter("recovery.mounts")
    print(f"recovery metrics across {mounts:g} mounts:")
    for name in (
        "recovery.records_replayed",
        "recovery.pages_replayed",
        "recovery.pages_skipped",
        "recovery.vam_rebuilds",
        "recovery.vam_rebuild_entries",
        "vam.loads",
    ):
        print(f"  {name:<30} {snap.counter(name):g}")
    phases: dict[str, tuple[int, float]] = {}
    for record in obs.span_records():
        if not record.name.startswith("recovery."):
            continue
        count, total = phases.get(record.name, (0, 0.0))
        phases[record.name] = (count + 1, total + record.duration_ms)
    for name in sorted(phases):
        count, total = phases[name]
        print(
            f"  {name:<30} {count} spans, "
            f"{total:.1f} simulated ms total"
        )


def cmd_crashcheck(args) -> int:
    """Run the sweep (or ``--list`` scenarios); non-zero on violations."""
    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name:<12} {scenario.description}")
        return 0

    scenario = get_scenario(args.scenario)
    show_progress = not args.quiet and sys.stderr.isatty()

    def progress(done: int, total: int) -> None:
        if show_progress and (done % 25 == 0 or done == total):
            print(
                f"\r  crashcheck [{scenario.name}] {done}/{total} points",
                end="" if done < total else "\n",
                file=sys.stderr,
                flush=True,
            )

    obs = instrument(metrics=args.metrics).obs
    started = time.monotonic()
    summary = explore(
        scenario,
        max_points=args.max_points,
        progress=progress,
        obs=obs,
        data_cache_pages=args.data_cache_pages,
    )
    elapsed = time.monotonic() - started

    if args.metrics:
        _print_recovery_metrics(obs)

    for violation in summary.violations:
        print(f"VIOLATION {violation}")
    print(
        f"crashcheck [{summary.scenario}]: "
        f"{summary.checked} crash points checked "
        f"({summary.deduplicated} deduplicated, "
        f"{summary.selected} selected of {summary.candidates} candidates "
        f"across {summary.io_boundaries} I/O boundaries) "
        f"in {elapsed:.1f}s"
    )
    if summary.ok:
        print("all recovery oracles passed")
        return 0
    print(f"{len(summary.violations)} oracle violation(s)")
    return 1
