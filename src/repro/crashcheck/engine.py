"""The crash-point exploration engine.

One recorded run of a scenario (see :mod:`repro.crashcheck.workload`)
yields the body's I/O stream.  The engine then walks every I/O
boundary ``i`` (crash fires *on* I/O ``i``: I/Os ``0..i-1`` completed,
I/O ``i`` is in flight) and, for boundaries whose in-flight operation
is a multi-sector write, every torn-write variant the weak-atomic
model of :mod:`repro.disk.faults` allows:

* ``surviving_sectors`` ∈ 0..n-1 — a strict prefix persists,
* ``damage_tail`` ∈ {0, 1, 2} — trailing sectors of the persisted
  boundary detectably damaged (clipped to the write, as the disk
  clips it),
* plus full persistence (``surviving_sectors=None``).

Crashes during reads persist nothing of the in-flight operation;
label-only writes persist all their labels (mirroring
``SimDisk.write_labels``).

Instead of re-running the workload once per crash point, the engine
*synthesizes* each crash image from the recording: the persisted
prefix of the stream applied to the body-start snapshot, plus the
variant's partial effect.  The simulation is deterministic, so the
synthesized image is byte-identical to what an armed
:class:`~repro.disk.faults.CrashPlan` would leave (a test
cross-validates this).  A deduplicating work queue then skips crash
points whose persisted image — and committed-op watermark — some
earlier point already produced: a read boundary, for example, leaves
exactly the image of the previous write's full-persist variant.

Each unique image is materialized onto a fresh ``SimDisk``, remounted
through real recovery (:meth:`FSD.mount`), and handed to the oracle
stack.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.fsd import FSD
from repro.crashcheck.oracles import Oracle, OracleContext, default_oracles
from repro.crashcheck.scenarios import CrashScenario, get_scenario
from repro.crashcheck.workload import (
    DiskState,
    IoRec,
    Recording,
    record_scenario,
)
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.obs import NULL_OBS


# ----------------------------------------------------------------------
# crash images
# ----------------------------------------------------------------------
@dataclass
class CrashImage:
    """The persistent state a crash at one point would leave behind."""

    geometry: DiskGeometry
    state: DiskState

    def digest(self) -> bytes:
        """Byte-exact fingerprint of the persisted image."""
        h = hashlib.sha256()
        for address in sorted(self.state.data):
            h.update(address.to_bytes(4, "little"))
            h.update(self.state.data[address])
        h.update(b"|labels|")
        for address in sorted(self.state.labels):
            h.update(address.to_bytes(4, "little"))
            h.update(self.state.labels[address])
        h.update(b"|damaged|")
        for address in sorted(self.state.damaged):
            h.update(address.to_bytes(4, "little"))
        return h.digest()


def materialize(image: CrashImage) -> SimDisk:
    """A fresh simulated drive holding exactly ``image``."""
    disk = SimDisk(geometry=image.geometry)
    disk._data = dict(image.state.data)
    disk._labels = dict(image.state.labels)
    disk.faults.damaged = set(image.state.damaged)
    return disk


# ----------------------------------------------------------------------
# applying recorded I/Os to a state
# ----------------------------------------------------------------------
def apply_full(state: DiskState, rec: IoRec) -> None:
    """Apply one recorded I/O completely (reads are no-ops)."""
    if rec.kind == "write":
        for offset, payload in enumerate(rec.payloads):
            address = rec.address + offset
            state.data[address] = payload
            state.damaged.discard(address)
            if rec.set_labels is not None:
                state.labels[address] = rec.set_labels[offset]
    elif rec.kind == "label_write":
        for offset, label in enumerate(rec.labels):
            state.labels[rec.address + offset] = label


def apply_torn(
    state: DiskState,
    rec: IoRec,
    surviving_sectors: int | None,
    damage_tail: int,
    total_sectors: int,
) -> None:
    """Apply the crash-time effect of the in-flight I/O, mirroring
    ``SimDisk.write``/``write_labels`` under an armed plan exactly."""
    if rec.kind == "write":
        persist = (
            rec.count
            if surviving_sectors is None
            else min(surviving_sectors, rec.count)
        )
        for offset in range(persist):
            address = rec.address + offset
            state.data[address] = rec.payloads[offset]
            state.damaged.discard(address)
            if rec.set_labels is not None:
                state.labels[address] = rec.set_labels[offset]
        for offset in range(damage_tail):
            victim = rec.address + persist + offset
            if victim < min(rec.address + rec.count, total_sectors):
                state.damaged.add(victim)
    elif rec.kind == "label_write":
        # A crash during a label write persists every label first.
        for offset, label in enumerate(rec.labels):
            state.labels[rec.address + offset] = label
    # reads: nothing of the in-flight operation persists


def crashed_image(
    recording: Recording,
    boundary: int,
    surviving_sectors: int | None = None,
    damage_tail: int = 0,
) -> CrashImage:
    """Synthesize the image of a crash firing on body I/O ``boundary``
    (``boundary == io_total`` means "after the last I/O")."""
    state = recording.base.clone()
    for rec in recording.records[:boundary]:
        apply_full(state, rec)
    if boundary < recording.io_total:
        apply_torn(
            state,
            recording.records[boundary],
            surviving_sectors,
            damage_tail,
            recording.scenario.scale.geometry.total_sectors,
        )
    return CrashImage(geometry=recording.scenario.scale.geometry, state=state)


# ----------------------------------------------------------------------
# variant enumeration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashPoint:
    """One (boundary, torn-write variant) candidate."""

    boundary: int
    surviving_sectors: int | None
    damage_tail: int
    label: str


def variants_for(rec: IoRec, boundary: int) -> list[CrashPoint]:
    """Every distinct crash variant for the in-flight I/O ``rec``."""
    if rec.kind == "write":
        out = [
            CrashPoint(
                boundary,
                surviving,
                damage,
                f"io={boundary} write@{rec.address} "
                f"x{rec.count} s={surviving} d={damage}",
            )
            for surviving in range(rec.count)
            for damage in (0, 1, 2)
        ]
        out.append(
            CrashPoint(
                boundary,
                None,
                0,
                f"io={boundary} write@{rec.address} x{rec.count} s=all",
            )
        )
        return out
    return [
        CrashPoint(
            boundary, None, 0, f"io={boundary} {rec.kind}@{rec.address}"
        )
    ]


def enumerate_points(recording: Recording) -> list[CrashPoint]:
    """All crash points of a recording, in I/O order, plus the final
    "after the last I/O" point."""
    points: list[CrashPoint] = []
    for boundary, rec in enumerate(recording.records):
        points.extend(variants_for(rec, boundary))
    points.append(
        CrashPoint(recording.io_total, None, 0, f"io={recording.io_total} end")
    )
    return points


def _select(points: list[CrashPoint], max_points: int | None) -> list[CrashPoint]:
    """An evenly spaced subset of at most ``max_points`` candidates,
    always including the first and last."""
    if max_points is None or max_points >= len(points) or max_points <= 0:
        return points
    if max_points == 1:
        return [points[-1]]
    step = (len(points) - 1) / (max_points - 1)
    indices = sorted({round(index * step) for index in range(max_points)})
    return [points[i] for i in indices]


# ----------------------------------------------------------------------
# sweep results
# ----------------------------------------------------------------------
@dataclass
class Violation:
    """One oracle failure at one crash point."""

    point: CrashPoint
    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.point.label}] {self.oracle}: {self.detail}"


@dataclass
class SweepSummary:
    """What a sweep covered and what it found."""

    scenario: str
    io_boundaries: int              # body I/Os (+1 end boundary)
    candidates: int                 # full variant space
    selected: int                   # after --max-points subsetting
    checked: int                    # unique images mounted + verified
    deduplicated: int               # byte-identical images skipped
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
def check_image(
    image: CrashImage,
    ctx: OracleContext,
    oracles: Iterable[Oracle],
    point: CrashPoint,
    obs=NULL_OBS,
    data_cache_pages: int = 0,
) -> list[Violation]:
    """Mount one crash image through real recovery and run the oracles.

    ``obs`` aggregates recovery metrics/spans across every mount in a
    sweep (``FSD.mount`` rebinds the observer's clock per image).
    ``data_cache_pages`` sizes the remount's data-page cache so the
    cache-coherence oracle can exercise post-crash cached reads.
    """
    disk = materialize(image)
    try:
        fs = FSD.mount(disk, obs=obs, data_cache_pages=data_cache_pages)
    except Exception as error:
        return [
            Violation(point, "mount", f"recovery failed: {error!r}")
        ]
    out: list[Violation] = []
    for oracle in oracles:
        for problem in oracle.check(fs, ctx):
            out.append(Violation(point, oracle.name, problem))
    fs.crash()
    return out


def explore(
    scenario: CrashScenario | str,
    max_points: int | None = None,
    oracles: list[Oracle] | None = None,
    progress: Callable[[int, int], None] | None = None,
    recording: Recording | None = None,
    obs=NULL_OBS,
    data_cache_pages: int = 0,
) -> SweepSummary:
    """Run the crash-point sweep for ``scenario``.

    ``max_points`` bounds the number of candidate crash points (evenly
    spaced across the variant space); ``None`` explores all of them.
    ``progress(done, selected)`` is called after each candidate.  A
    pre-made ``recording`` may be supplied to amortize the baseline
    run across sweeps.  ``obs`` receives the recovery metrics and
    spans of every mounted crash image (see ``crashcheck --metrics``).
    ``data_cache_pages`` enables the data-page cache both in the
    recorded baseline run and in every post-crash remount, so the
    cache-coherence oracle checks real cached reads.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if recording is None:
        recording = record_scenario(scenario, data_cache_pages=data_cache_pages)
    if oracles is None:
        oracles = default_oracles()

    points = enumerate_points(recording)
    selected = _select(points, max_points)
    selected_by_boundary: dict[int, list[CrashPoint]] = {}
    for point in selected:
        selected_by_boundary.setdefault(point.boundary, []).append(point)

    summary = SweepSummary(
        scenario=scenario.name,
        io_boundaries=recording.io_total + 1,
        candidates=len(points),
        selected=len(selected),
        checked=0,
        deduplicated=0,
    )
    total_sectors = scenario.scale.geometry.total_sectors
    seen: set[tuple[bytes, int]] = set()
    done = 0

    # Walk boundaries in order, maintaining the persisted prefix
    # incrementally; ascending order means the first occurrence of any
    # duplicate image carries the smallest pending set — the strictest
    # oracle context — so deduplication never weakens the check.
    state = recording.base.clone()
    for boundary in range(recording.io_total + 1):
        for point in selected_by_boundary.get(boundary, ()):
            image_state = state.clone()
            if boundary < recording.io_total:
                apply_torn(
                    image_state,
                    recording.records[boundary],
                    point.surviving_sectors,
                    point.damage_tail,
                    total_sectors,
                )
            image = CrashImage(
                geometry=scenario.scale.geometry, state=image_state
            )
            committed = recording.committed_ops_at(boundary)
            key = (image.digest(), committed)
            if key in seen:
                summary.deduplicated += 1
            else:
                seen.add(key)
                ctx = OracleContext.at(recording, boundary, point.label)
                summary.violations.extend(
                    check_image(
                        image, ctx, oracles, point, obs=obs,
                        data_cache_pages=data_cache_pages,
                    )
                )
                summary.checked += 1
            done += 1
            if progress is not None:
                progress(done, len(selected))
        if boundary < recording.io_total:
            apply_full(state, recording.records[boundary])
    return summary
