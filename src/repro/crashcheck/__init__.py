"""Exhaustive crash-point exploration for FSD volumes.

The paper's central claim (§5.3, §5.9) is that FSD survives a crash at
*any* point in the I/O stream.  The existing fault injector can arm a
single :class:`~repro.disk.faults.CrashPlan`; this package turns it
into a systematic crash-consistency checker:

* :mod:`repro.crashcheck.workload` — recorded workloads: an op script
  is executed once against a live volume while a recorder captures
  every disk mutation and every group-commit acknowledgement,
* :mod:`repro.crashcheck.engine` — the explorer: enumerate every I/O
  boundary of the recording (and every torn-write variant the
  weak-atomic model allows), synthesize the exact disk image a crash
  there would leave, remount, and run the oracles,
* :mod:`repro.crashcheck.oracles` — the pluggable recovery oracles:
  structural (offline verify in strict mode), cache-coherence (no
  post-crash read observes pre-crash cached data) and semantic
  (committed operations fully present; uncommitted ones
  atomic-or-absent),
* :mod:`repro.crashcheck.scenarios` — named workload scenarios built
  on the harness adapters so they run on any adapter-shaped volume,
* :mod:`repro.crashcheck.cli` — the ``python -m repro crashcheck``
  front end.
"""

from repro.crashcheck.engine import (
    CrashImage,
    SweepSummary,
    Violation,
    crashed_image,
    explore,
    materialize,
)
from repro.crashcheck.oracles import (
    CacheCoherenceOracle,
    Oracle,
    OracleContext,
    SemanticOracle,
    StructuralOracle,
    default_oracles,
)
from repro.crashcheck.scenarios import (
    SCENARIOS,
    CrashScenario,
    get_scenario,
)
from repro.crashcheck.workload import (
    DiskRecorder,
    IoRec,
    Op,
    Recording,
    record_scenario,
    run_with_armed_crash,
)

__all__ = [
    "CacheCoherenceOracle",
    "CrashImage",
    "CrashScenario",
    "DiskRecorder",
    "IoRec",
    "Op",
    "Oracle",
    "OracleContext",
    "Recording",
    "SCENARIOS",
    "SemanticOracle",
    "StructuralOracle",
    "SweepSummary",
    "Violation",
    "crashed_image",
    "default_oracles",
    "explore",
    "get_scenario",
    "materialize",
    "record_scenario",
    "run_with_armed_crash",
]
