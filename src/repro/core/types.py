"""Core value types of FSD: file ids, runs, properties, entry codecs.

Table 1 of the paper lists what FSD keeps in its file name table for a
local file: text name, version, keep, uid, run table, byte size, create
time.  Those are exactly the fields of :class:`FileProperties`, and
:func:`encode_main_entry`/:func:`decode_main_entry` are their one-sector
B-tree representation.

Unique identifiers are ``(boot_count << 40) | sequence`` so that a
freshly booted volume can hand out uids without logging a counter: no
two boots share a boot count, so uniqueness survives any crash.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntEnum

from repro.errors import CorruptMetadata, FsError
from repro.serial import Packer, Unpacker

#: Longest permitted file name (bytes of UTF-8).
MAX_NAME_BYTES = 64
#: Runs stored inline in the main name-table entry; further runs spill
#: into continuation entries (chunk >= 1).
MAX_INLINE_RUNS = 16
#: Runs per continuation entry (sized so key + value fit a 512-byte
#: B-tree page even with a maximum-length name).
MAX_RUNS_PER_CHUNK = 24


class FileKind(IntEnum):
    """The three kinds of name-table entries (paper §4): local files,
    symbolic links to remote files, and cached copies of remote files."""

    LOCAL = 1
    SYMLINK = 2
    CACHED = 3


@dataclass(frozen=True, slots=True)
class Run:
    """A contiguous extent of ``count`` sectors starting at ``start``."""

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.count <= 0:
            raise ValueError(f"bad run ({self.start}, {self.count})")

    @property
    def end(self) -> int:
        return self.start + self.count

    def __contains__(self, sector: int) -> bool:
        return self.start <= sector < self.end


@dataclass(slots=True)
class RunTable:
    """Maps logical file pages to disk sectors via a list of runs."""

    runs: list[Run] = field(default_factory=list)

    @property
    def total_sectors(self) -> int:
        return sum(run.count for run in self.runs)

    def sector_of_page(self, page: int) -> int:
        """Disk sector holding logical page ``page``."""
        remaining = page
        for run in self.runs:
            if remaining < run.count:
                return run.start + remaining
            remaining -= run.count
        raise FsError(f"page {page} beyond run table ({self.total_sectors})")

    def extents_for(self, page: int, count: int) -> list[Run]:
        """Contiguous disk extents covering pages [page, page+count)."""
        out: list[Run] = []
        remaining = count
        skip = page
        for run in self.runs:
            if remaining <= 0:
                break
            if skip >= run.count:
                skip -= run.count
                continue
            avail = run.count - skip
            take = remaining if remaining < avail else avail
            if skip == 0 and take == run.count:
                # Whole run covered: Run is frozen, so share it rather
                # than building an identical copy.
                out.append(run)
            else:
                out.append(Run(run.start + skip, take))
            remaining -= take
            skip = 0
        if remaining > 0:
            cursor = page + count - remaining
            raise FsError(
                f"page {cursor} beyond run table ({self.total_sectors})"
            )
        return out

    def append(self, run: Run) -> None:
        """Append a run, coalescing with the last when adjacent."""
        if self.runs and self.runs[-1].end == run.start:
            last = self.runs[-1]
            self.runs[-1] = Run(last.start, last.count + run.count)
        else:
            self.runs.append(run)

    def truncate_sectors(self, keep_sectors: int) -> list[Run]:
        """Drop sectors beyond ``keep_sectors``; returns the freed runs."""
        freed: list[Run] = []
        kept: list[Run] = []
        budget = keep_sectors
        for run in self.runs:
            if budget >= run.count:
                kept.append(run)
                budget -= run.count
            elif budget > 0:
                kept.append(Run(run.start, budget))
                freed.append(Run(run.start + budget, run.count - budget))
                budget = 0
            else:
                freed.append(run)
        self.runs = kept
        return freed

    def copy(self) -> "RunTable":
        """Shallow-independent copy of the run list."""
        return RunTable(list(self.runs))


@dataclass(slots=True)
class FileProperties:
    """Everything FSD's name table records about one file version."""

    name: str
    version: int
    uid: int
    kind: FileKind = FileKind.LOCAL
    byte_size: int = 0
    create_time_ms: float = 0.0
    last_used_ms: float = 0.0
    keep: int = 2
    leader_addr: int = 0
    remote_target: str = ""  # symlink / cached-copy origin

    def with_updates(self, **kwargs) -> "FileProperties":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: name -> validated encoding; every entry point validates its name
#: argument, and workloads reuse a small set of names heavily.  Only
#: names that pass validation are memoised, so error paths replay.
_NAME_MEMO: dict[str, bytes] = {}
_NAME_MEMO_LIMIT = 8192


def validate_name(name: str) -> bytes:
    """Check and encode a file name for use as a B-tree key component."""
    cached = _NAME_MEMO.get(name)
    if cached is not None:
        return cached
    encoded = name.encode("utf-8")
    if not encoded:
        raise FsError("empty file name")
    if len(encoded) > MAX_NAME_BYTES:
        raise FsError(f"file name longer than {MAX_NAME_BYTES} bytes: {name!r}")
    if b"\x00" in encoded:
        raise FsError("file names may not contain NUL")
    if len(_NAME_MEMO) >= _NAME_MEMO_LIMIT:
        _NAME_MEMO.clear()
    _NAME_MEMO[name] = encoded
    return encoded


# ----------------------------------------------------------------------
# B-tree key codec
#
# key = name_bytes . NUL . version(be16) . chunk(be16)
#
# Big-endian integers keep byte order == numeric order, so all versions
# of a name are adjacent and a main entry (chunk 0) immediately precedes
# its run-table continuation entries.
# ----------------------------------------------------------------------
def encode_key(name: str, version: int, chunk: int = 0) -> bytes:
    """Serialize a name-table key (sorts by name, version, chunk)."""
    encoded = validate_name(name)
    if not (0 <= version <= 0xFFFF):
        raise FsError(f"version {version} out of range")
    if not (0 <= chunk <= 0xFFFF):
        raise FsError(f"chunk {chunk} out of range")
    return (
        encoded
        + b"\x00"
        + version.to_bytes(2, "big")
        + chunk.to_bytes(2, "big")
    )


def name_prefix(name: str) -> bytes:
    """Key prefix matching every version of ``name``."""
    return validate_name(name) + b"\x00"


#: parse memo for name-table keys: every ``list`` re-decodes the same
#: keys, and the decoded triple is an immutable tuple — safe to share.
_KEY_MEMO: dict[bytes, tuple[str, int, int]] = {}
_KEY_MEMO_LIMIT = 8192


def decode_key(key: bytes) -> tuple[str, int, int]:
    """Parse a name-table key into (name, version, chunk)."""
    decoded = _KEY_MEMO.get(key)
    if decoded is not None:
        return decoded
    nul = key.rfind(b"\x00", 0, len(key) - 4)
    if nul < 0 or len(key) < nul + 5:
        raise CorruptMetadata(f"malformed name-table key {key!r}")
    name = key[:nul].decode("utf-8")
    version = int.from_bytes(key[nul + 1 : nul + 3], "big")
    chunk = int.from_bytes(key[nul + 3 : nul + 5], "big")
    if len(_KEY_MEMO) >= _KEY_MEMO_LIMIT:
        _KEY_MEMO.clear()
    decoded = (name, version, chunk)
    _KEY_MEMO[key] = decoded
    return decoded


# ----------------------------------------------------------------------
# B-tree value codecs
# ----------------------------------------------------------------------
def _pack_runs(packer: Packer, runs: list[Run]) -> None:
    packer.u8(len(runs))
    for run in runs:
        packer.u32(run.start)
        packer.u16(run.count)


def _unpack_runs(reader: Unpacker) -> list[Run]:
    count = reader.u8()
    return [Run(reader.u32(), reader.u16()) for _ in range(count)]


def encode_main_entry(props: FileProperties, runs: RunTable) -> bytes:
    """Serialize the chunk-0 name-table entry for a file.

    Emits exactly the bytes the :class:`Packer`-based reference
    (:func:`_reference_encode_main_entry`) would, via precompiled
    structs — this encoder runs on every name-table update.
    """
    inline = runs.runs[:MAX_INLINE_RUNS]
    target = props.remote_target.encode("utf-8")
    if len(target) > MAX_NAME_BYTES:
        raise ValueError(
            f"string longer than {MAX_NAME_BYTES} bytes: "
            f"{props.remote_target!r}"
        )
    pack_run = _RUN_RECORD.pack
    parts = [
        _MAIN_PREFIX.pack(
            int(props.kind),
            props.uid,
            props.byte_size,
            props.create_time_ms,
            props.last_used_ms,
            props.keep,
            props.leader_addr,
            len(runs.runs),
        ),
        bytes((len(target),)),
        target,
        bytes((len(inline),)),
    ]
    parts.extend(pack_run(run.start, run.count) for run in inline)
    return b"".join(parts)


def _reference_encode_main_entry(props: FileProperties, runs: RunTable) -> bytes:
    """The original Packer-based encoder, kept as the property-test
    reference for the struct fast path above."""
    inline = runs.runs[:MAX_INLINE_RUNS]
    packer = Packer()
    packer.u8(int(props.kind))
    packer.u64(props.uid)
    packer.u64(props.byte_size)
    packer.f64(props.create_time_ms)
    packer.f64(props.last_used_ms)
    packer.u8(props.keep)
    packer.u32(props.leader_addr)
    packer.u16(len(runs.runs))
    packer.string(props.remote_target, max_len=MAX_NAME_BYTES)
    _pack_runs(packer, inline)
    return packer.bytes()


#: fixed-width prefix of a chunk-0 entry, matching the Packer calls in
#: :func:`encode_main_entry` field for field.
_MAIN_PREFIX = struct.Struct("<BQQddBIH")
#: one (start u32, count u16) run record.
_RUN_RECORD = struct.Struct("<IH")

#: parse memo for chunk-0 entries, keyed by entry bytes: every ``list``
#: re-decodes the same entries, so the decoded FileProperties is cached
#: whole and only the RunTable wrapper (whose ``runs`` list callers
#: extend and truncate) is rebuilt per call.  FileProperties is never
#: mutated in place — updates go through ``with_updates`` — and Run
#: objects are frozen, so both are safely shared across decodes.
_MAIN_MEMO: dict[bytes, tuple] = {}
_MAIN_MEMO_LIMIT = 4096


def decode_main_entry(
    name: str, version: int, value: bytes
) -> tuple[FileProperties, RunTable, int]:
    """Decode a chunk-0 entry.

    Returns (properties, inline run table, total run count); when the
    total exceeds the inline count, the caller must read continuation
    chunks to complete the run table.

    Parsed with precompiled structs rather than an :class:`Unpacker`
    and memoised by entry bytes: this runs once per entry of every
    ``enumerate``, making it one of the hottest metadata parses in the
    system.
    """
    fields = _MAIN_MEMO.get(value)
    if fields is None:
        try:
            (
                kind_byte,
                uid,
                byte_size,
                create_time,
                last_used,
                keep,
                leader_addr,
                total_runs,
            ) = _MAIN_PREFIX.unpack_from(value, 0)
            offset = _MAIN_PREFIX.size
            name_len = value[offset]
            offset += 1
            if offset + name_len > len(value):
                raise struct.error
            remote_target = value[offset:offset + name_len].decode("utf-8")
            offset += name_len
            run_count = value[offset]
            offset += 1
            unpack_run = _RUN_RECORD.unpack_from
            if offset + 6 * run_count > len(value):
                raise struct.error
            run_tuple = tuple(
                Run(*unpack_run(value, offset + 6 * index))
                for index in range(run_count)
            )
        except (struct.error, IndexError):
            raise CorruptMetadata(
                f"truncated main entry of {len(value)} bytes"
            ) from None
        # Positional construction: this pairs with the field order of
        # FileProperties and skips per-call keyword processing.
        props = FileProperties(
            name,
            version,
            uid,
            FileKind(kind_byte),
            byte_size,
            create_time,
            last_used,
            keep,
            leader_addr,
            remote_target,
        )
        fields = (props, run_tuple, total_runs)
        if len(_MAIN_MEMO) >= _MAIN_MEMO_LIMIT:
            _MAIN_MEMO.clear()
        _MAIN_MEMO[value] = fields
    props, run_tuple, total_runs = fields
    if props.name != name or props.version != version:
        # Same entry bytes under a different key (the value encodes
        # no name/version): rebuild the properties for this key.
        props = FileProperties(
            name,
            version,
            props.uid,
            props.kind,
            props.byte_size,
            props.create_time_ms,
            props.last_used_ms,
            props.keep,
            props.leader_addr,
            props.remote_target,
        )
    return props, RunTable(list(run_tuple)), total_runs


def decode_main_props(name: str, version: int, value: bytes) -> FileProperties:
    """Properties-only decode of a chunk-0 entry.

    ``list`` discards run tables, so this skips materialising a fresh
    :class:`RunTable` per entry; a memo hit for the listing's own key
    returns the shared (never mutated in place) properties object.
    """
    fields = _MAIN_MEMO.get(value)
    if fields is None:
        props, _runs, _total = decode_main_entry(name, version, value)
        return props
    props = fields[0]
    if props.name != name or props.version != version:
        props = FileProperties(
            name,
            version,
            props.uid,
            props.kind,
            props.byte_size,
            props.create_time_ms,
            props.last_used_ms,
            props.keep,
            props.leader_addr,
            props.remote_target,
        )
    return props


def encode_continuation(runs: list[Run]) -> bytes:
    """Serialize a run-table continuation chunk."""
    packer = Packer()
    _pack_runs(packer, runs)
    return packer.bytes()


def decode_continuation(value: bytes) -> list[Run]:
    """Parse a run-table continuation chunk."""
    try:
        count = value[0]
        if 1 + 6 * count > len(value):
            raise struct.error
        unpack_run = _RUN_RECORD.unpack_from
        return [
            Run(*unpack_run(value, 1 + 6 * index)) for index in range(count)
        ]
    except (struct.error, IndexError):
        raise CorruptMetadata(
            f"truncated continuation chunk of {len(value)} bytes"
        ) from None


def make_uid(boot_count: int, sequence: int) -> int:
    """Crash-safe unique id: no persistence needed because boot counts
    never repeat (see module docstring)."""
    return (boot_count << 40) | (sequence & ((1 << 40) - 1))
