"""FSD's circular physical redo log (paper §5.3).

Record layout on disk, exactly as the paper describes: *"a header page,
a blank page, a copy of the header page, the data pages being logged,
an end page, copies of the data pages being logged, and a copy of the
end page"* — 5 sectors of overhead plus twice the data, and the same
data never on adjacent sectors, so the 1–2-consecutive-sector failure
model can never destroy both copies of anything.  A one-page record is
7 sectors; 14 pages make 33 sectors (both figures from §5.4).

The record area is divided into thirds.  Each cached metadata page
remembers the third in which it was last logged; when appending is
about to enter a new third, every page whose latest log copy lives in
that third is written home first (via the ``flush_third`` callback),
and then the anchor — the pointer to the first valid record, kept in
log page 0 and replicated in log page 2 — advances past it.  This
simple scheme keeps 5/6 of the log usable on average.

End-of-log detection on recovery matches the paper: header-page pair,
record numbers, boot count, end-page pair, and magic bit patterns.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.core.layout import VolumeLayout
from repro.disk.disk import SimDisk
from repro.disk.sched import as_scheduler
from repro.errors import CorruptMetadata, LogFull
from repro.obs import NULL_OBS
from repro.serial import Unpacker, checksum

_HEADER_MAGIC = 0x4C4F4748  # "LOGH"
_END_MAGIC = 0x4C4F4745     # "LOGE"
_ANCHOR_MAGIC = 0x4C4F4741  # "LOGA"
_END_PATTERN = 0xA5C3A5C3   # the paper's "special bit patterns"

#: precompiled record codecs (the Packer equivalents, byte for byte):
#: header prefix magic/kind/number/boot/pages, one per-page meta
#: triple, the end page, and the anchor body.
_HDR_PREFIX = struct.Struct("<IBQIH")
_HDR_PAGE = struct.Struct("<BQI")
_END_PAGE = struct.Struct("<IQIHI")
_ANCHOR_BODY = struct.Struct("<IQ")
_ANCHOR_PREFIX = struct.Struct("<II")

RECORD_DATA = 1
RECORD_SKIP = 2

PAGE_NAME_TABLE = 1
PAGE_LEADER = 2
#: VAM bitmap pages (only when VolumeParams.log_vam is enabled: the
#: §5.3 extension the paper describes but did not build).
PAGE_VAM = 3

#: sectors that are pure overhead in every data record.
RECORD_OVERHEAD_SECTORS = 5
#: sectors in a skip (wrap) record: header, blank, header copy.
SKIP_RECORD_SECTORS = 3

#: histogram bounds for on-disk record sizes: the paper's 7-sector
#: one-page record up through the 33-sector 14-page record and beyond.
RECORD_SECTOR_BUCKETS = (7.0, 9.0, 13.0, 17.0, 25.0, 33.0, 49.0, 83.0)


@dataclass(frozen=True)
class LoggedPage:
    """One page image carried by a log record.

    ``kind`` is :data:`PAGE_NAME_TABLE` (``page_id`` = logical name-table
    page number, rewritten to *both* home copies on redo) or
    :data:`PAGE_LEADER` (``page_id`` = disk sector address).
    """

    kind: int
    page_id: int
    data: bytes


@dataclass
class LogRecord:
    record_number: int
    boot_count: int
    pages: list[LoggedPage] = field(default_factory=list)


def record_sectors(page_count: int) -> int:
    """On-disk size of a data record carrying ``page_count`` pages."""
    return RECORD_OVERHEAD_SECTORS + 2 * page_count


class WriteAheadLog:
    """The circular redo log of one FSD volume."""

    def __init__(self, disk: SimDisk, layout: VolumeLayout, io=None):
        #: all log I/O goes through the volume's shared scheduler; a
        #: raw disk is wrapped in a pass-through fifo scheduler.
        self.io = io if io is not None else as_scheduler(disk)
        self.disk = disk
        self.layout = layout
        self.sector_bytes = disk.geometry.sector_bytes
        self.area_start = layout.log_start + 3  # after anchor/blank/anchor
        self.area_sectors = layout.params.log_record_sectors
        self.third_sectors = self.area_sectors // 3
        if record_sectors(layout.params.max_record_pages) > self.third_sectors:
            # A record must fit inside one third so it can span at most
            # two, keeping the third-entry protocol sound.
            raise ValueError(
                "log too small: the largest record must fit in one third"
            )
        #: called with the third index before its records are overwritten
        self.flush_third: Callable[[int], None] | None = None
        #: observability attach point (``FSD.mount`` rebinds it).
        self.obs = NULL_OBS

        self.write_offset = 0
        self.next_record_number = 1
        self.current_third = 0
        self.anchor_offset = 0
        self.anchor_record_number = 1
        # first (offset, record_number) written into each third this pass
        self._third_first: list[tuple[int, int] | None] = [None, None, None]
        self.records_written = 0
        self.sectors_logged = 0
        self.pages_logged = 0
        #: cumulative simulated ms the appender spent blocked inside the
        #: third-entry protocol (synchronous write-home + anchor write),
        #: and how many times the protocol ran.
        self.stall_ms = 0.0
        self.third_entries = 0
        self.record_sizes: list[int] = []
        #: set by :meth:`scan`: the scan stopped at a record whose
        #: sectors were detectably damaged (media fault, not just the
        #: usual stale-bytes end of log).
        self.scan_damage = False
        #: set by :meth:`scan`: valid record pieces *newer* than the
        #: stopping point exist beyond it — committed records were lost
        #: to mid-log damage (impossible under the single-fault model).
        self.lost_records_detected = False
        self._reads_damaged = False

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def third_of(self, offset: int) -> int:
        """Which third of the record area ``offset`` falls in (0-2)."""
        return min(offset // self.third_sectors, 2)

    def _disk_addr(self, offset: int) -> int:
        return self.area_start + offset

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def format(self) -> None:
        """Initialize an empty log: anchor at offset 0, record 1."""
        self.write_offset = 0
        self.next_record_number = 1
        self.current_third = 0
        self._third_first = [None, None, None]
        self._write_anchor(0, 1)

    # ------------------------------------------------------------------
    # anchor (log page 0, replicated at log page 2)
    # ------------------------------------------------------------------
    def _encode_anchor(self, offset: int, record_number: int) -> bytes:
        body = _ANCHOR_BODY.pack(offset, record_number)
        data = _ANCHOR_PREFIX.pack(_ANCHOR_MAGIC, checksum(body)) + body
        return data.ljust(self.sector_bytes, b"\x00")

    def _write_anchor(self, offset: int, record_number: int) -> None:
        page = self._encode_anchor(offset, record_number)
        blank = b""
        # A synchronous write is a barrier: the anchor cannot advance
        # past home writes (or records) still sitting in the queue.
        self.io.write(self.layout.log_start, [page, blank, page])
        self.anchor_offset = offset
        self.anchor_record_number = record_number

    def read_anchor(self) -> tuple[int, int]:
        """Read the anchor, tolerating damage to either copy."""
        sectors = self.io.read_maybe(self.layout.log_start, 3)
        for candidate in (sectors[0], sectors[2]):
            if candidate is None:
                continue
            try:
                reader = Unpacker(candidate)
                if reader.u32() != _ANCHOR_MAGIC:
                    continue
                expect = reader.u32()
                body = reader.raw(12)
                if checksum(body) != expect:
                    continue
                inner = Unpacker(body)
                return inner.u32(), inner.u64()
            except CorruptMetadata:
                continue
        raise CorruptMetadata("both log anchor copies unreadable")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, pages: list[LoggedPage], deadline_ms=None) -> int:
        """Write one or more records carrying ``pages``; returns sectors
        written.  Splits batches larger than the per-record page cap."""
        records = self.append_records(pages, deadline_ms=deadline_ms)
        return sum(record_sectors(len(chunk)) for _, _, chunk in records)

    def append_records(
        self, pages: list[LoggedPage], deadline_ms=None
    ) -> list[tuple[int, int, list[LoggedPage]]]:
        """Write ``pages`` as one or more records; returns
        ``(record_number, start_third, pages)`` per record so the cache
        can track which third holds each page's newest log copy.

        ``deadline_ms`` rides on the submitted writes: the group-commit
        deadline this batch must meet (the deadline scheduling policy
        services it ahead of opportunistic writebacks).  The caller
        owns the durability barrier (``io.barrier()``).
        """
        if not pages:
            return []
        cap = self.layout.params.max_record_pages
        out: list[tuple[int, int, list[LoggedPage]]] = []
        for start in range(0, len(pages), cap):
            chunk = pages[start : start + cap]
            record_number, third = self._append_record(chunk, deadline_ms)
            out.append((record_number, third, chunk))
        return out

    def _append_record(
        self, pages: list[LoggedPage], deadline_ms=None
    ) -> tuple[int, int]:
        pages = [self._normalize(page) for page in pages]
        size = record_sectors(len(pages))
        if size > self.third_sectors:
            raise LogFull(
                f"record of {size} sectors exceeds one third "
                f"({self.third_sectors} sectors) of the log"
            )
        if self.write_offset + size > self.area_sectors:
            self._wrap()
        offset = self.write_offset
        self._cross_thirds(offset, size)
        record_number = self.next_record_number
        self._note_record_start(offset, record_number)
        sectors = self._encode_record(record_number, pages)
        self.io.submit_write(
            self._disk_addr(offset),
            sectors,
            deadline_ms=(
                deadline_ms if deadline_ms is not None
                else self.io.clock.now_ms
            ),
        )
        self.write_offset = offset + size
        self.current_third = self.third_of(self.write_offset - 1)
        self.next_record_number += 1
        self.records_written += 1
        self.sectors_logged += size
        self.pages_logged += len(pages)
        self.record_sizes.append(size)
        self.obs.count("wal.records_appended")
        self.obs.count("wal.sectors_logged", size)
        self.obs.count("wal.pages_logged", len(pages))
        self.obs.observe(
            "wal.record_sectors", size, bounds=RECORD_SECTOR_BUCKETS
        )
        return record_number, self.third_of(offset)

    def _wrap(self) -> None:
        """Wrap to offset 0, leaving a skip record when one fits."""
        self.obs.count("wal.wraparounds")
        remaining = self.area_sectors - self.write_offset
        if remaining >= SKIP_RECORD_SECTORS:
            self._cross_thirds(self.write_offset, SKIP_RECORD_SECTORS)
            record_number = self.next_record_number
            self._note_record_start(self.write_offset, record_number)
            header = self._encode_header(RECORD_SKIP, record_number, [])
            self.io.submit_write(
                self._disk_addr(self.write_offset),
                [header, b"", header],
                deadline_ms=self.io.clock.now_ms,
            )
            self.next_record_number += 1
            self.records_written += 1
            self.sectors_logged += SKIP_RECORD_SECTORS
        self.write_offset = 0

    def _cross_thirds(self, offset: int, size: int) -> None:
        """Fire the third-entry protocol for every new third the write
        [offset, offset+size) touches.  Records fit in one third, so at
        most two consecutive thirds are involved."""
        touched = sorted(
            {self.third_of(s) for s in (offset, offset + size - 1)}
        )
        for third in touched:
            if third != self.current_third:
                self._enter_third(third, offset)

    def _enter_third(self, third: int, upcoming_offset: int) -> None:
        """The paper's third-entry protocol: write home every page whose
        newest log copy is in ``third``, then advance the anchor.

        The anchor moves to the first record of the oldest third that
        still holds live record *starts*; if neither other third has
        one (degenerately small logs), it moves to the record about to
        be written."""
        self.obs.count("wal.third_entries")
        self.third_entries += 1
        clock = self.io.clock
        start_ms = clock.now_ms
        if self.flush_third is not None:
            self.flush_third(third)
        if self.third_of(self.anchor_offset) == third:
            new_anchor = (upcoming_offset, self.next_record_number)
            for step in (1, 2):
                successor = self._third_first[(third + step) % 3]
                if successor is not None:
                    new_anchor = successor
                    break
            self._write_anchor(*new_anchor)
        self._third_first[third] = None
        # Commit-path stall: the appender (and therefore the commit in
        # progress) was blocked behind this write-home + anchor advance.
        # A background checkpointer that keeps ahead of the cursor makes
        # this 0 — the third is already clean and the anchor already past.
        self.stall_ms += clock.now_ms - start_ms
        self.obs.count("wal.stall_ms", clock.now_ms - start_ms)

    def _note_record_start(self, offset: int, record_number: int) -> None:
        third = self.third_of(offset)
        if self._third_first[third] is None:
            self._third_first[third] = (offset, record_number)

    def _normalize(self, page: LoggedPage) -> LoggedPage:
        """Pad page images to a full sector so the on-disk bytes (and
        their checksums) are what a scan will read back."""
        if len(page.data) == self.sector_bytes:
            return page
        if len(page.data) > self.sector_bytes:
            raise LogFull(
                f"page image of {len(page.data)} bytes exceeds a sector"
            )
        return LoggedPage(
            kind=page.kind,
            page_id=page.page_id,
            data=page.data.ljust(self.sector_bytes, b"\x00"),
        )

    # ------------------------------------------------------------------
    # record encoding
    # ------------------------------------------------------------------
    def _encode_header(
        self, kind: int, record_number: int, pages: list[LoggedPage]
    ) -> bytes:
        pack_page = _HDR_PAGE.pack
        parts = [
            _HDR_PREFIX.pack(
                _HEADER_MAGIC, kind, record_number, self.boot_count,
                len(pages),
            )
        ]
        parts.extend(
            pack_page(page.kind, page.page_id, checksum(page.data))
            for page in pages
        )
        data = b"".join(parts)
        if len(data) > self.sector_bytes:
            raise ValueError(
                f"packed structure overflows capacity {self.sector_bytes}"
            )
        return data.ljust(self.sector_bytes, b"\x00")

    def _encode_end(self, record_number: int, page_count: int) -> bytes:
        return _END_PAGE.pack(
            _END_MAGIC, record_number, self.boot_count, page_count,
            _END_PATTERN,
        ).ljust(self.sector_bytes, b"\x00")

    def _encode_record(
        self, record_number: int, pages: list[LoggedPage]
    ) -> list[bytes]:
        header = self._encode_header(RECORD_DATA, record_number, pages)
        end = self._encode_end(record_number, len(pages))
        datas = [page.data for page in pages]
        return [header, b"", header, *datas, end, *datas, end]

    #: set by the volume at mount; recorded in every record for the
    #: paper's end-of-log checks.
    boot_count: int = 0

    # ------------------------------------------------------------------
    # recovery scan
    # ------------------------------------------------------------------
    def scan(self) -> list[LogRecord]:
        """Read every valid record from the anchor forward, set the
        append position after the last one, and return the records.

        Damage to one copy of any page is corrected from the other; a
        torn final record (crash during the log write itself) fails the
        end-page check and cleanly terminates the scan.
        """
        anchor_offset, anchor_record = self.read_anchor()
        self.anchor_offset, self.anchor_record_number = (
            anchor_offset,
            anchor_record,
        )
        records: list[LogRecord] = []
        self._third_first = [None, None, None]
        self.scan_damage = False
        self.lost_records_detected = False
        offset = anchor_offset
        expected = anchor_record
        scanned = 0
        suspicious = False
        while scanned < self.area_sectors:
            if self.area_sectors - offset < SKIP_RECORD_SECTORS:
                scanned += self.area_sectors - offset
                offset = 0
                continue
            self._reads_damaged = False
            head = self._read_header_pair(offset, expected)
            if head is None:
                suspicious = self._reads_damaged
                break
            kind, page_meta, boot_count = head
            if kind == RECORD_SKIP:
                self._note_record_start(offset, expected)
                scanned += self.area_sectors - offset
                offset = 0
                expected += 1
                continue
            self._reads_damaged = False
            record = self._read_record_body(
                offset, expected, boot_count, page_meta
            )
            if record is None:
                suspicious = self._reads_damaged
                break
            self._note_record_start(offset, expected)
            records.append(record)
            size = record_sectors(len(record.pages))
            offset += size
            scanned += size
            expected += 1
            if offset >= self.area_sectors:
                offset = 0
        self.write_offset = offset
        self.next_record_number = expected
        if records or offset:
            self.current_third = self.third_of(
                (offset - 1) % self.area_sectors
            )
        else:
            self.current_third = 0
        if suspicious:
            # The scan stopped *because of* damaged sectors, not the
            # usual stale bytes.  Under the single-fault model that is
            # only ever the torn tail record of the crash itself; probe
            # for record pieces strictly newer than the stopping point,
            # which would prove committed records beyond a damage hole.
            self.scan_damage = True
            self.obs.count("wal.scan_damage_stops")
            if self._probe_lost_records(expected):
                self.lost_records_detected = True
                self.obs.count("wal.lost_records_detected")
        return records

    def _probe_lost_records(self, expected: int) -> bool:
        """Sweep the record area for header/end pages numbered strictly
        above ``expected``.  Record numbers only ever grow, and the
        stopping record's own pieces carry exactly ``expected``, so any
        newer piece means a committed record sits beyond a damage hole
        the scan could not cross.
        """
        chunk = 128
        for start in range(0, self.area_sectors, chunk):
            count = min(chunk, self.area_sectors - start)
            sectors = self.io.read_maybe(self._disk_addr(start), count)
            for data in sectors:
                if data is None:
                    continue
                try:
                    reader = Unpacker(data)
                    magic = reader.u32()
                    if magic == _HEADER_MAGIC:
                        reader.u8()  # kind
                        if reader.u64() > expected:
                            return True
                    elif magic == _END_MAGIC:
                        if reader.u64() > expected:
                            return True
                except CorruptMetadata:
                    continue
        return False

    def _read_header_pair(
        self, offset: int, expected: int
    ) -> tuple[int, list[tuple[int, int, int]], int] | None:
        sectors = self.io.read_maybe(self._disk_addr(offset), 3)
        if sectors[0] is None or sectors[2] is None:
            self._reads_damaged = True
        for candidate in (sectors[0], sectors[2]):
            parsed = self._parse_header(candidate, expected)
            if parsed is not None:
                return parsed
        return None

    def _parse_header(
        self, data: bytes | None, expected: int
    ) -> tuple[int, list[tuple[int, int, int]], int] | None:
        if data is None:
            return None
        try:
            reader = Unpacker(data)
            if reader.u32() != _HEADER_MAGIC:
                return None
            kind = reader.u8()
            if kind not in (RECORD_DATA, RECORD_SKIP):
                return None
            record_number = reader.u64()
            boot_count = reader.u32()
            if record_number != expected:
                return None
            count = reader.u16()
            meta = [
                (reader.u8(), reader.u64(), reader.u32()) for _ in range(count)
            ]
            return kind, meta, boot_count
        except CorruptMetadata:
            return None

    def _read_record_body(
        self,
        offset: int,
        record_number: int,
        boot_count: int,
        page_meta: list[tuple[int, int, int]],
    ) -> LogRecord | None:
        count = len(page_meta)
        size = record_sectors(count)
        if offset + size > self.area_sectors:
            return None
        sectors = self.io.read_maybe(self._disk_addr(offset), size)
        if any(sector is None for sector in sectors):
            self._reads_damaged = True
        end_a = sectors[3 + count]
        end_b = sectors[3 + 2 * count + 1]
        if not any(
            self._end_valid(end, record_number, count) for end in (end_a, end_b)
        ):
            return None
        pages: list[LoggedPage] = []
        for index, (kind, page_id, expect_sum) in enumerate(page_meta):
            primary = sectors[3 + index]
            copy = sectors[3 + count + 1 + index]
            data = None
            for candidate in (primary, copy):
                if candidate is not None and checksum(candidate) == expect_sum:
                    data = candidate
                    break
            if data is None:
                return None  # both copies bad: treat as torn record
            pages.append(LoggedPage(kind=kind, page_id=page_id, data=data))
        return LogRecord(
            record_number=record_number, boot_count=boot_count, pages=pages
        )

    def _end_valid(
        self, data: bytes | None, record_number: int, count: int
    ) -> bool:
        if data is None:
            return False
        try:
            reader = Unpacker(data)
            return (
                reader.u32() == _END_MAGIC
                and reader.u64() == record_number
                and reader.u32() >= 0
                and reader.u16() == count
                and reader.u32() == _END_PATTERN
            )
        except CorruptMetadata:
            return False

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def admission_capacity_pages(self) -> int:
        """Metadata pages the bracket layer may let accumulate before
        ``begin_op`` blocks: what one third of the record area can
        absorb as a single record (each logged page costs two sectors
        plus the 5-sector record overhead).  Admission against this
        budget keeps every group commit inside the active third, so a
        force never triggers the third-entry writeback protocol
        mid-commit.  Never less than one worst-case operation, or no
        client could ever be admitted."""
        usable = (self.third_sectors - RECORD_OVERHEAD_SECTORS) // 2
        return max(usable, self.layout.params.max_record_pages)

    def utilization(self) -> float:
        """Fraction of the record area between the anchor and the write
        position — the "in use" share the paper says averages 5/6."""
        span = (self.write_offset - self.anchor_offset) % self.area_sectors
        if span == 0 and self.next_record_number > self.anchor_record_number:
            return 1.0
        return span / self.area_sectors

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Advance the anchor to the current append position (used at
        clean unmount, after every page has been written home)."""
        self.obs.count("wal.checkpoints")
        self._write_anchor(self.write_offset, self.next_record_number)
        self._third_first = [None, None, None]
