"""Crash recovery (paper §5.9).

"Recovery is fast and easy.  There are two types of recovery.  First,
the VAM can be reconstructed using the name table.  Second, the file
name table and leaders are recovered from the log.  The log is a
physical redo log and the algorithm to perform recovery is simple:
log records are read and the copies of pages in the log are written
to disk."

Redo here coalesces: the newest image of each page across all scanned
records is written home once (redo is idempotent, so this is
equivalent to the paper's record-at-a-time replay but cheaper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layout import RootPage, VolumeLayout
from repro.core.name_table import FsdNameTable, NameTableHome
from repro.core.types import Run
from repro.core.vam import VolumeAllocationMap
from repro.core.wal import PAGE_LEADER, PAGE_NAME_TABLE, PAGE_VAM, WriteAheadLog
from repro.disk.disk import SimDisk
from repro.disk.sched import as_scheduler
from repro.errors import CorruptMetadata, DegradedVolumeError
from repro.obs import NULL_OBS

#: Test-only fault hook: when true, replay drops the last scanned log
#: record, simulating a recovery implementation that misses the tail
#: of the log.  The crashcheck semantic oracle must catch this (a
#: committed op's pages never reach home); it exists so the checker's
#: own sensitivity is testable.  Never set outside tests.
TEST_DROP_LAST_RECORD = False


@dataclass
class MountReport:
    """What happened during a mount, for the recovery benchmarks."""

    boot_count: int = 0
    log_records_replayed: int = 0
    pages_replayed: int = 0
    vam_loaded: bool = False
    vam_rebuild_entries: int = 0
    replay_ms: float = 0.0
    vam_ms: float = 0.0
    total_ms: float = 0.0
    #: the log scan stopped at detectably damaged sectors — under the
    #: single-fault model that is only the crash's own torn tail, but a
    #: multi-fault history may have cost a committed tail record, so
    #: recovery cannot *prove* completeness.  Honest-degradation flag.
    log_damage: bool = False
    #: record pieces newer than the scan's stopping point were found
    #: beyond a damage hole: committed records were definitely lost and
    #: the volume is mounted degraded read-only.
    log_records_lost: bool = False


# ----------------------------------------------------------------------
# root page handling (replicated boot-critical pages)
# ----------------------------------------------------------------------
def read_root(disk: SimDisk, layout: VolumeLayout) -> RootPage:
    """Read the volume root, tolerating damage to either copy and
    repairing the bad one from the survivor."""
    io = as_scheduler(disk)
    survivors: list[tuple[int, RootPage]] = []
    for address in (layout.root_a, layout.root_b):
        sector = io.read_maybe(address, 1)[0]
        if sector is None:
            continue
        try:
            survivors.append((address, RootPage.decode(sector)))
        except CorruptMetadata:
            continue
    if not survivors:
        raise DegradedVolumeError("both volume root copies unreadable")
    if len(survivors) == 1:
        address, root = survivors[0]
        other = layout.root_b if address == layout.root_a else layout.root_a
        io.write(other, [root.encode(io.geometry.sector_bytes)])
        return root
    root_a, root_b = survivors[0][1], survivors[1][1]
    # The two copies are written A-then-B; after a crash between the
    # two writes, A is newer.  Prefer the higher boot count.
    return root_a if root_a.boot_count >= root_b.boot_count else root_b


def write_root(disk: SimDisk, layout: VolumeLayout, root: RootPage) -> None:
    """Write both replicas of the volume root page.

    The copies must land A-then-B (recovery prefers A on a tie), so
    each goes out as a sync write: a full barrier that flushes any
    queued writes first and never reorders.
    """
    io = as_scheduler(disk)
    encoded = root.encode(io.geometry.sector_bytes)
    io.write(layout.root_a, [encoded])
    io.write(layout.root_b, [encoded])


# ----------------------------------------------------------------------
# log replay
# ----------------------------------------------------------------------
def replay_log(
    disk: SimDisk,
    layout: VolumeLayout,
    wal: WriteAheadLog,
    report: MountReport,
    obs=NULL_OBS,
) -> None:
    """Scan the log from its anchor and write every page image home.

    Name-table and VAM pages live in fixed extents, so their redo is
    unconditional.  Leader pages are different: their sectors return to
    the allocator when a file is deleted and may since have been
    reallocated as plain *data* — blindly redoing a stale leader image
    would overwrite committed file contents.  Each leader image is
    therefore checked against the logged name-table state before it is
    written home (:func:`_redo_live_leaders`).
    """
    start_ms = disk.clock.now_ms
    with obs.span("recovery.replay") as replay_span:
        with obs.span("recovery.scan"):
            records = wal.scan()
        if TEST_DROP_LAST_RECORD and records:
            records = records[:-1]
        newest: dict[tuple[int, int], bytes] = {}
        pages_scanned = 0
        for record in records:
            for page in record.pages:
                pages_scanned += 1
                newest[(page.kind, page.page_id)] = page.data
        with obs.span("recovery.redo", pages=len(newest)):
            io = wal.io
            home = NameTableHome(io, layout)
            nt_images = {
                page_id: data
                for (kind, page_id), data in newest.items()
                if kind == PAGE_NAME_TABLE
            }
            stale_leaders = _redo_live_leaders(
                io, home, layout, newest, nt_images
            )
            if nt_images:
                home.write_pages(sorted(nt_images.items()))
            for (kind, page_id), data in newest.items():
                if kind == PAGE_VAM:
                    # §5.3 extension: bitmap pages go to the VAM save
                    # area so the logged-mode load sees
                    # base-plus-replayed state.
                    io.submit_write(
                        layout.vam_start + 1 + page_id, [data]
                    )
            # Redo must be home before the mount proceeds to rebuild
            # or load the VAM against the recovered images.
            io.barrier()
        replay_span.set(records=len(records), pages=len(newest))
    report.log_damage = wal.scan_damage
    report.log_records_lost = wal.lost_records_detected
    obs.count("recovery.records_replayed", len(records))
    obs.count("recovery.pages_replayed", len(newest))
    # Stale images superseded within the scanned window (redo coalesces).
    obs.count("recovery.pages_skipped", pages_scanned - len(newest))
    if stale_leaders:
        obs.count("recovery.stale_leaders_skipped", stale_leaders)
    report.log_records_replayed = len(records)
    report.pages_replayed = len(newest)
    report.replay_ms = disk.clock.now_ms - start_ms


def _redo_live_leaders(
    io,
    home: NameTableHome,
    layout: VolumeLayout,
    newest: dict[tuple[int, int], bytes],
    nt_images: dict[int, bytes],
) -> int:
    """Submit home writes for replayed leader images that are still
    live; return the number of stale images skipped.

    A leader is live iff the *final* name-table state still maps its
    (name, version) to its address and uid.  That state is derivable
    from the log alone: the commit that logged a leader logged the
    name-table leaf holding its entry in the same record, and every
    later move, split, or delete of that entry relogged the affected
    leaves — so searching the newest logged image of each leaf that is
    still allocated (per the logged bitmap; the home bitmap covers
    pages untouched in the window) finds the entry exactly when the
    file survived.  Pure CPU over pages already scanned: no extra
    I/O beyond at most one home bitmap read.
    """
    from repro.btree.node import LEAF, Node
    from repro.core.leader import decode_leader
    from repro.core.types import decode_key, decode_main_entry

    pending = {
        page_id: data
        for (kind, page_id), data in newest.items()
        if kind == PAGE_LEADER
    }
    if not pending:
        return 0
    page_size = layout.geometry.sector_bytes
    bitmap_pages = -(-layout.params.nt_pages // (8 * page_size))
    home_bitmaps: dict[int, bytes] = {}

    def allocated(page_no: int) -> bool:
        bitmap_page = 1 + page_no // (8 * page_size)
        image = nt_images.get(bitmap_page)
        if image is None:
            image = home_bitmaps.get(bitmap_page)
        if image is None:
            image = home.read_page(bitmap_page)
            home_bitmaps[bitmap_page] = image
        byte_index = (page_no % (8 * page_size)) // 8
        return bool(image[byte_index] & (1 << (page_no % 8)))

    live: dict[tuple[str, int], tuple[int, int]] = {}
    for page_no, data in nt_images.items():
        if page_no <= bitmap_pages or not allocated(page_no):
            continue
        try:
            node = Node.from_bytes(data)
        except CorruptMetadata:
            continue
        if node.kind != LEAF:
            continue
        for key, value in zip(node.keys, node.values):
            try:
                name, version, chunk = decode_key(key)
            except (CorruptMetadata, UnicodeDecodeError):
                continue
            if chunk != 0:
                continue
            try:
                props, _, _ = decode_main_entry(name, version, value)
            except (CorruptMetadata, ValueError):
                continue
            live[(name, version)] = (props.leader_addr, props.uid)

    stale = 0
    for address, data in sorted(pending.items()):
        try:
            image = decode_leader(data)
        except CorruptMetadata:
            image = None
        if (
            image is not None
            and live.get((image.name, image.version))
            == (address, image.uid)
        ):
            io.submit_write(address, [data])
        else:
            stale += 1
    return stale


# ----------------------------------------------------------------------
# VAM reconstruction
# ----------------------------------------------------------------------
def rebuild_vam(
    disk: SimDisk,
    layout: VolumeLayout,
    name_table: FsdNameTable,
    report: MountReport,
    obs=NULL_OBS,
) -> VolumeAllocationMap:
    """Reconstruct the free map from the name table (paper §5.5): mark
    the metadata extents, then every file's leader and data runs."""
    start_ms = disk.clock.now_ms
    with obs.span("recovery.vam_rebuild") as span:
        vam = VolumeAllocationMap(disk.geometry.total_sectors)
        vam.obs = obs
        for run in layout.metadata_runs():
            vam.mark_allocated(run)
        entries = 0
        for props, runs in name_table.enumerate():
            entries += 1
            if props.leader_addr:
                vam.mark_allocated(Run(props.leader_addr, 1))
            for run in runs.runs:
                vam.mark_allocated(run)
        span.set(entries=entries)
    obs.count("recovery.vam_rebuilds")
    obs.count("recovery.vam_rebuild_entries", entries)
    report.vam_rebuild_entries = entries
    report.vam_ms = disk.clock.now_ms - start_ms
    return vam
