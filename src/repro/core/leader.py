"""Leader pages (paper §5.2).

Every FSD file begins with a single leader page, physically the sector
immediately before data page 0.  "The leader page doesn't contain any
information needed for operation, but provides an optional check for
the proper operation of the system" — leader pages and the name table
are different data structures that are mutually checking, the design
that replaced CFS' hardware labels.

Leader verification is piggybacked: the first data access to a file is
almost always page 0, and the leader is its physical predecessor, so
reading the leader "usually costs only the transfer time for a page".

Format v2 makes the leader *self-describing*: besides the mutual-check
fields it records the file's full name, properties and run table
(§5.9's point that the leader is what a scavenger would reconstruct
from).  A whole-body checksum lets a full-volume sweep distinguish a
real leader from data-page bytes that happen to start with the magic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.types import FileKind, FileProperties, Run, RunTable
from repro.errors import CorruptMetadata
from repro.serial import Unpacker, checksum

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

_LEADER_MAGIC = 0x4C454144  # "LEAD"
_LEADER_FORMAT = 2
#: runs cross-checked verbatim against the name table ("preamble of
#: run table"); the full table is covered by the digest.
PREAMBLE_RUNS = 4
#: runs stored verbatim in the leader (for salvage); run tables longer
#: than this are only partially recoverable from the leader alone.
MAX_LEADER_RUNS = 64


#: fixed-width body prefix: uid u64, version u16, kind u8, keep u8,
#: byte_size u64, create_time f64.
_BODY_PREFIX = struct.Struct("<QHBBQd")
#: one (start u32, count u16) stored run.
_RUN_RECORD = struct.Struct("<IH")
#: sector header: magic u32, format u8, payload length u16, crc u32.
_HEADER = struct.Struct("<IBHI")


def _run_table_digest(runs: RunTable) -> int:
    pack_run = _RUN_RECORD.pack
    return checksum(
        b"".join(pack_run(run.start, run.count) for run in runs.runs)
    )


def encode_leader(
    props: FileProperties, runs: RunTable, sector_bytes: int
) -> bytes:
    """Build the leader sector for a file.

    Hand-rolled with precompiled structs (every create/extend rebuilds
    the leader); emits exactly the bytes of the Packer-based layout."""
    name = props.name.encode("utf-8")
    if len(name) > 64:
        raise ValueError(f"string longer than 64 bytes: {props.name!r}")
    stored = runs.runs[:MAX_LEADER_RUNS]
    pack_run = _RUN_RECORD.pack
    parts = [
        _BODY_PREFIX.pack(
            props.uid,
            props.version,
            props.kind.value,
            props.keep,
            props.byte_size,
            props.create_time_ms,
        ),
        bytes((len(name),)),
        name,
        _U16.pack(len(runs.runs)),
        bytes((len(stored),)),
    ]
    parts.extend(pack_run(run.start, run.count) for run in stored)
    parts.append(_U32.pack(_run_table_digest(runs)))
    payload = b"".join(parts)

    data = (
        _HEADER.pack(
            _LEADER_MAGIC, _LEADER_FORMAT, len(payload), checksum(payload)
        )
        + payload
    )
    if len(data) > sector_bytes:
        raise ValueError(
            f"packed structure overflows capacity {sector_bytes}"
        )
    return data.ljust(sector_bytes, b"\x00")


@dataclass
class SalvagedLeader:
    """Everything a leader sector says about its file — the salvager's
    raw material when the name table is gone."""

    name: str
    version: int
    uid: int
    kind: FileKind
    keep: int
    byte_size: int
    create_time_ms: float
    total_runs: int
    runs: RunTable
    run_digest: int

    @property
    def complete_runs(self) -> bool:
        """True when the leader stores the whole run table verbatim."""
        return len(self.runs.runs) == self.total_runs


def decode_leader(data: bytes) -> SalvagedLeader:
    """Parse a leader sector on its own terms (no name-table entry to
    check against) — the salvage path.  Raises
    :class:`CorruptMetadata` unless the sector is a checksummed,
    well-formed leader.
    """
    reader = Unpacker(data)
    if reader.u32() != _LEADER_MAGIC:
        raise CorruptMetadata("not a leader sector: bad magic")
    if reader.u8() != _LEADER_FORMAT:
        raise CorruptMetadata("leader sector: unknown format version")
    body_len = reader.u16()
    body_sum = reader.u32()
    body = reader.raw(body_len)
    if checksum(body) != body_sum:
        raise CorruptMetadata("leader sector: body checksum mismatch")
    reader = Unpacker(body)
    uid = reader.u64()
    version = reader.u16()
    kind_value = reader.u8()
    keep = reader.u8()
    byte_size = reader.u64()
    create_time_ms = reader.f64()
    name = reader.string()
    total_runs = reader.u16()
    stored_count = reader.u8()
    runs = RunTable()
    for _ in range(stored_count):
        start = reader.u32()
        count = reader.u16()
        runs.append(Run(start, count))
    digest = reader.u32()
    try:
        kind = FileKind(kind_value)
    except ValueError:
        raise CorruptMetadata(
            f"leader sector: unknown file kind {kind_value}"
        ) from None
    return SalvagedLeader(
        name=name,
        version=version,
        uid=uid,
        kind=kind,
        keep=keep,
        byte_size=byte_size,
        create_time_ms=create_time_ms,
        total_runs=total_runs,
        runs=runs,
        run_digest=digest,
    )


def verify_leader(
    data: bytes, props: FileProperties, runs: RunTable
) -> None:
    """Cross-check a leader sector against the name-table entry.

    Raises :class:`CorruptMetadata` on any mismatch — the FSD analogue
    of a CFS label check failure.  Identity (uid, version, name) and
    the run table are checked strictly; mutable properties carried for
    salvage (keep, byte size, times) are not part of the mutual check.
    """
    try:
        leader = decode_leader(data)
    except CorruptMetadata as error:
        raise CorruptMetadata(
            f"leader of {props.name}!{props.version}: {error}"
        ) from None
    if leader.uid != props.uid:
        raise CorruptMetadata(
            f"leader of {props.name}!{props.version}: uid "
            f"{leader.uid:#x} != name table {props.uid:#x}"
        )
    if leader.version != props.version:
        raise CorruptMetadata(
            f"leader of {props.name}: version {leader.version} != "
            f"{props.version}"
        )
    if leader.name != props.name:
        raise CorruptMetadata(
            f"leader name checksum owner {leader.name!r} != "
            f"name table {props.name!r}"
        )
    if leader.total_runs != len(runs.runs):
        raise CorruptMetadata(
            f"leader of {props.name}: {leader.total_runs} runs != "
            f"name table {len(runs.runs)}"
        )
    for index, run in enumerate(leader.runs.runs[:PREAMBLE_RUNS]):
        if index < len(runs.runs):
            other = runs.runs[index]
            if (run.start, run.count) != (other.start, other.count):
                raise CorruptMetadata(
                    f"leader of {props.name}: run preamble mismatch at "
                    f"run {index}"
                )
    if leader.run_digest != _run_table_digest(runs):
        raise CorruptMetadata(
            f"leader of {props.name}: run table checksum mismatch"
        )
