"""Leader pages (paper §5.2).

Every FSD file begins with a single leader page, physically the sector
immediately before data page 0.  "The leader page doesn't contain any
information needed for operation, but provides an optional check for
the proper operation of the system" — leader pages and the name table
are different data structures that are mutually checking, the design
that replaced CFS' hardware labels.

Leader verification is piggybacked: the first data access to a file is
almost always page 0, and the leader is its physical predecessor, so
reading the leader "usually costs only the transfer time for a page".
"""

from __future__ import annotations

from repro.core.types import FileProperties, RunTable
from repro.errors import CorruptMetadata
from repro.serial import Packer, Unpacker, checksum

_LEADER_MAGIC = 0x4C454144  # "LEAD"
#: runs included verbatim in the leader ("preamble of run table").
PREAMBLE_RUNS = 4


def _run_table_digest(runs: RunTable) -> int:
    packer = Packer()
    for run in runs.runs:
        packer.u32(run.start)
        packer.u16(run.count)
    return checksum(packer.bytes())


def encode_leader(
    props: FileProperties, runs: RunTable, sector_bytes: int
) -> bytes:
    """Build the leader sector for a file."""
    packer = Packer(capacity=sector_bytes)
    packer.u32(_LEADER_MAGIC)
    packer.u64(props.uid)
    packer.u16(props.version)
    packer.u32(checksum(props.name.encode("utf-8")))
    preamble = runs.runs[:PREAMBLE_RUNS]
    packer.u8(len(preamble))
    for run in preamble:
        packer.u32(run.start)
        packer.u16(run.count)
    packer.u32(_run_table_digest(runs))
    return packer.bytes(pad_to=sector_bytes)


def verify_leader(
    data: bytes, props: FileProperties, runs: RunTable
) -> None:
    """Cross-check a leader sector against the name-table entry.

    Raises :class:`CorruptMetadata` on any mismatch — the FSD analogue
    of a CFS label check failure.
    """
    reader = Unpacker(data)
    if reader.u32() != _LEADER_MAGIC:
        raise CorruptMetadata(
            f"leader of {props.name}!{props.version}: bad magic"
        )
    uid = reader.u64()
    if uid != props.uid:
        raise CorruptMetadata(
            f"leader of {props.name}!{props.version}: uid {uid:#x} != "
            f"name table {props.uid:#x}"
        )
    version = reader.u16()
    if version != props.version:
        raise CorruptMetadata(
            f"leader of {props.name}: version {version} != {props.version}"
        )
    name_sum = reader.u32()
    if name_sum != checksum(props.name.encode("utf-8")):
        raise CorruptMetadata(f"leader of {props.name}: name checksum")
    preamble_count = reader.u8()
    for index in range(preamble_count):
        start = reader.u32()
        count = reader.u16()
        if index < len(runs.runs):
            run = runs.runs[index]
            if (start, count) != (run.start, run.count):
                raise CorruptMetadata(
                    f"leader of {props.name}: run preamble mismatch at "
                    f"run {index}"
                )
    digest = reader.u32()
    if digest != _run_table_digest(runs):
        raise CorruptMetadata(
            f"leader of {props.name}: run table checksum mismatch"
        )
