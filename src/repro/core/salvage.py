"""Full-volume salvage: FSD's answer when redundancy runs out.

The paper argues FSD's double-written name table plus redo log make
scavenging "nearly unnecessary" — within §5.3's single-fault model.
This module is the backstop for when that model is exceeded (both
copies of a name-table page gone, the log third that covered them
overwritten or destroyed): the FSD analogue of the CFS scavenger
(`repro.cfs.scavenger`), rebuilt around FSD's own redundancy.

The salvager never trusts volume-level structure.  It sweeps:

1. the **log record area**, with no anchor and no record-number chain:
   any sector that parses as a record header yields page images
   validated by their *per-page checksums* (each image appears twice
   on non-adjacent sectors, so the single-fault model can never cost
   both), newest record number wins per page;
2. the **name-table home extents**, page by page, preferring the log's
   image (always at least as new as home), then agreeing home copies,
   then any single survivor — and harvests B-tree *leaf entries*
   directly from each image, deliberately ignoring tree structure
   (interior pages may be gone);
3. the **data areas**, sector by sector, for self-describing v2 leader
   pages (full name, properties, and run table under a body checksum).

Harvested name-table entries win over leaders; orphan leaders (their
entry lost with the name table) are readmitted unless their sectors
conflict with a surviving entry — conflicts mean the leader is stale
(its file was deleted and the space reallocated), and newer claims
(higher uid) win among orphans.  Every accepted file's data is read
from the damaged volume and rewritten into a freshly formatted volume
on the destination disk; both disks share one simulated clock, so the
:class:`SalvageReport` is directly comparable to the paper's scavenge
measurements.

Because the destination is reformatted from scratch on every run,
salvage is idempotent: a crash mid-salvage leaves a partial output
that the next run simply overwrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btree.node import LEAF, Node
from repro.core.fsd import FSD, FsdFile, _split_leader
from repro.core.layout import RootPage, VolumeLayout, VolumeParams
from repro.core.leader import (
    SalvagedLeader,
    decode_leader,
    encode_leader,
    _run_table_digest,
)
from repro.core.types import (
    FileKind,
    FileProperties,
    Run,
    RunTable,
    decode_continuation,
    decode_key,
    decode_main_entry,
)
from repro.core.wal import (
    PAGE_LEADER,
    PAGE_NAME_TABLE,
    RECORD_DATA,
    _HEADER_MAGIC,
    record_sectors,
)
from repro.disk.disk import SimDisk
from repro.disk.sched import as_scheduler
from repro.errors import CorruptMetadata, DegradedVolumeError
from repro.obs import NULL_OBS
from repro.serial import Unpacker, checksum

#: sectors per salvage sweep read (one arm pass reads a whole chunk).
_SWEEP_CHUNK = 120


@dataclass
class SalvageReport:
    """What a salvage pass found, kept, and had to give up on."""

    files_recovered: int = 0
    recovered_from_name_table: int = 0
    recovered_from_leaders: int = 0
    stale_dropped: int = 0
    #: (``name!version`` label, reason) per unrecoverable file.
    lost: list[tuple[str, str]] = field(default_factory=list)
    log_pages_harvested: int = 0
    nt_pages_harvested: int = 0
    leaders_found: int = 0
    bytes_recovered: int = 0
    duration_ms: float = 0.0

    @property
    def files_lost(self) -> int:
        return len(self.lost)

    def summary(self) -> str:
        """One-line human-readable digest of the salvage pass."""
        return (
            f"salvage: {self.files_recovered} files recovered "
            f"({self.recovered_from_name_table} via name table, "
            f"{self.recovered_from_leaders} via orphan leaders), "
            f"{self.files_lost} lost, {self.stale_dropped} stale "
            f"claims dropped, {self.bytes_recovered} bytes, "
            f"{self.duration_ms / 1000:.1f} simulated s"
        )


# ----------------------------------------------------------------------
# sweep phases
# ----------------------------------------------------------------------
def _sweep_read(io, start: int, count: int) -> list[bytes | None]:
    """Chunked tolerant read of ``count`` sectors; a failed sector gets
    one retry (the ladder's transient rung) before staying ``None``."""
    out: list[bytes | None] = []
    for base in range(start, start + count, _SWEEP_CHUNK):
        span = min(_SWEEP_CHUNK, start + count - base)
        out.extend(io.read_maybe(base, span))
    for index, sector in enumerate(out):
        if sector is None:
            out[index] = io.read_maybe(start + index, 1)[0]
    return out


def _sweep_log(
    io, layout: VolumeLayout, report: SalvageReport
) -> dict[tuple[int, int], bytes]:
    """Tolerant log sweep: newest checksum-valid image per page.

    No anchor, no expected record number: every sector that parses as
    a data-record header is tried, and each carried page is accepted
    iff one of its two copies matches the header's per-page checksum.
    Returns ``{(kind, page_id): data}`` plus stores the winning record
    number per page for later conflict resolution.
    """
    area_start = layout.log_start + 3
    area_sectors = layout.params.log_record_sectors
    sectors = _sweep_read(io, area_start, area_sectors)
    newest: dict[tuple[int, int], tuple[int, bytes]] = {}
    for index, data in enumerate(sectors):
        meta = _parse_any_header(data)
        if meta is None:
            continue
        record_number, page_meta = meta
        count = len(page_meta)
        if record_sectors(count) > area_sectors:
            continue
        # ``index`` may be the first header (pages at +3) or its copy
        # two sectors later (pages at +1): per-page checksums decide.
        for first_data in (index + 3, index + 1):
            for page_index, (kind, page_id, expect_sum) in enumerate(
                page_meta
            ):
                for position in (
                    first_data + page_index,
                    first_data + count + 1 + page_index,
                ):
                    if not 0 <= position < area_sectors:
                        continue
                    candidate = sectors[position]
                    if candidate is None:
                        continue
                    if checksum(candidate) != expect_sum:
                        continue
                    key = (kind, page_id)
                    held = newest.get(key)
                    if held is None or held[0] < record_number:
                        newest[key] = (record_number, candidate)
                    break
    report.log_pages_harvested = len(newest)
    return {key: data for key, (_, data) in newest.items()}


def _parse_any_header(
    data: bytes | None,
) -> tuple[int, list[tuple[int, int, int]]] | None:
    if data is None:
        return None
    try:
        reader = Unpacker(data)
        if reader.u32() != _HEADER_MAGIC:
            return None
        if reader.u8() != RECORD_DATA:
            return None
        record_number = reader.u64()
        reader.u32()  # boot count: unused here
        count = reader.u16()
        if count > 512:
            return None
        meta = [
            (reader.u8(), reader.u64(), reader.u32()) for _ in range(count)
        ]
        return record_number, meta
    except CorruptMetadata:
        return None


def _harvest_entries(
    io,
    layout: VolumeLayout,
    log_images: dict[tuple[int, int], bytes],
    report: SalvageReport,
) -> dict[tuple[str, int, int], tuple[int, bytes]]:
    """Collect raw leaf entries from every readable name-table image.

    Key: (name, version, chunk); value: (precedence, entry payload)
    where precedence orders log images (newest possible) above agreeing
    home copies above lone survivors.  Tree structure is ignored —
    entries survive even when every interior page is gone.
    """
    params = layout.params
    bitmap_pages = -(-params.nt_pages // (8 * layout.geometry.sector_bytes))
    copies_a = _sweep_read(io, layout.nt_a_start, params.nt_pages)
    copies_b = (
        [None] * params.nt_pages
        if params.single_nt_copy
        else _sweep_read(io, layout.nt_b_start, params.nt_pages)
    )
    entries: dict[tuple[str, int, int], tuple[int, bytes]] = {}
    harvested = 0
    for page_no in range(params.nt_pages):
        if page_no <= bitmap_pages:
            continue  # meta page + allocation bitmap: no entries
        logged = log_images.get((PAGE_NAME_TABLE, page_no))
        candidates: list[tuple[int, bytes]] = []
        if logged is not None:
            candidates.append((3, logged))
        copy_a, copy_b = copies_a[page_no], copies_b[page_no]
        if copy_a is not None and copy_a == copy_b:
            candidates.append((2, copy_a))
        else:
            # Differing or half-dead copies: harvest both sides; junk
            # fails to parse, and precedence settles real conflicts.
            for survivor in (copy_a, copy_b):
                if survivor is not None:
                    candidates.append((1, survivor))
        page_yielded = False
        for precedence, image in candidates:
            if _harvest_leaf(image, precedence, entries):
                page_yielded = True
        if page_yielded:
            harvested += 1
    report.nt_pages_harvested = harvested
    return entries


def _harvest_leaf(
    image: bytes,
    precedence: int,
    entries: dict[tuple[str, int, int], tuple[int, bytes]],
) -> bool:
    try:
        node = Node.from_bytes(image)
    except CorruptMetadata:
        return False
    if node.kind != LEAF:
        return False
    yielded = False
    for key, value in zip(node.keys, node.values):
        try:
            name, version, chunk = decode_key(key)
        except (CorruptMetadata, UnicodeDecodeError):
            continue
        held = entries.get((name, version, chunk))
        if held is None or held[0] < precedence:
            entries[(name, version, chunk)] = (precedence, value)
            yielded = True
    return yielded


def _sweep_leaders(
    io,
    layout: VolumeLayout,
    log_images: dict[tuple[int, int], bytes],
    report: SalvageReport,
) -> dict[int, SalvagedLeader]:
    """Scan both data areas for v2 leader sectors; the log's leader
    images (newer than home, by construction) override the platter."""
    found: dict[int, SalvagedLeader] = {}
    for area in (layout.big_area, layout.small_area):
        sectors = _sweep_read(io, area.start, area.count)
        for index, data in enumerate(sectors):
            if data is None:
                continue
            try:
                found[area.start + index] = decode_leader(data)
            except CorruptMetadata:
                continue
    for (kind, page_id), data in log_images.items():
        if kind != PAGE_LEADER:
            continue
        try:
            found[page_id] = decode_leader(data)
        except CorruptMetadata:
            continue
    report.leaders_found = len(found)
    return found


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
@dataclass
class _Candidate:
    props: FileProperties
    runs: RunTable
    origin: str  # "nt" | "leader"
    precedence: tuple


def _assemble_candidates(
    entries: dict[tuple[str, int, int], tuple[int, bytes]],
    leaders: dict[int, SalvagedLeader],
    report: SalvageReport,
) -> list[_Candidate]:
    candidates: list[_Candidate] = []
    claimed_names: set[tuple[str, int]] = set()
    for (name, version, chunk), (precedence, value) in sorted(
        entries.items()
    ):
        if chunk != 0:
            continue
        try:
            props, runs, total_runs = decode_main_entry(name, version, value)
        except (CorruptMetadata, ValueError):
            continue
        complete = True
        next_chunk = 1
        while len(runs.runs) < total_runs:
            more = entries.get((name, version, next_chunk))
            if more is None:
                complete = False
                break
            try:
                runs.runs.extend(decode_continuation(more[1]))
            except CorruptMetadata:
                complete = False
                break
            next_chunk += 1
        if len(runs.runs) > total_runs:
            del runs.runs[total_runs:]
        if not complete:
            # Continuation chunks gone: the leader keeps the whole run
            # table (up to its capacity) and can fill the gap.
            leader = leaders.get(props.leader_addr)
            if (
                leader is not None
                and leader.uid == props.uid
                and leader.complete_runs
                and _run_table_digest(leader.runs) == leader.run_digest
            ):
                runs = RunTable([Run(r.start, r.count) for r in leader.runs.runs])
                complete = True
        if not complete:
            report.lost.append(
                (f"{name}!{version}", "run-table continuations lost")
            )
            continue
        claimed_names.add((name, version))
        candidates.append(
            _Candidate(
                props=props,
                runs=runs,
                origin="nt",
                precedence=(1, precedence, props.uid),
            )
        )
    for address, leader in sorted(
        leaders.items(), key=lambda item: -item[1].uid
    ):
        if (leader.name, leader.version) in claimed_names:
            continue  # the name table's claim wins; this one is stale
        if not leader.complete_runs:
            report.lost.append(
                (
                    f"{leader.name}!{leader.version}",
                    "orphan leader stores a truncated run table",
                )
            )
            continue
        if _run_table_digest(leader.runs) != leader.run_digest:
            continue  # internally inconsistent: not a real leader state
        if leader.kind != FileKind.LOCAL:
            # A symlink / cached-copy target lives only in the name
            # table; restoring the shell without it would lie.
            report.lost.append(
                (
                    f"{leader.name}!{leader.version}",
                    "remote target lost with its name-table entry",
                )
            )
            continue
        props = FileProperties(
            name=leader.name,
            version=leader.version,
            uid=leader.uid,
            kind=leader.kind,
            byte_size=leader.byte_size,
            create_time_ms=leader.create_time_ms,
            last_used_ms=leader.create_time_ms,
            keep=leader.keep,
            leader_addr=address,
        )
        candidates.append(
            _Candidate(
                props=props,
                runs=leader.runs,
                origin="leader",
                precedence=(0, 0, leader.uid),
            )
        )
    return candidates


def _resolve_claims(
    candidates: list[_Candidate], report: SalvageReport
) -> list[_Candidate]:
    """Greedy sector-claim resolution: name-table entries first, then
    orphan leaders newest-uid first; a candidate whose sectors overlap
    an accepted claim is a stale generation of that space."""
    accepted: list[_Candidate] = []
    claimed: set[int] = set()
    for candidate in sorted(
        candidates, key=lambda c: c.precedence, reverse=True
    ):
        sectors = {candidate.props.leader_addr}
        for run in candidate.runs.runs:
            sectors.update(range(run.start, run.start + run.count))
        if sectors & claimed:
            report.stale_dropped += 1
            continue
        claimed |= sectors
        accepted.append(candidate)
    return accepted


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def _read_file_data(io, candidate: _Candidate) -> bytes | None:
    """Read a candidate's data pages tolerantly; None when any sector
    is gone (its file is lost, not silently zero-filled)."""
    chunks: list[bytes] = []
    for run in candidate.runs.runs:
        sectors = _sweep_read(io, run.start, run.count)
        if any(sector is None for sector in sectors):
            return None
        chunks.extend(sectors)  # type: ignore[arg-type]
    blob = b"".join(chunks)
    if len(blob) < candidate.props.byte_size:
        return None
    return blob[: candidate.props.byte_size]


def _restore_file(
    fs: FSD, props: FileProperties, data: bytes
) -> None:
    """Recreate one file on the fresh volume, preserving its identity
    (uid, version, kind, keep, create time) — ``FSD.create`` would mint
    new ones.  Placement is reallocated; content is byte-identical."""
    sector_bytes = fs.disk.geometry.sector_bytes
    data_sectors = -(-len(data) // sector_bytes)
    big = len(data) >= fs.params.big_file_threshold_bytes
    table = fs.allocator.allocate(1 + data_sectors, big=big)
    leader_addr, runs = _split_leader(table)
    restored = props.with_updates(leader_addr=leader_addr)
    fs.coordinator.note_update()
    fs.name_table.insert(restored, runs)
    fs.cache.write_leader(
        leader_addr, encode_leader(restored, runs, sector_bytes)
    )
    handle = FsdFile(props=restored, runs=runs, leader_verified=True)
    if data:
        fs._write_data(handle, 0, data)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def _read_params(
    io, geometry, params_hint: VolumeParams | None
) -> VolumeParams:
    """Recover the volume parameters from either root copy — without
    the mount path's repair write; salvage never writes the source."""
    probe = VolumeLayout.compute(geometry, params_hint or VolumeParams())
    survivors: list[RootPage] = []
    for address in (probe.root_a, probe.root_b):
        sector = io.read_maybe(address, 1)[0]
        if sector is None:
            continue
        try:
            survivors.append(RootPage.decode(sector))
        except CorruptMetadata:
            continue
    if survivors:
        return max(survivors, key=lambda root: root.boot_count).params
    if params_hint is None:
        raise DegradedVolumeError(
            "both root copies unreadable and no volume parameters "
            "provided to locate the layout"
        )
    return params_hint


def salvage_volume(
    source: SimDisk,
    destination: SimDisk | None = None,
    params_hint: VolumeParams | None = None,
    obs=NULL_OBS,
) -> tuple[SimDisk, SalvageReport]:
    """Salvage ``source`` into a freshly formatted volume.

    The source is only ever read (tolerantly, sector by sector); the
    rebuilt volume lands on ``destination``, which defaults to a new
    disk with the source's geometry sharing the source's clock (all
    sweep and rebuild time accrues on one simulated timeline).
    ``params_hint`` locates the volume layout if both root-page copies
    are unreadable.  Returns the destination disk — holding a cleanly
    unmounted, freshly formatted volume — and the report.

    Re-running after a crash mid-salvage is safe: the destination is
    reformatted from scratch every time, so a partial previous output
    is simply overwritten.
    """
    started_ms = source.clock.now_ms
    io = as_scheduler(source, obs=obs)
    report = SalvageReport()
    with obs.span("salvage.run"):
        params = _read_params(io, source.geometry, params_hint)
        layout = VolumeLayout.compute(source.geometry, params)

        with obs.span("salvage.log_sweep"):
            log_images = _sweep_log(io, layout, report)
        with obs.span("salvage.nt_sweep"):
            entries = _harvest_entries(io, layout, log_images, report)
        with obs.span("salvage.leader_sweep"):
            leaders = _sweep_leaders(io, layout, log_images, report)

        candidates = _assemble_candidates(entries, leaders, report)
        accepted = _resolve_claims(candidates, report)

        if destination is None:
            destination = SimDisk(
                geometry=source.geometry,
                timing=source.timing,
                clock=source.clock,
            )
        with obs.span("salvage.restore"):
            FSD.format(destination, params)
            fs = FSD.mount(destination, params=params)
            for candidate in sorted(
                accepted, key=lambda c: (c.props.name, c.props.version)
            ):
                label = f"{candidate.props.name}!{candidate.props.version}"
                data = _read_file_data(io, candidate)
                if data is None:
                    report.lost.append((label, "data pages damaged"))
                    continue
                _restore_file(fs, candidate.props, data)
                report.files_recovered += 1
                report.bytes_recovered += len(data)
                if candidate.origin == "nt":
                    report.recovered_from_name_table += 1
                else:
                    report.recovered_from_leaders += 1
                fs.coordinator.check_pressure()
            fs.force()
            fs.unmount()
    report.duration_ms = source.clock.now_ms - started_ms
    obs.count("salvage.runs")
    obs.count("salvage.files_recovered", report.files_recovered)
    obs.count("salvage.files_lost", report.files_lost)
    return destination, report
