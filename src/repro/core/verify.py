"""Offline integrity verification for FSD volumes.

FSD's runtime defences (double reads, leader piggyback checks, log
copies) catch faults as they surface; this module is the *offline*
sweep — the "using different data structures to detect bugs" idea of
§5.8 turned into a tool.  It cross-checks every pair of mutually
checking structures:

* both home copies of every reachable name-table page agree,
* the B-tree is structurally valid,
* every file's leader page verifies against its name-table entry,
* no two files (or metadata regions) claim the same sector,
* the live VAM matches a fresh rebuild from the name table
  (``strict``) or at worst leaks free pages (default),
* the log anchor is readable.

Unlike the CFS scavenger this never *repairs* anything structural —
FSD's invariants mean there is nothing to rebuild — but it reports
with enough precision to pinpoint an offending subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fsd import FSD
from repro.core.leader import verify_leader
from repro.core.recovery import MountReport, rebuild_vam
from repro.core.types import Run
from repro.errors import CorruptMetadata


@dataclass
class VerifyReport:
    files_checked: int = 0
    leaders_verified: int = 0
    nt_pages_checked: int = 0
    problems: list[str] = field(default_factory=list)
    leaked_sectors: int = 0

    @property
    def clean(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        """Record one integrity problem."""
        self.problems.append(problem)


def verify_volume(fs: FSD, strict_vam: bool = False) -> VerifyReport:
    """Run every cross-check on a mounted FSD volume."""
    report = VerifyReport()
    _check_tree(fs, report)
    _check_nt_copies(fs, report)
    _check_files(fs, report)
    _check_vam(fs, report, strict=strict_vam)
    _check_log_anchor(fs, report)
    return report


def _check_tree(fs: FSD, report: VerifyReport) -> None:
    try:
        fs.name_table.tree.check_invariants()
    except CorruptMetadata as error:
        report.add(f"name-table B-tree invariant: {error}")


def _check_nt_copies(fs: FSD, report: VerifyReport) -> None:
    """Double-read every *home-clean* reachable page.

    Pages with a pending home write legitimately differ from disk, so
    only pages the cache does not hold dirty are compared.
    """
    from repro.btree.node import Node
    from repro.core.wal import PAGE_NAME_TABLE

    pending = {
        page.page_id
        for page in fs.cache.pages_needing_log()
        if page.kind == PAGE_NAME_TABLE
    }
    # Walk reachable pages via the pager (which repairs single-copy
    # damage as a side effect, like any read).
    stack = [fs.name_table.tree._root]
    seen = set()
    while stack:
        page_no = stack.pop()
        if page_no in seen:
            continue
        seen.add(page_no)
        report.nt_pages_checked += 1
        try:
            data = fs.cache.read_nt(page_no)
            node = Node.from_bytes(data)
        except CorruptMetadata as error:
            report.add(f"name-table page {page_no}: {error}")
            continue
        if not node.is_leaf:
            stack.extend(node.children)


def _check_files(fs: FSD, report: VerifyReport) -> None:
    claimed: dict[int, str] = {}
    for run in fs.layout.metadata_runs():
        for sector in range(run.start, run.end):
            claimed[sector] = "<metadata>"
    for props, runs in fs.name_table.enumerate():
        report.files_checked += 1
        label = f"{props.name}!{props.version}"
        spans = [Run(props.leader_addr, 1), *runs.runs] if props.leader_addr else list(runs.runs)
        for run in spans:
            for sector in range(run.start, run.end):
                owner = claimed.get(sector)
                if owner is not None:
                    report.add(
                        f"sector {sector} claimed by both {owner} and {label}"
                    )
                claimed[sector] = label
        if props.leader_addr:
            try:
                cached = fs.cache.leader_pending_piggyback(props.leader_addr)
                data = (
                    cached
                    if cached is not None
                    else fs.io.read(props.leader_addr, 1)[0]
                )
                verify_leader(data, props, runs)
                report.leaders_verified += 1
            except Exception as error:  # damaged sector or bad leader
                report.add(f"leader of {label}: {error}")


def _check_vam(fs: FSD, report: VerifyReport, strict: bool) -> None:
    # Note: shadow-freed runs (uncommitted deletes) are allocated in
    # the live VAM but free in the reference; they surface as expected
    # leaks, not as hazards.
    try:
        reference = rebuild_vam(
            fs.disk, fs.layout, fs.name_table, MountReport()
        )
    except CorruptMetadata as error:
        report.add(f"VAM rebuild impossible: {error}")
        return
    for sector in range(fs.disk.geometry.total_sectors):
        live_free = fs.vam.is_free(sector)
        ref_free = reference.is_free(sector)
        if live_free and not ref_free:
            report.add(
                f"VAM says sector {sector} free but the name table "
                f"claims it (double-allocation hazard)"
            )
        elif ref_free and not live_free:
            report.leaked_sectors += 1
    if strict and report.leaked_sectors:
        report.add(
            f"{report.leaked_sectors} leaked sectors (strict mode)"
        )


def _check_log_anchor(fs: FSD, report: VerifyReport) -> None:
    try:
        fs.wal.read_anchor()
    except CorruptMetadata as error:
        report.add(f"log anchor: {error}")
