"""Run (extent) allocator with big/small file areas (paper §5.6).

CFS' allocator "tended to fragment the free space: large free blocks
were broken up by small files."  FSD curtails this by partitioning the
disk into a small-file area and a big-file area — *hints*, not hard
boundaries: like a heap growing up and a stack growing down, small
files are allocated ascending from just above the central metadata and
big files descending from just below it, and either may overflow into
the other's area before the volume is declared full.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layout import VolumeLayout
from repro.core.types import Run, RunTable
from repro.core.vam import VolumeAllocationMap
from repro.errors import VolumeFull


@dataclass
class AllocatorStats:
    allocations: int = 0
    runs_handed_out: int = 0
    sectors_handed_out: int = 0
    overflow_allocations: int = 0  # satisfied from the "wrong" area


class RunAllocator:
    """Next-fit run allocator over the VAM's two data areas."""

    def __init__(self, vam: VolumeAllocationMap, layout: VolumeLayout):
        self.vam = vam
        self.layout = layout
        self.stats = AllocatorStats()
        self._small_cursor = layout.small_area.start

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def allocate(self, sectors: int, big: bool) -> RunTable:
        """Allocate ``sectors`` as one or more runs; raises VolumeFull
        (after rolling back) when the volume cannot satisfy it."""
        if sectors <= 0:
            raise VolumeFull(f"bad allocation request {sectors}")
        table = RunTable()
        remaining = sectors
        overflowed = False
        areas = ("big", "small") if big else ("small", "big")
        for index, area in enumerate(areas):
            remaining = self._allocate_from(area, remaining, table)
            if remaining == 0:
                break
            if index == 0:
                overflowed = True
        if remaining > 0:
            for run in table.runs:
                self.vam.mark_free(run)
            raise VolumeFull(
                f"needed {sectors} sectors, volume short by {remaining}"
            )
        if len(table.runs) > self.layout.params.max_file_runs:
            for run in table.runs:
                self.vam.mark_free(run)
            raise VolumeFull(
                f"allocation fragmented into {len(table.runs)} runs "
                f"(limit {self.layout.params.max_file_runs})"
            )
        self.stats.allocations += 1
        self.stats.runs_handed_out += len(table.runs)
        self.stats.sectors_handed_out += sectors
        if overflowed:
            self.stats.overflow_allocations += 1
        return table

    def free(self, runs: RunTable | list[Run], deferred: bool = True) -> None:
        """Release runs; ``deferred`` routes them through the shadow
        bitmap so they only become allocatable at the next commit."""
        run_list = runs.runs if isinstance(runs, RunTable) else runs
        for run in run_list:
            if deferred:
                self.vam.shadow_free(run)
            else:
                self.vam.mark_free(run)

    # ------------------------------------------------------------------
    # per-area next-fit
    # ------------------------------------------------------------------
    def _allocate_from(self, area: str, want: int, table: RunTable) -> int:
        """Allocate up to ``want`` sectors from one area; returns how
        many are still needed.

        The small area uses a next-fit cursor (creates are frequent and
        sequential placement keeps them cheap); the big area is
        first-fit from the top, so space freed by deleted large files
        is reused and large files on an aged volume acquire the
        multi-run tables they would have in service.
        """
        if area == "small":
            bounds = self.layout.small_area
            ascending = True
        else:
            bounds = self.layout.big_area
            ascending = False
        wrapped = False
        remaining = want
        end_limit = bounds.end
        while remaining > 0:
            if ascending:
                run = self.vam.find_free_run(
                    self._small_cursor, bounds.end, remaining, ascending=True
                )
            else:
                run = self.vam.find_free_run(
                    bounds.start, end_limit, remaining, ascending=False
                )
            if run is None:
                if ascending:
                    if wrapped or self._small_cursor == bounds.start:
                        break
                    wrapped = True
                    # Next-fit wrap: restart the cursor once per request.
                    self._small_cursor = bounds.start
                    continue
                break
            self.vam.mark_allocated(run)
            table.append(run)
            remaining -= run.count
            if ascending:
                self._small_cursor = run.end
            else:
                end_limit = run.start
        return remaining

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def fragmentation_report(self) -> dict[str, float]:
        """Free-space fragmentation of both areas: count and mean size
        of maximal free runs (used by the allocator ablation bench)."""
        report = {}
        for name, bounds, in (
            ("small", self.layout.small_area),
            ("big", self.layout.big_area),
        ):
            runs = []
            cursor = bounds.start
            while cursor < bounds.end:
                run = self.vam.find_free_run(
                    cursor, bounds.end, bounds.count, ascending=True
                )
                if run is None:
                    break
                runs.append(run)
                cursor = run.end
            total_free = sum(run.count for run in runs)
            report[f"{name}_free_runs"] = len(runs)
            report[f"{name}_free_sectors"] = total_free
            report[f"{name}_mean_free_run"] = (
                total_free / len(runs) if runs else 0.0
            )
        return report
