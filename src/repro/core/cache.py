"""The metadata page cache (paper §5.3).

"Updates are applied to buffered copies of pages, but the copies are
not forced to disk — they are just written to the log."  The cache
therefore distinguishes, per page:

* ``needs_log``   — modified since the page was last logged (waiting
  for the next group commit),
* ``logged_image``— the image most recently written to the log (what
  recovery would reconstruct),
* ``home_image``  — what is on the page's home sectors.

The third-entry writeback ("dirty but logged" pages) writes the
*logged* image home, never the possibly newer unlogged one: writing an
uncommitted image home would break the atomicity the log provides
(a multi-page B-tree split could reach disk half-done).  Pages with
any pending obligation are pinned; only fully clean pages are evicted.

The cache itself never touches the disk: writeback goes through the
injected ``nt_writer``/``leader_writer``/``vam_writer`` callables,
which a mounted volume points at the shared
:class:`~repro.disk.sched.IoScheduler`.  Under a queueing policy the
writebacks are *submitted* — elevator-sorted and coalesced at the next
barrier (the log force or anchor write that makes them safe) — while
under ``fifo`` they dispatch immediately in program order.

Cached name-table pages are conceptually read-only between updates —
the paper keeps them read-protected to catch wild stores.  Here the
analogous guard is that the cache hands out ``bytes`` (immutable) and
only :meth:`write_nt`/:meth:`write_leader` can change cache state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.wal import PAGE_LEADER, PAGE_NAME_TABLE, PAGE_VAM, LoggedPage
from repro.errors import CorruptMetadata
from repro.obs import NULL_OBS


@dataclass(slots=True)
class CacheEntry:
    kind: int              # PAGE_NAME_TABLE or PAGE_LEADER
    page_id: int
    data: bytes
    needs_log: bool = False
    logged_image: bytes | None = None
    home_image: bytes | None = None
    last_logged_third: int | None = None
    lru_tick: int = 0

    @property
    def home_stale(self) -> bool:
        """True when the last logged image has not been written home."""
        return self.logged_image is not None and (
            self.logged_image != self.home_image
        )

    @property
    def evictable(self) -> bool:
        return not self.needs_log and not self.home_stale


class _NullCounter:
    """Stand-in counter bound on detached (NULL observer) hot paths:
    the increment lands on a throwaway slot instead of re-entering the
    no-op observer on every hit."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0


class MetadataCache:
    """Cache of name-table pages and pending leader pages.

    ``nt_reader(page_no)`` must return the page from its home copies
    (the double read); ``nt_writer(pages)`` must write ``(page_no,
    data)`` pairs to both home copies; ``leader_writer(addr, data)``
    writes a leader page home.
    """

    def __init__(
        self,
        capacity_pages: int,
        nt_reader: Callable[[int], bytes],
        nt_writer: Callable[[list[tuple[int, bytes]]], None],
        leader_writer: Callable[[int, bytes], None],
        vam_writer: Callable[[int, bytes], None] | None = None,
    ):
        self.capacity = capacity_pages
        self._nt_reader = nt_reader
        self._nt_writer = nt_writer
        self._leader_writer = leader_writer
        self._vam_writer = vam_writer
        self._entries: dict[tuple[int, int], CacheEntry] = {}
        #: entries with ``needs_log`` set, maintained incrementally so
        #: the admission/pressure checks on every operation are O(1)
        #: instead of a full cache scan.
        self._dirty: dict[tuple[int, int], CacheEntry] = {}
        #: recency order (oldest first), kept in lockstep with
        #: ``lru_tick``: iterating from the front visits entries in
        #: exactly ascending-tick order, so eviction walks a prefix
        #: instead of sorting the whole cache on every miss.
        self._lru: OrderedDict[tuple[int, int], CacheEntry] = OrderedDict()
        #: lazily bound handle for the ``cache.hits`` counter (the
        #: hottest metric in the system); ``read_nt`` binds it on the
        #: first hit with a live observer attached.
        self._hit_counter = None
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.home_writes = 0
        #: observability attach point (``FSD.mount`` rebinds it).
        self.obs = NULL_OBS

    @property
    def obs(self):
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        # Rebinding the observer invalidates any bound counter handle.
        self._obs = value
        self._hit_counter = None

    # ------------------------------------------------------------------
    # name-table pages
    # ------------------------------------------------------------------
    def read_nt(self, page_no: int) -> bytes:
        """Read a name-table page, via the cache (miss = double read)."""
        key = (PAGE_NAME_TABLE, page_no)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            counter = self._hit_counter
            if counter is not None:
                counter.value += 1
            else:
                # First hit goes through the normal path (so the
                # counter is created lazily, exactly as before), then
                # the handle is bound for every later hit.
                obs = self.obs
                obs.count("cache.hits")
                if obs.enabled:
                    self._hit_counter = obs.metrics.counter("cache.hits")
                else:
                    self._hit_counter = _NullCounter()
            # _touch inlined: this is the hottest cache path.  Every
            # entry in ``_entries`` is also in ``_lru`` (both are
            # populated by ``_touch`` and pruned together by
            # ``_evict_if_needed``), so a bare move_to_end suffices;
            # the fallback re-inserts if that invariant ever breaks.
            self._tick += 1
            entry.lru_tick = self._tick
            lru = self._lru
            try:
                lru.move_to_end(key)
            except KeyError:
                lru[key] = entry
            return entry.data
        self.misses += 1
        self.obs.count("cache.misses")
        data = self._nt_reader(page_no)
        entry = CacheEntry(
            kind=PAGE_NAME_TABLE, page_id=page_no, data=data, home_image=data
        )
        self._entries[key] = entry
        self._touch(entry)
        self._evict_if_needed()
        return data

    def write_nt(self, page_no: int, data: bytes) -> None:
        """Apply an update to a cached name-table page (dirty until logged)."""
        key = (PAGE_NAME_TABLE, page_no)
        entry = self._entries.get(key)
        if entry is None:
            entry = CacheEntry(kind=PAGE_NAME_TABLE, page_id=page_no, data=data)
            self._entries[key] = entry
        entry.data = data
        entry.needs_log = True
        self._dirty[key] = entry
        self._touch(entry)

    # ------------------------------------------------------------------
    # leader pages
    # ------------------------------------------------------------------
    def write_leader(self, address: int, data: bytes) -> None:
        """Stage a leader page image (logged at the next commit)."""
        key = (PAGE_LEADER, address)
        entry = self._entries.get(key)
        if entry is None:
            entry = CacheEntry(kind=PAGE_LEADER, page_id=address, data=data)
            self._entries[key] = entry
        entry.data = data
        entry.needs_log = True
        self._dirty[key] = entry
        self._touch(entry)

    def leader_pending_piggyback(self, address: int) -> bytes | None:
        """If this leader's home copy is stale, return the bytes to
        piggyback onto an adjacent data write (paper §5.3: leader pages
        for a create are normally written by piggybacking)."""
        entry = self._entries.get((PAGE_LEADER, address))
        if entry is None:
            return None
        if entry.data != entry.home_image:
            return entry.data
        return None

    def note_leader_home(self, address: int) -> None:
        """The piggybacked write carried the leader home."""
        entry = self._entries.get((PAGE_LEADER, address))
        if entry is not None:
            entry.home_image = entry.data

    def drop_leader(self, address: int) -> None:
        """Forget a leader (its file was deleted before writeback)."""
        self._entries.pop((PAGE_LEADER, address), None)
        self._dirty.pop((PAGE_LEADER, address), None)
        self._lru.pop((PAGE_LEADER, address), None)

    # ------------------------------------------------------------------
    # VAM pages (§5.3 extension, only used when log_vam is enabled)
    # ------------------------------------------------------------------
    def write_vam(self, page_index: int, data: bytes) -> None:
        """Stage a VAM bitmap page image (log_vam mode only)."""
        key = (PAGE_VAM, page_index)
        entry = self._entries.get(key)
        if entry is None:
            entry = CacheEntry(kind=PAGE_VAM, page_id=page_index, data=data)
            self._entries[key] = entry
        entry.data = data
        entry.needs_log = True
        self._dirty[key] = entry
        self._touch(entry)

    # ------------------------------------------------------------------
    # group-commit interface
    # ------------------------------------------------------------------
    def pages_needing_log(self) -> list[LoggedPage]:
        """Everything modified since the last force, ready to batch."""
        out = [
            LoggedPage(kind=entry.kind, page_id=entry.page_id, data=entry.data)
            for entry in self._dirty.values()
        ]
        out.sort(key=lambda page: (page.kind, page.page_id))
        return out

    def note_logged(self, pages: Iterable[LoggedPage], third: int) -> None:
        """Mark pages as carried by a record starting in ``third``."""
        for page in pages:
            entry = self._entries.get((page.kind, page.page_id))
            if entry is None:
                raise CorruptMetadata(
                    f"logged page {(page.kind, page.page_id)} not in cache"
                )
            if entry.data == page.data:
                entry.needs_log = False
                self._dirty.pop((page.kind, page.page_id), None)
            # else: modified again while the force was in progress —
            # it stays dirty for the next commit.
            entry.logged_image = page.data
            entry.last_logged_third = third
        self._evict_if_needed()

    def flush_third(self, third: int) -> None:
        """The paper's writeback: write home every page whose newest
        log copy lives in ``third`` (it is about to be overwritten)."""
        writes_before = self.home_writes
        nt_batch: list[tuple[int, bytes]] = []
        for entry in self._entries.values():
            if entry.last_logged_third != third or not entry.home_stale:
                continue
            assert entry.logged_image is not None
            if entry.kind == PAGE_NAME_TABLE:
                nt_batch.append((entry.page_id, entry.logged_image))
            elif entry.kind == PAGE_VAM:
                if self._vam_writer is None:
                    raise CorruptMetadata("VAM page cached without a writer")
                self._vam_writer(entry.page_id, entry.logged_image)
                self.home_writes += 1
            else:
                self._leader_writer(entry.page_id, entry.logged_image)
                self.home_writes += 1
            entry.home_image = entry.logged_image
        if nt_batch:
            nt_batch.sort()
            self._nt_writer(nt_batch)
            self.home_writes += len(nt_batch)
        self.obs.count(
            "cache.dirty_writebacks", self.home_writes - writes_before
        )
        self._evict_if_needed()

    def flush_all_home(self) -> None:
        """Clean shutdown: every logged image goes home."""
        for third in (0, 1, 2):
            self.flush_third(third)

    def pending_log_pages(self) -> int:
        """Pages modified since the last force (awaiting commit)."""
        return len(self._dirty)

    # ------------------------------------------------------------------
    # crash simulation
    # ------------------------------------------------------------------
    def discard_all(self) -> None:
        """A crash: volatile state vanishes."""
        self._entries.clear()
        self._dirty.clear()
        self._lru.clear()

    def rollback_uncommitted(self) -> int:
        """Degraded-mode switch: abandon every update not yet logged.

        A mutation that died mid-flight (e.g. a B-tree split whose page
        read exhausted the escalation ladder) may have left half its
        pages modified in cache; committing that half later would
        persist exactly the inconsistency logging exists to prevent.
        Pages revert to their last *logged* image (what a crash-restart
        would reconstruct); never-logged fresh pages are dropped.
        Returns the number of pages rolled back.
        """
        rolled_back = 0
        for key, entry in list(self._dirty.items()):
            rolled_back += 1
            if entry.logged_image is None:
                del self._entries[key]
                self._lru.pop(key, None)
            else:
                entry.data = entry.logged_image
                entry.needs_log = False
        self._dirty.clear()
        self.obs.count("cache.rollbacks", rolled_back)
        return rolled_back

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _touch(self, entry: CacheEntry) -> None:
        self._tick += 1
        entry.lru_tick = self._tick
        key = (entry.kind, entry.page_id)
        lru = self._lru
        lru[key] = entry
        lru.move_to_end(key)

    def _evict_if_needed(self) -> None:
        excess = len(self._entries) - self.capacity
        if excess <= 0:
            return
        # Walk the recency order oldest-first, skipping pinned entries
        # (inline evictable predicate: no property dispatch).  This
        # selects exactly the entries a sort by ``lru_tick`` would,
        # without scanning the whole cache on every miss.
        victims = []
        for key, entry in self._lru.items():
            if not entry.needs_log and (
                entry.logged_image is None
                or entry.logged_image == entry.home_image
            ):
                victims.append(key)
                if len(victims) == excess:
                    break
        for key in victims:
            del self._entries[key]
            del self._lru[key]
            self.evictions += 1
            self.obs.count("cache.evictions")

    def __len__(self) -> int:
        return len(self._entries)
