"""FSD — the paper's contribution: a workstation file system whose
metadata is protected by a physical redo log with group commit."""

from repro.core.allocator import AllocatorStats, RunAllocator
from repro.core.cache import CacheEntry, MetadataCache
from repro.core.fsd import FSD, FsdFile, FsdOpCounts
from repro.core.group_commit import CommitCoordinator
from repro.core.layout import RootPage, VolumeLayout, VolumeParams
from repro.core.leader import encode_leader, verify_leader
from repro.core.name_table import FsdNameTable, NameTableHome, NameTablePager
from repro.core.recovery import MountReport, read_root, rebuild_vam, replay_log, write_root
from repro.core.remote import CachingFS, RemoteFileServer
from repro.core.verify import VerifyReport, verify_volume
from repro.core.types import (
    FileKind,
    FileProperties,
    Run,
    RunTable,
    make_uid,
)
from repro.core.vam import VolumeAllocationMap
from repro.core.wal import (
    LogRecord,
    LoggedPage,
    PAGE_LEADER,
    PAGE_NAME_TABLE,
    WriteAheadLog,
    record_sectors,
)

__all__ = [
    "AllocatorStats",
    "CacheEntry",
    "CachingFS",
    "CommitCoordinator",
    "FSD",
    "FileKind",
    "FileProperties",
    "FsdFile",
    "FsdNameTable",
    "FsdOpCounts",
    "LogRecord",
    "LoggedPage",
    "MetadataCache",
    "MountReport",
    "NameTableHome",
    "NameTablePager",
    "PAGE_LEADER",
    "PAGE_NAME_TABLE",
    "RemoteFileServer",
    "RootPage",
    "Run",
    "RunAllocator",
    "RunTable",
    "VerifyReport",
    "VolumeAllocationMap",
    "VolumeLayout",
    "VolumeParams",
    "WriteAheadLog",
    "verify_volume",
    "make_uid",
    "read_root",
    "rebuild_vam",
    "record_sectors",
    "replay_log",
    "write_root",
]
