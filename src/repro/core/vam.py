"""The Volume Allocation Map (paper §5.5).

The VAM is a free-page bitmap kept *entirely in volatile memory*: FSD
"avoids all disk writes during normal operations" for free-page
bookkeeping.  It is saved to disk on a controlled shutdown; on boot it
is either loaded (if properly saved) or reconstructed from the file
name table, which is compact and local enough to process quickly.

Pages of deleted files are not really free until the delete commits,
so they first enter a *shadow bitmap*; when a group commit succeeds,
:meth:`commit_shadow` folds them into the free map.
"""

from __future__ import annotations

from repro.core.layout import VolumeLayout
from repro.core.types import Run
from repro.disk.disk import SimDisk
from repro.disk.sched import as_scheduler
from repro.errors import CorruptMetadata, FsError
from repro.obs import NULL_OBS
from repro.serial import Packer, Unpacker, checksum

_VAM_MAGIC = 0x56414D31  # "VAM1"

_FULL_BYTE = 0xFF


class VolumeAllocationMap:
    """In-memory free-page bitmap with a shadow for uncommitted frees.

    Bit semantics: 1 = allocated (or reserved), 0 = free.
    """

    #: bytes of bitmap per save-area sector (the granularity at which
    #: dirty pages are tracked for VAM logging).
    PAGE_BYTES = 512

    def __init__(self, total_sectors: int):
        self.total_sectors = total_sectors
        self._bits = bytearray(-(-total_sectors // 8))
        #: bitmap pages changed since they were last logged (only
        #: consumed when VAM logging is enabled).
        self._dirty_pages: set[int] = set()
        # Sectors past the end of the disk are permanently "allocated".
        for sector in range(total_sectors, len(self._bits) * 8):
            self._set(sector)
        self.free_count = total_sectors
        self._shadow: list[Run] = []
        #: observability attach point (``FSD.mount`` rebinds it).
        self.obs = NULL_OBS

    # ------------------------------------------------------------------
    # bit plumbing
    # ------------------------------------------------------------------
    def _set(self, sector: int) -> None:
        self._bits[sector >> 3] |= 1 << (sector & 7)
        self._dirty_pages.add((sector >> 3) // self.PAGE_BYTES)

    def _clear(self, sector: int) -> None:
        self._bits[sector >> 3] &= ~(1 << (sector & 7))
        self._dirty_pages.add((sector >> 3) // self.PAGE_BYTES)

    def _is_set(self, sector: int) -> bool:
        return bool(self._bits[sector >> 3] & (1 << (sector & 7)))

    def is_free(self, sector: int) -> bool:
        """True when ``sector`` is unallocated."""
        if not (0 <= sector < self.total_sectors):
            raise FsError(f"sector {sector} outside volume")
        return not self._is_set(sector)

    # ------------------------------------------------------------------
    # allocation bookkeeping
    # ------------------------------------------------------------------
    def _run_segment(self, run: Run) -> tuple[int, int, int, int]:
        """Byte window and bit mask covering ``run`` for whole-extent
        bit surgery: (first_byte, byte_count, segment_value, mask)."""
        first_byte = run.start >> 3
        last_byte = (run.end - 1) >> 3
        byte_count = last_byte - first_byte + 1
        segment = int.from_bytes(
            self._bits[first_byte:first_byte + byte_count], "little"
        )
        mask = ((1 << run.count) - 1) << (run.start - (first_byte << 3))
        return first_byte, byte_count, segment, mask

    def _note_dirty_range(self, first_byte: int, byte_count: int) -> None:
        first_page = first_byte // self.PAGE_BYTES
        last_page = (first_byte + byte_count - 1) // self.PAGE_BYTES
        self._dirty_pages.update(range(first_page, last_page + 1))

    def mark_allocated(self, run: Run) -> None:
        """Claim every sector of ``run`` (double allocation raises)."""
        first_byte, byte_count, segment, mask = self._run_segment(run)
        if segment & mask:
            for sector in range(run.start, run.end):
                if self._is_set(sector):
                    raise CorruptMetadata(
                        f"double allocation of sector {sector}"
                    )
        self._bits[first_byte:first_byte + byte_count] = (
            segment | mask
        ).to_bytes(byte_count, "little")
        self._note_dirty_range(first_byte, byte_count)
        self.free_count -= run.count
        self.obs.count("vam.allocs")
        self.obs.count("vam.sectors_allocated", run.count)
        self.obs.gauge("vam.free_count", self.free_count)

    def mark_free(self, run: Run) -> None:
        """Release every sector of ``run`` (double free raises)."""
        first_byte, byte_count, segment, mask = self._run_segment(run)
        if (segment & mask) != mask:
            for sector in range(run.start, run.end):
                if not self._is_set(sector):
                    raise CorruptMetadata(f"double free of sector {sector}")
        self._bits[first_byte:first_byte + byte_count] = (
            segment & ~mask
        ).to_bytes(byte_count, "little")
        self._note_dirty_range(first_byte, byte_count)
        self.free_count += run.count
        self.obs.count("vam.frees")
        self.obs.count("vam.sectors_freed", run.count)
        self.obs.gauge("vam.free_count", self.free_count)

    def shadow_free(self, run: Run) -> None:
        """Record pages of a deleted file; they become free at commit."""
        self._shadow.append(run)
        self.obs.count("vam.shadow_frees")
        self.obs.gauge("vam.shadow_sectors", self.shadow_sectors)

    def commit_shadow(self) -> None:
        """Apply all shadow-freed runs: the deletes are now committed."""
        shadow, self._shadow = self._shadow, []
        if shadow:
            self.obs.count(
                "vam.shadow_committed_sectors",
                sum(run.count for run in shadow),
            )
        for run in shadow:
            self.mark_free(run)
        self.obs.gauge("vam.shadow_sectors", 0)

    @property
    def shadow_sectors(self) -> int:
        return sum(run.count for run in self._shadow)

    # ------------------------------------------------------------------
    # free-run search
    # ------------------------------------------------------------------
    def find_free_run(
        self, start: int, end: int, want: int, ascending: bool = True
    ) -> Run | None:
        """First free run of up to ``want`` sectors inside [start, end).

        Returns a shorter run when no ``want``-long one begins before
        a longer search would leave the window; returns None when the
        window has no free sector.  Ascending search walks up from
        ``start``; descending walks down from ``end``.
        """
        if want <= 0:
            raise FsError(f"bad allocation size {want}")
        # _is_set inlined in the extension loops: allocation runs this
        # scan for every extent it hands out.
        bits = self._bits
        if ascending:
            sector = self._next_free(start, end, step=1)
            if sector is None:
                return None
            length = 1
            probe = sector + 1
            while (
                length < want
                and probe < end
                and not bits[probe >> 3] & (1 << (probe & 7))
            ):
                length += 1
                probe += 1
            return Run(sector, length)
        sector = self._next_free(end - 1, start - 1, step=-1)
        if sector is None:
            return None
        length = 1
        probe = sector - 1
        while (
            length < want
            and probe >= start
            and not bits[probe >> 3] & (1 << (probe & 7))
        ):
            sector = probe
            length += 1
            probe -= 1
        return Run(sector, length)

    def _next_free(self, start: int, stop: int, step: int) -> int | None:
        """First free sector scanning from ``start`` toward ``stop``
        (exclusive), skipping fully allocated bytes quickly."""
        sector = start
        bits = self._bits
        while (step > 0 and sector < stop) or (step < 0 and sector > stop):
            byte_index = sector >> 3
            byte = bits[byte_index]
            if byte == _FULL_BYTE:
                # Skip the whole byte.
                if step > 0:
                    sector = (byte_index + 1) << 3
                else:
                    sector = (byte_index << 3) - 1
                continue
            if not byte & (1 << (sector & 7)):
                return sector
            sector += step
        return None

    # ------------------------------------------------------------------
    # VAM logging support (§5.3 extension)
    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return -(-len(self._bits) // self.PAGE_BYTES)

    def page_image(self, index: int) -> bytes:
        """One save-area-sector-sized slice of the bitmap."""
        start = index * self.PAGE_BYTES
        return bytes(self._bits[start : start + self.PAGE_BYTES]).ljust(
            self.PAGE_BYTES, b"\xff"
        )

    def take_dirty_pages(self) -> list[tuple[int, bytes]]:
        """Images of every bitmap page changed since the last call."""
        dirty, self._dirty_pages = self._dirty_pages, set()
        return [(index, self.page_image(index)) for index in sorted(dirty)]

    def recount_free(self) -> None:
        """Recompute free_count from the bits (after a logged load)."""
        allocated = sum(bin(byte).count("1") for byte in self._bits)
        padding = len(self._bits) * 8 - self.total_sectors
        self.free_count = self.total_sectors - (allocated - padding)

    # ------------------------------------------------------------------
    # save / load (controlled shutdown and boot)
    # ------------------------------------------------------------------
    def save(self, disk: SimDisk, layout: VolumeLayout, boot_count: int) -> None:
        """Write the bitmap to the VAM save area (one header sector plus
        the raw bitmap), submitted as one batch to the I/O scheduler.

        Under a coalescing policy the adjacent chunks merge into the
        fewest I/Os the coalesce limit allows; the closing barrier
        makes the save durable before the caller marks the root.
        """
        if self._shadow:
            raise FsError("cannot save a VAM with uncommitted shadow frees")
        io = as_scheduler(disk)
        sector_bytes = io.geometry.sector_bytes
        header = Packer(capacity=sector_bytes)
        header.u32(_VAM_MAGIC)
        header.u32(boot_count)
        header.u64(self.free_count)
        header.u32(checksum(bytes(self._bits)))
        io.submit_write(
            layout.vam_start, [header.bytes(pad_to=sector_bytes)]
        )
        payload = bytes(self._bits)
        max_chunk = layout.params.max_io_sectors * sector_bytes
        address = layout.vam_start + 1
        for offset in range(0, len(payload), max_chunk):
            chunk = payload[offset : offset + max_chunk]
            sectors = [
                chunk[i : i + sector_bytes]
                for i in range(0, len(chunk), sector_bytes)
            ]
            io.submit_write(address, sectors)
            address += len(sectors)
        io.barrier()
        # The full image is now home; nothing is pending for logging.
        self._dirty_pages = set()
        self.obs.count("vam.saves")

    def load(
        self,
        disk: SimDisk,
        layout: VolumeLayout,
        expect_boot_count: int,
        logged_mode: bool = False,
    ) -> bool:
        """Try to load a saved VAM; returns False when the save is
        missing, stale, or damaged (caller then reconstructs).

        ``logged_mode`` is the §5.3 extension path: the base image was
        written at mount time and log replay has since overwritten
        individual bitmap pages in place, so the whole-image checksum
        no longer applies — instead the free count is recomputed and
        per-sector damage flags guard integrity.
        """
        io = as_scheduler(disk)
        header_sectors = io.read_maybe(layout.vam_start, 1)
        if header_sectors[0] is None:
            return False
        try:
            reader = Unpacker(header_sectors[0])
            if reader.u32() != _VAM_MAGIC:
                return False
            boot_count = reader.u32()
            free_count = reader.u64()
            expect_sum = reader.u32()
        except CorruptMetadata:
            return False
        if boot_count != expect_boot_count:
            return False
        bitmap_sectors = layout.vam_sectors - 1
        address = layout.vam_start + 1
        payload = bytearray()
        per_io = layout.params.max_io_sectors
        for offset in range(0, bitmap_sectors, per_io):
            count = min(per_io, bitmap_sectors - offset)
            sectors = io.read_maybe(address + offset, count)
            if any(sector is None for sector in sectors):
                return False
            for sector in sectors:
                payload.extend(sector)
        payload = payload[: len(self._bits)]
        if not logged_mode and checksum(bytes(payload)) != expect_sum:
            return False
        self._bits = bytearray(payload)
        self._shadow = []
        self._dirty_pages = set()
        if logged_mode:
            io.clock.advance_cpu(
                io.clock.cpu.entry_interpret_ms * self.page_count
            )
            self.recount_free()
        else:
            self.free_count = free_count
        self.obs.count("vam.loads")
        self.obs.gauge("vam.free_count", self.free_count)
        return True
