"""FSD on-disk volume layout.

The paper's locality principle (§5): "Information that is needed,
generated, recovered, or retrieved together benefits from proximity on
the disk."  The layout therefore clusters all metadata — the log, both
copies of the file name table, and the VAM save area — around the
central cylinder of the volume, minimizing head motion between data
I/O and metadata I/O.

Boot-critical pages are replicated ("two kinds of pages needed in
booting could become bad: they are now replicated"): the volume root
page lives at sector 0 with a copy at the start of cylinder 1, far
enough that no single 1–2-sector fault can take both.

Data sectors are split into a *big-file area* (grows downward from the
metadata toward low addresses) and a *small-file area* (grows upward
from the metadata), the paper's heap/stack analogy; both start near
the central metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Run
from repro.disk.geometry import DiskGeometry
from repro.errors import CorruptMetadata, FsError
from repro.serial import Packer, Unpacker, checksum

_ROOT_MAGIC = 0x46534431  # "FSD1"


@dataclass(frozen=True)
class VolumeParams:
    """Tunable volume parameters, persisted in the root page."""

    nt_pages: int = 4096          # name-table pages per copy (1 sector each)
    log_record_sectors: int = 768  # circular record area (divisible by 3)
    cache_pages: int = 64          # name-table page cache capacity
    commit_interval_ms: float = 500.0  # group commit period (paper: 0.5 s)
    max_io_sectors: int = 120      # largest single data transfer
    big_file_threshold_bytes: int = 64 * 1024
    max_record_pages: int = 36     # logged pages per record (83-sector cap)
    max_file_runs: int = 512       # beyond this the volume is too fragmented
    #: §5.3 extension: also log VAM bitmap pages, trading a little log
    #: traffic for crash recovery without the ~20 s VAM rebuild.  The
    #: paper chose not to build this ("a complicated modification");
    #: we build it behind a flag and measure the trade.
    log_vam: bool = False
    #: ablation knob: keep only ONE home copy of each name-table page,
    #: the "no double write" design alternative §6 discarded.  Cheaper
    #: on cache misses, but a single damaged sector can now lose
    #: metadata — the robustness FSD exists to provide.
    single_nt_copy: bool = False

    def __post_init__(self) -> None:
        if self.log_record_sectors % 3:
            raise ValueError("log record area must divide into thirds")
        if self.nt_pages < 8:
            raise ValueError("name table too small")


@dataclass(frozen=True)
class VolumeLayout:
    """Every fixed disk address of an FSD volume."""

    geometry: DiskGeometry
    params: VolumeParams
    root_a: int
    root_b: int
    log_start: int          # anchor page; records begin at log_start + 3
    log_sectors: int        # 3 anchor/spacer pages + record area
    nt_a_start: int
    nt_b_start: int
    vam_start: int
    vam_sectors: int
    big_area: Run           # allocated descending from big_area.end
    small_area: Run         # allocated ascending from small_area.start

    @classmethod
    def compute(
        cls, geometry: DiskGeometry, params: VolumeParams
    ) -> "VolumeLayout":
        bitmap_sectors = -(-geometry.total_sectors // (8 * geometry.sector_bytes))
        vam_sectors = 1 + bitmap_sectors  # header + bitmap
        log_sectors = 3 + params.log_record_sectors

        meta_needed = log_sectors + 2 * params.nt_pages + vam_sectors
        meta_start = geometry.cylinder_start(geometry.central_cylinder)
        meta_end = meta_start + meta_needed
        data_start = geometry.cylinder_start(2)  # cyls 0–1 are boot region
        if meta_end >= geometry.total_sectors or meta_start <= data_start:
            raise FsError("volume too small for the metadata layout")

        log_start = meta_start
        nt_a_start = log_start + log_sectors
        nt_b_start = nt_a_start + params.nt_pages
        vam_start = nt_b_start + params.nt_pages

        return cls(
            geometry=geometry,
            params=params,
            root_a=0,
            root_b=geometry.cylinder_start(1),
            log_start=log_start,
            log_sectors=log_sectors,
            nt_a_start=nt_a_start,
            nt_b_start=nt_b_start,
            vam_start=vam_start,
            vam_sectors=vam_sectors,
            big_area=Run(data_start, meta_start - data_start),
            small_area=Run(meta_end, geometry.total_sectors - meta_end),
        )

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def nt_page_addresses(self, page_no: int) -> tuple[int, int]:
        """Disk addresses of both copies of name-table page ``page_no``."""
        if not (0 <= page_no < self.params.nt_pages):
            raise FsError(f"name-table page {page_no} out of range")
        return self.nt_a_start + page_no, self.nt_b_start + page_no

    def metadata_runs(self) -> list[Run]:
        """Every sector reserved for metadata (marked used in the VAM)."""
        boot_region = Run(0, self.geometry.cylinder_start(2))
        meta = Run(self.log_start, self.vam_start + self.vam_sectors - self.log_start)
        return [boot_region, meta]

    @property
    def meta_end(self) -> int:
        return self.vam_start + self.vam_sectors


@dataclass
class RootPage:
    """The replicated boot page: volume identity and mount state."""

    params: VolumeParams
    total_sectors: int
    boot_count: int = 0
    vam_saved: bool = False

    def encode(self, sector_bytes: int) -> bytes:
        """Serialize the root page to one checksummed sector."""
        body = Packer()
        body.u32(self.total_sectors)
        body.u32(self.boot_count)
        body.u8(1 if self.vam_saved else 0)
        p = self.params
        body.u32(p.nt_pages)
        body.u32(p.log_record_sectors)
        body.u32(p.cache_pages)
        body.f64(p.commit_interval_ms)
        body.u32(p.max_io_sectors)
        body.u32(p.big_file_threshold_bytes)
        body.u32(p.max_record_pages)
        body.u32(p.max_file_runs)
        body.u8(1 if p.log_vam else 0)
        body.u8(1 if p.single_nt_copy else 0)
        payload = body.bytes()
        out = Packer(capacity=sector_bytes)
        out.u32(_ROOT_MAGIC)
        out.u32(checksum(payload))
        out.u16(len(payload))
        out.raw(payload)
        return out.bytes(pad_to=sector_bytes)

    @classmethod
    def decode(cls, data: bytes) -> "RootPage":
        reader = Unpacker(data)
        if reader.u32() != _ROOT_MAGIC:
            raise CorruptMetadata("bad root page magic")
        expect = reader.u32()
        length = reader.u16()
        payload = reader.raw(length)
        if checksum(payload) != expect:
            raise CorruptMetadata("root page checksum mismatch")
        body = Unpacker(payload)
        total_sectors = body.u32()
        boot_count = body.u32()
        vam_saved = body.u8() == 1
        params = VolumeParams(
            nt_pages=body.u32(),
            log_record_sectors=body.u32(),
            cache_pages=body.u32(),
            commit_interval_ms=body.f64(),
            max_io_sectors=body.u32(),
            big_file_threshold_bytes=body.u32(),
            max_record_pages=body.u32(),
            max_file_runs=body.u32(),
            log_vam=body.u8() == 1,
            single_nt_copy=body.u8() == 1,
        )
        return cls(
            params=params,
            total_sectors=total_sectors,
            boot_count=boot_count,
            vam_saved=vam_saved,
        )
