"""FSD: the reimplemented Cedar file system (the paper's contribution).

The facade ties the pieces together exactly as §4 describes the
fast paths:

* **create** (one-byte file): two free pages from the (in-memory) VAM,
  a name-table update applied to the cached B-tree page, and a single
  synchronous I/O — the combined leader+data write.  The dirtied
  name-table pages are asynchronously logged by group commit.
* **open**: usually no I/O at all; everything is in the name table.
* **delete**: a name-table update plus shadow-bitmap bookkeeping; the
  pages become free when the delete commits.
* **crash recovery**: redo the log, then load or rebuild the VAM.

Every public entry point first fires due timers, which is how the
single-threaded simulation runs the half-second commit daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocator import RunAllocator
from repro.core.cache import MetadataCache
from repro.core.checkpoint import Checkpointer
from repro.core.data_cache import DEFAULT_READAHEAD_PAGES, DataPageCache
from repro.core.group_commit import CommitCoordinator
from repro.core.layout import RootPage, VolumeLayout, VolumeParams
from repro.core.leader import encode_leader, verify_leader
from repro.core.name_table import FsdNameTable, NameTableHome, NameTablePager
from repro.core.recovery import (
    MountReport,
    read_root,
    rebuild_vam,
    replay_log,
    write_root,
)
from repro.core.txn import TxnManager
from repro.core.types import (
    FileKind,
    FileProperties,
    Run,
    RunTable,
    make_uid,
)
from repro.core.vam import VolumeAllocationMap
from repro.core.wal import WriteAheadLog
from repro.disk.disk import SimDisk
from repro.disk.sched import IoScheduler, as_scheduler
from repro.errors import (
    DamagedSectorError,
    DegradedVolumeError,
    FileNotFound,
    FsError,
    NotMounted,
)
from repro.obs import NULL_OBS


@dataclass
class FsdFile:
    """An open-file handle: a snapshot of the name-table entry plus the
    leader-verification state used for piggybacked checking."""

    props: FileProperties
    runs: RunTable
    leader_verified: bool = False

    @property
    def name(self) -> str:
        return self.props.name

    @property
    def version(self) -> int:
        return self.props.version

    @property
    def byte_size(self) -> int:
        return self.props.byte_size


@dataclass
class FsdOpCounts:
    creates: int = 0
    opens: int = 0
    reads: int = 0
    writes: int = 0
    deletes: int = 0
    lists: int = 0
    renames: int = 0
    leader_verifies: int = 0
    leader_piggyback_reads: int = 0
    leader_separate_reads: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class FSD:
    """One mounted FSD volume."""

    DEFAULT_KEEP = 2

    def __init__(
        self,
        disk: SimDisk,
        layout: VolumeLayout,
        root: RootPage,
        wal: WriteAheadLog,
        cache: MetadataCache,
        name_table: FsdNameTable,
        vam: VolumeAllocationMap,
        mount_report: MountReport,
        obs=NULL_OBS,
        io: IoScheduler | None = None,
        nt_home: NameTableHome | None = None,
        data_cache: DataPageCache | None = None,
        checkpoint_interval_ms: float | None = None,
    ):
        self.disk = disk
        self.io = io if io is not None else as_scheduler(disk)
        self.clock = disk.clock
        self.layout = layout
        self.params = layout.params
        self.root = root
        self.boot_count = root.boot_count
        self.wal = wal
        self.cache = cache
        self.name_table = name_table
        self.vam = vam
        self.allocator = RunAllocator(vam, layout)
        self.obs = obs
        self.coordinator = CommitCoordinator(
            self.clock,
            wal,
            cache,
            vam,
            layout.params.commit_interval_ms,
            log_vam=layout.params.log_vam,
            obs=obs,
        )
        #: the transaction brackets every mutating entry point runs
        #: inside (uncontended they are pure counter bookkeeping; the
        #: traffic engine drives the blocking/waking behaviour).
        self.txn = TxnManager(
            self.coordinator,
            capacity_pages=wal.admission_capacity_pages(),
            max_op_pages=layout.params.max_record_pages,
            obs=obs,
        )
        #: optional background checkpointer (mount-time opt-in): keeps
        #: the next log third clean and the anchor advanced so commits
        #: never stall on third-entry write-home.
        self.checkpointer = (
            Checkpointer(
                self.clock,
                wal,
                cache,
                self.io,
                interval_ms=checkpoint_interval_ms,
                obs=obs,
            )
            if checkpoint_interval_ms is not None
            else None
        )
        self.mount_report = mount_report
        self.data_cache = (
            data_cache
            if data_cache is not None
            else DataPageCache(sector_bytes=disk.geometry.sector_bytes)
        )
        self.ops = FsdOpCounts()
        #: geometry is frozen; cache the sector size the data paths
        #: divide by on every read/write.
        self._sector_bytes = disk.geometry.sector_bytes
        self._uid_sequence = 0
        self._mounted = True
        #: non-None once the escalation ladder has been exhausted: the
        #: volume only serves reads until salvaged.
        self.degraded_reason: str | None = None
        #: disk address of the failing read (when known) — carried on
        #: every :class:`DegradedVolumeError` the volume raises.
        self.degraded_site: int | None = None
        self.nt_home = nt_home
        if nt_home is not None:
            nt_home.on_degraded = self._note_degraded
        self.attach_observer(obs)

    def attach_observer(self, obs) -> None:
        """Point every layer of this volume at one observer (pass
        :data:`~repro.obs.NULL_OBS` to detach)."""
        self.obs = obs
        self.io.obs = obs
        self.wal.obs = obs
        self.cache.obs = obs
        self.data_cache.obs = obs
        self.vam.obs = obs
        self.coordinator.obs = obs
        self.txn.obs = obs
        if self.checkpointer is not None:
            self.checkpointer.obs = obs
        self.name_table.tree.pager.obs = obs
        if self.nt_home is not None:
            self.nt_home.obs = obs
        if hasattr(self.disk, "obs"):
            # MirroredDisk carries its own attach point (plain SimDisk
            # does not): the mirror-fallback rung reports through it.
            self.disk.obs = obs

    # ==================================================================
    # lifecycle
    # ==================================================================
    @classmethod
    def format(cls, disk: SimDisk, params: VolumeParams | None = None) -> None:
        """Initialize an FSD volume on ``disk`` (no instance returned;
        call :meth:`mount` afterwards)."""
        params = params or VolumeParams()
        layout = VolumeLayout.compute(disk.geometry, params)
        io = as_scheduler(disk)
        wal = WriteAheadLog(disk, layout, io=io)
        wal.boot_count = 0
        wal.format()

        home = NameTableHome(io, layout)
        cache = MetadataCache(
            capacity_pages=params.cache_pages,
            nt_reader=home.read_page,
            nt_writer=home.write_pages,
            leader_writer=lambda addr, data: io.submit_write(addr, [data]),
        )
        pager = NameTablePager(cache, layout, disk.clock)
        FsdNameTable.format(pager, disk.clock)
        # At format time nothing is committed yet; write the fresh tree
        # straight home instead of logging it.
        pages = cache.pages_needing_log()
        home.write_pages([(p.page_id, p.data) for p in pages])

        vam = VolumeAllocationMap(disk.geometry.total_sectors)
        for run in layout.metadata_runs():
            vam.mark_allocated(run)
        vam.save(io, layout, boot_count=0)

        root = RootPage(
            params=params,
            total_sectors=disk.geometry.total_sectors,
            boot_count=0,
            vam_saved=True,
        )
        write_root(io, layout, root)

    @classmethod
    def mount(
        cls,
        disk: SimDisk,
        params: VolumeParams | None = None,
        obs=None,
        sched: str = "fifo",
        data_cache_pages: int = 0,
        readahead_pages: int = DEFAULT_READAHEAD_PAGES,
        checkpoint_interval_ms: float | None = None,
    ) -> "FSD":
        """Mount (and, if needed, recover) the FSD volume on ``disk``.

        ``params`` only provides the layout hint for locating the root
        page; authoritative parameters come from the root itself.
        ``obs`` attaches an :class:`~repro.obs.Observer` across every
        layer; recovery phases (log scan, redo, VAM load/rebuild) emit
        nested spans under ``fsd.mount``.  ``sched`` selects the I/O
        scheduler policy (``fifo``/``scan``/``deadline``); like the
        data-cache knobs it is a mount-time choice, not a volume
        parameter, so the same volume can be remounted differently.
        ``data_cache_pages`` sizes the data-page buffer cache (0, the
        default, disables it — the bit-compatibility mode);
        ``readahead_pages`` caps the sequential prefetch window.
        ``checkpoint_interval_ms`` enables the background checkpointer
        (:mod:`repro.core.checkpoint`) at that simulated-clock cadence;
        None (the default) keeps the synchronous third-entry writeback
        of the paper — the bit-compatibility mode.
        """
        obs = obs if obs is not None else NULL_OBS
        obs.bind_clock(disk.clock)
        io = as_scheduler(disk, policy=sched, obs=obs)
        start_ms = disk.clock.now_ms
        with obs.span("fsd.mount") as mount_span:
            report = MountReport()
            probe_layout = VolumeLayout.compute(
                disk.geometry, params or VolumeParams()
            )
            root = read_root(io, probe_layout)
            layout = VolumeLayout.compute(disk.geometry, root.params)
            new_boot = root.boot_count + 1
            report.boot_count = new_boot

            wal = WriteAheadLog(disk, layout, io=io)
            wal.boot_count = new_boot
            wal.obs = obs
            replay_log(disk, layout, wal, report, obs=obs)

            home = NameTableHome(io, layout)
            cache = MetadataCache(
                capacity_pages=layout.params.cache_pages,
                nt_reader=home.read_page,
                nt_writer=home.write_pages,
                leader_writer=lambda addr, data: io.submit_write(
                    addr, [data]
                ),
                vam_writer=lambda index, data: io.submit_write(
                    layout.vam_start + 1 + index, [data]
                ),
            )
            cache.obs = obs
            pager = NameTablePager(cache, layout, disk.clock)
            pager.obs = obs
            name_table = FsdNameTable.open(pager, disk.clock)

            vam = VolumeAllocationMap(disk.geometry.total_sectors)
            vam.obs = obs
            vam_loaded = False
            with obs.span("recovery.vam_load") as vam_span:
                if layout.params.log_vam:
                    # §5.3 extension: the save-area base image plus the
                    # VAM pages just replayed from the log *is* the
                    # free map.
                    vam_loaded = vam.load(
                        io, layout, expect_boot_count=root.boot_count,
                        logged_mode=True,
                    )
                if not vam_loaded and root.vam_saved:
                    vam_loaded = vam.load(
                        io, layout, expect_boot_count=root.boot_count
                    )
                vam_span.set(loaded=vam_loaded)
            if not vam_loaded:
                vam = rebuild_vam(disk, layout, name_table, report, obs=obs)
            report.vam_loaded = vam_loaded
            if layout.params.log_vam:
                # Write this boot's base image; subsequent commits log
                # only the changed bitmap pages on top of it.
                vam.save(io, layout, boot_count=new_boot)

            new_root = RootPage(
                params=root.params,
                total_sectors=root.total_sectors,
                boot_count=new_boot,
                vam_saved=False,
            )
            write_root(io, layout, new_root)
            report.total_ms = disk.clock.now_ms - start_ms
            mount_span.set(
                boot=new_boot,
                records_replayed=report.log_records_replayed,
                vam_loaded=vam_loaded,
            )
        obs.count("recovery.mounts")
        fs = cls(
            disk=disk,
            layout=layout,
            root=new_root,
            wal=wal,
            cache=cache,
            name_table=name_table,
            vam=vam,
            mount_report=report,
            obs=obs,
            io=io,
            nt_home=home,
            data_cache=DataPageCache(
                capacity_pages=data_cache_pages,
                readahead_pages=readahead_pages,
                sector_bytes=disk.geometry.sector_bytes,
                obs=obs,
            ),
            checkpoint_interval_ms=checkpoint_interval_ms,
        )
        if report.log_records_lost:
            # Committed records sit beyond a damage hole the scan could
            # not cross: their updates are gone.  Reads of unaffected
            # files still work; mutations would compound the loss.
            fs._note_degraded(
                "committed log records lost to mid-log media damage"
            )
        return fs

    def unmount(self) -> None:
        """Controlled shutdown: commit, write everything home, save the
        VAM, and mark the root clean.

        A degraded volume refuses the *clean* part: marking the root
        clean would vouch for metadata the ladder could not read, so
        the unmount is demoted to a crash and the next mount re-runs
        recovery (or the operator salvages).
        """
        if self.degraded_reason is not None:
            self.crash()
            return
        self._enter()
        self.coordinator.force()
        self.cache.flush_all_home()
        self.wal.checkpoint()
        self.vam.save(self.io, self.layout, self.boot_count)
        self.root = RootPage(
            params=self.root.params,
            total_sectors=self.root.total_sectors,
            boot_count=self.boot_count,
            vam_saved=True,
        )
        write_root(self.io, self.layout, self.root)
        self.coordinator.shutdown()
        if self.checkpointer is not None:
            self.checkpointer.shutdown()
        self.data_cache.discard_all()
        self._mounted = False

    def crash(self) -> None:
        """Simulated crash: all volatile state vanishes; the disk keeps
        whatever it had.  Mount again to recover."""
        self.io.discard()
        self.cache.discard_all()
        self.data_cache.discard_all()
        self.txn.discard_waiters()
        self.coordinator.shutdown()
        if self.checkpointer is not None:
            self.checkpointer.shutdown()
        self._mounted = False

    # ==================================================================
    # public operations
    # ==================================================================
    def create(
        self,
        name: str,
        data: bytes = b"",
        keep: int | None = None,
        kind: FileKind = FileKind.LOCAL,
        remote_target: str = "",
    ) -> FsdFile:
        """Create the next version of ``name`` holding ``data``.

        The paper's one-byte-file script: two free pages from the VAM,
        a cached name-table update, and one combined leader+data write.
        """
        with self.obs.span("fsd.create", name=name, bytes=len(data)):
            self._enter(write=True)
            with self.txn.op():
                self.ops.creates += 1
                self.obs.count("fsd.creates")
                self.coordinator.note_update()
                keep = self.DEFAULT_KEEP if keep is None else keep
                version = (self.name_table.highest_version(name) or 0) + 1
                sector_bytes = self._sector_bytes
                data_sectors = -(-len(data) // sector_bytes)
                big = len(data) >= self.params.big_file_threshold_bytes
                table = self.allocator.allocate(1 + data_sectors, big=big)
                leader_addr, runs = _split_leader(table)

                self._uid_sequence += 1
                props = FileProperties(
                    name=name,
                    version=version,
                    uid=make_uid(self.boot_count, self._uid_sequence),
                    kind=kind,
                    byte_size=len(data),
                    create_time_ms=self.clock.now_ms,
                    last_used_ms=self.clock.now_ms,
                    keep=keep,
                    leader_addr=leader_addr,
                    remote_target=remote_target,
                )
                self.name_table.insert(props, runs)
                self.cache.write_leader(
                    leader_addr, encode_leader(props, runs, sector_bytes)
                )
                handle = FsdFile(props=props, runs=runs, leader_verified=True)
                if data:
                    self._write_data(handle, 0, data)
                else:
                    self._piggyback_leader_alone(handle)
                if keep > 0:
                    self._trim_versions(name, keep)
                return handle

    def open(self, name: str, version: int | None = None) -> FsdFile:
        """Open a file: normally zero disk I/O (paper §5.7)."""
        with self.obs.span("fsd.open", name=name):
            self._enter()
            self.ops.opens += 1
            self.obs.count("fsd.opens")
            props, runs = self._lookup(name, version)
            if props.kind == FileKind.CACHED:
                # The paper's canonical group-commit example: opening a
                # cached remote file updates its last-used-time, a
                # one-page name-table change batched into the next
                # commit.
                with self.txn.op():
                    props = props.with_updates(
                        last_used_ms=self.clock.now_ms
                    )
                    self.name_table.update(props, runs)
                    self.coordinator.note_update()
            return FsdFile(props=props, runs=runs)

    def read(self, handle: FsdFile, offset: int = 0, length: int | None = None) -> bytes:
        """Read file bytes; the first access piggybacks leader
        verification onto the data transfer."""
        props = handle.props
        with self.obs.span("fsd.read", name=props.name):
            self._enter()
            self.ops.reads += 1
            self.obs.count("fsd.reads")
            byte_size = props.byte_size
            if length is None:
                length = byte_size - offset
            if offset < 0 or length < 0 or offset + length > byte_size:
                raise FsError(
                    f"read [{offset}, {offset + length}) outside file of "
                    f"{byte_size} bytes"
                )
            if length == 0:
                self._verify_leader_if_needed(handle, piggyback_extent=None)
                return b""
            sector_bytes = self._sector_bytes
            first_page = offset // sector_bytes
            last_page = (offset + length - 1) // sector_bytes
            page_count = last_page - first_page + 1
            if self.data_cache.capacity > 0:
                chunks = self._read_pages_cached(handle, first_page, page_count)
            else:
                extents = handle.runs.extents_for(first_page, page_count)
                chunks = []
                first = True
                for extent in extents:
                    piggyback = (
                        extent
                        if first and first_page == 0 and not handle.leader_verified
                        else None
                    )
                    chunks.extend(self._read_extent(handle, extent, piggyback))
                    first = False
            if not handle.leader_verified:
                self._verify_leader_if_needed(handle, piggyback_extent=None)
            blob = b"".join(chunks)
            skip = offset - first_page * sector_bytes
            return blob[skip : skip + length]

    def write(self, handle: FsdFile, offset: int, data: bytes) -> None:
        """Write (and possibly extend) an existing file."""
        with self.obs.span("fsd.write", name=handle.props.name, bytes=len(data)):
            self._enter(write=True)
            with self.txn.op():
                self.ops.writes += 1
                self.obs.count("fsd.writes")
                self.coordinator.note_update()
                if offset < 0:
                    raise FsError("negative write offset")
                self._write_data(handle, offset, data)

    def delete(self, name: str, version: int | None = None) -> FileProperties:
        """Delete a file version.  No synchronous I/O: a name-table
        update plus shadow-bitmap bookkeeping (paper §4)."""
        with self.obs.span("fsd.delete", name=name):
            self._enter(write=True)
            with self.txn.op():
                self.ops.deletes += 1
                self.obs.count("fsd.deletes")
                self.coordinator.note_update()
                return self._delete_resolved(name, version)

    def list(self, prefix: str = "") -> list[FileProperties]:
        """Name + properties of every file, straight from the name
        table — the operation Table 3 shows at 3 I/Os per 100 files."""
        with self.obs.span("fsd.list", prefix=prefix):
            self._enter()
            self.ops.lists += 1
            self.obs.count("fsd.lists")
            return list(self.name_table.enumerate_props(prefix))

    def rename(self, old_name: str, new_name: str, version: int | None = None) -> FsdFile:
        """Rename a file version; rewrites its leader (the name checksum
        is part of the mutual check)."""
        with self.obs.span("fsd.rename", name=old_name, to=new_name):
            self._enter(write=True)
            with self.txn.op():
                self.ops.renames += 1
                self.obs.count("fsd.renames")
                self.coordinator.note_update()
                props, runs = self._lookup(old_name, version)
                self.data_cache.invalidate_file(props.uid)
                self.data_cache.invalidate_runs(runs)
                self.name_table.delete(props.name, props.version)
                new_version = (
                    self.name_table.highest_version(new_name) or 0
                ) + 1
                new_props = props.with_updates(
                    name=new_name, version=new_version
                )
                self.name_table.insert(new_props, runs)
                self.cache.write_leader(
                    new_props.leader_addr,
                    encode_leader(
                        new_props, runs, self._sector_bytes
                    ),
                )
                return FsdFile(props=new_props, runs=runs)

    def truncate(self, handle: FsdFile, new_byte_size: int) -> None:
        """Contract a file; freed runs go through the shadow bitmap."""
        with self.obs.span("fsd.truncate", name=handle.props.name):
            self._enter(write=True)
            with self.txn.op():
                self.obs.count("fsd.truncates")
                self.coordinator.note_update()
                if new_byte_size > handle.props.byte_size:
                    raise FsError("truncate cannot grow a file (use write)")
                sector_bytes = self._sector_bytes
                keep_sectors = -(-new_byte_size // sector_bytes)
                freed = handle.runs.truncate_sectors(keep_sectors)
                self.data_cache.invalidate_runs(freed)
                self.data_cache.forget_file(handle.props.uid)
                self.allocator.free(freed, deferred=True)
                handle.props = handle.props.with_updates(
                    byte_size=new_byte_size
                )
                self.name_table.update(handle.props, handle.runs)
                self._refresh_leader(handle)

    def set_keep(self, name: str, keep: int) -> None:
        """Change the version-retention count and trim old versions."""
        self._enter(write=True)
        with self.txn.op():
            props, runs = self._lookup(name, None)
            self.name_table.update(props.with_updates(keep=keep), runs)
            if keep > 0:
                self._trim_versions(name, keep)

    def force(self) -> int:
        """Client-requested commit ("Clients may force the log")."""
        self._enter(write=True)
        return self.coordinator.force()

    def exists(self, name: str, version: int | None = None) -> bool:
        """True when the file (version) exists."""
        self._enter()
        try:
            self._lookup(name, version)
            return True
        except FileNotFound:
            return False

    def versions(self, name: str) -> list[int]:
        """All live versions of ``name``, ascending."""
        self._enter()
        return self.name_table.versions(name)

    # ==================================================================
    # internals
    # ==================================================================
    def _enter(self, write: bool = False) -> None:
        if not self._mounted:
            raise NotMounted("volume is not mounted")
        if write and self.degraded_reason is not None:
            raise DegradedVolumeError(
                self.degraded_reason, fault_site=self.degraded_site
            )
        self.clock.tick()
        self.coordinator.check_pressure()

    def _note_degraded(
        self, reason: str, fault_site: int | None = None
    ) -> None:
        """Final rung of the escalation ladder: go read-only.

        Any mutation in flight is abandoned — its unlogged cache pages
        roll back to their last logged images, so the half-applied
        update can never reach the log or the home copies.
        ``fault_site`` is the disk address whose read exhausted the
        ladder; the write-rejection error keeps reporting it so clients
        see *where* the volume died, not just that it did.
        """
        if self.degraded_reason is not None:
            return
        self.degraded_reason = reason
        self.degraded_site = fault_site
        self.cache.rollback_uncommitted()
        self.obs.count("ladder.degraded_marks")

    @property
    def degraded(self) -> bool:
        return self.degraded_reason is not None

    def _lookup(
        self, name: str, version: int | None
    ) -> tuple[FileProperties, RunTable]:
        if version is None:
            version = self.name_table.highest_version(name)
            if version is None:
                raise FileNotFound(name)
        entry = self.name_table.get(name, version)
        if entry is None:
            raise FileNotFound(f"{name}!{version}")
        return entry

    def _delete_resolved(
        self, name: str, version: int | None
    ) -> FileProperties:
        props, runs = (
            self._lookup(name, version)
            if version is None
            else self.name_table.delete(name, version)
        )
        if version is None:
            self.name_table.delete(props.name, props.version)
        self.allocator.free([Run(props.leader_addr, 1)], deferred=True)
        self.allocator.free(runs, deferred=True)
        self.cache.drop_leader(props.leader_addr)
        # Invalidate by file identity *before* by address: under
        # interleaved clients a stale handle may have extended the file
        # past the run list this delete resolved, and the uid index
        # catches those pages too.
        self.data_cache.invalidate_file(props.uid)
        self.data_cache.invalidate_runs(runs)
        self.data_cache.invalidate(props.leader_addr)
        return props

    def _trim_versions(self, name: str, keep: int) -> None:
        versions = self.name_table.versions(name)
        while len(versions) > keep:
            self._delete_resolved(name, versions.pop(0))

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _ladder_read(
        self, address: int, count: int, cpu_overlap: bool = False
    ) -> list[bytes]:
        """Data-path read with the ladder's retry rung.

        A transient fault costs the retry about one revolution and
        succeeds; persistent damage raises :class:`DamagedSectorError`
        honestly (data pages have no duplicate copy to fall back on —
        that rung only exists for metadata — though a mirrored disk
        recovers transparently below this layer).
        """
        try:
            return self.io.read(address, count, cpu_overlap=cpu_overlap)
        except DamagedSectorError:
            self.obs.count("ladder.retries")
            sectors = self.io.read_maybe(
                address, count, cpu_overlap=cpu_overlap
            )
            for index, sector in enumerate(sectors):
                if sector is None:
                    raise DamagedSectorError(address + index) from None
            self.obs.count("ladder.retry_successes")
            return sectors

    def _write_data(self, handle: FsdFile, offset: int, data: bytes) -> None:
        sector_bytes = self._sector_bytes
        end = offset + len(data)
        if not data:
            return
        self._ensure_capacity(handle, end)
        first_page = offset // sector_bytes
        last_page = (end - 1) // sector_bytes
        page_count = last_page - first_page + 1

        head_pad = offset - first_page * sector_bytes
        tail_len = end - last_page * sector_bytes
        payload = data
        old_size = handle.props.byte_size
        if head_pad:
            payload = self._read_partial(handle, first_page, old_size)[:head_pad] + payload
        if tail_len % sector_bytes and end < old_size:
            tail = self._read_partial(handle, last_page, old_size)
            payload = payload + tail[tail_len:]
        sectors = [
            payload[i : i + sector_bytes]
            for i in range(0, len(payload), sector_bytes)
        ]

        extents = handle.runs.extents_for(first_page, page_count)
        cursor = 0
        first = True
        for extent in extents:
            chunk = sectors[cursor : cursor + extent.count]
            piggyback = first and first_page == 0
            self._write_extent(handle, extent, chunk, piggyback)
            cursor += extent.count
            first = False
        if end > handle.props.byte_size:
            handle.props = handle.props.with_updates(byte_size=end)
            self.name_table.update(handle.props, handle.runs)
            # Keep the leader's recorded byte size current even when no
            # run changed: the salvager recovers orphan files (name
            # table lost) at exactly the length the leader remembers.
            self._refresh_leader(handle)

    def _ensure_capacity(self, handle: FsdFile, byte_size: int) -> None:
        sector_bytes = self._sector_bytes
        have = handle.runs.total_sectors
        need = -(-byte_size // sector_bytes)
        if need <= have:
            return
        big = byte_size >= self.params.big_file_threshold_bytes
        extra = self.allocator.allocate(need - have, big=big)
        for run in extra.runs:
            handle.runs.append(run)
        self.name_table.update(handle.props, handle.runs)
        self._refresh_leader(handle)

    def _read_partial(
        self, handle: FsdFile, page: int, old_size: int
    ) -> bytes:
        """Read one existing sector for a read-modify-write boundary."""
        sector_bytes = self._sector_bytes
        if page * sector_bytes >= old_size:
            return b"\x00" * sector_bytes
        address = handle.runs.sector_of_page(page)
        cached = self.data_cache.lookup(address)
        if cached is not None:
            return cached
        data = self._ladder_read(address, 1)[0]
        self.data_cache.put(address, data, uid=handle.props.uid)
        return data

    def _write_extent(
        self,
        handle: FsdFile,
        extent: Run,
        sectors: list[bytes],
        allow_piggyback: bool,
    ) -> None:
        """Write one extent in max_io_sectors chunks, piggybacking the
        pending leader write when the extent directly follows it."""
        max_io = self.params.max_io_sectors
        leader_addr = handle.props.leader_addr
        start = extent.start
        cursor = 0
        if (
            allow_piggyback
            and start == leader_addr + 1
        ):
            pending = self.cache.leader_pending_piggyback(leader_addr)
            if pending is not None:
                chunk = sectors[: max_io - 1]
                self.io.write(
                    leader_addr, [pending, *chunk], cpu_overlap=True
                )
                self.cache.note_leader_home(leader_addr)
                self._populate_cache(start, chunk, handle.props.uid)
                cursor = len(chunk)
        while cursor < len(sectors):
            chunk = sectors[cursor : cursor + max_io]
            self.io.write(start + cursor, chunk, cpu_overlap=True)
            self._populate_cache(start + cursor, chunk, handle.props.uid)
            cursor += len(chunk)

    def _populate_cache(
        self, address: int, sectors: list[bytes], uid: int | None = None
    ) -> None:
        """Write-through population: the platter copy just written is
        also the freshest cacheable image."""
        if self.data_cache.capacity > 0:
            for offset, sector in enumerate(sectors):
                self.data_cache.put(address + offset, sector, uid=uid)

    def _read_pages_cached(
        self, handle: FsdFile, first_page: int, page_count: int
    ) -> list[bytes]:
        """The cached read path: serve hits from the data cache, then
        batch the misses — plus any sequential read-ahead — into
        scheduler-merged transfers (one rotational wait per contiguous
        span instead of one per extent)."""
        dc = self.data_cache
        addresses: list[int] = []
        for extent in handle.runs.extents_for(first_page, page_count):
            addresses.extend(range(extent.start, extent.end))
        position_of = {
            address: position for position, address in enumerate(addresses)
        }
        out: dict[int, bytes] = {}
        requests: list[list[int]] = []
        for position, address in enumerate(addresses):
            data = dc.lookup(address)
            if data is not None:
                out[position] = data
            elif requests and requests[-1][0] + requests[-1][1] == address:
                requests[-1][1] += 1
            else:
                requests.append([address, 1])

        ra: tuple[int, int] | None = None
        if dc.note_read(handle.props.uid, first_page, page_count):
            ra = self._plan_readahead(handle, first_page + page_count)
        if ra is not None:
            requests.append(list(ra))
        ra_addresses = (
            set(range(ra[0], ra[0] + ra[1])) if ra is not None else set()
        )

        # Paper §5.7: piggyback the leader check onto the first data
        # transfer when the data run directly follows an unverified,
        # uncached leader (the cached-mode twin of _read_extent's).
        leader_addr = handle.props.leader_addr
        if (
            not handle.leader_verified
            and first_page == 0
            and requests
            and requests[0][0] == leader_addr + 1
            and self.cache.leader_pending_piggyback(leader_addr) is None
        ):
            requests[0] = [leader_addr, requests[0][1] + 1]

        segments = self.io.merge_reads(
            [(address, count) for address, count in requests],
            limit=self.params.max_io_sectors,
        )
        for address, count in segments:
            try:
                sectors = self._ladder_read(address, count, cpu_overlap=True)
            except DamagedSectorError:
                # Read-ahead must never turn a good read into a
                # failure: drop the prefetch and retry only the spans
                # the client demanded (those raise honestly).
                self.obs.count("cache.data.readahead_aborted")
                for sub_address, sub_count in _spans(
                    a for a in range(address, address + count)
                    if a not in ra_addresses
                ):
                    self._consume_read(
                        handle,
                        sub_address,
                        self._ladder_read(
                            sub_address, sub_count, cpu_overlap=True
                        ),
                        position_of,
                        out,
                        ra_addresses,
                    )
                continue
            self._consume_read(
                handle, address, sectors, position_of, out, ra_addresses
            )
        return [out[position] for position in range(len(addresses))]

    def _consume_read(
        self,
        handle: FsdFile,
        start: int,
        sectors: list[bytes],
        position_of: dict[int, int],
        out: dict[int, bytes],
        ra_addresses: set[int],
    ) -> None:
        """File one transfer's sectors into the cache and the result."""
        for offset, data in enumerate(sectors):
            address = start + offset
            if address == handle.props.leader_addr:
                self._check_leader_bytes(handle, data)
                self.ops.leader_piggyback_reads += 1
                continue
            position = position_of.get(address)
            self.data_cache.put(
                address,
                data,
                prefetched=position is None and address in ra_addresses,
                uid=handle.props.uid,
            )
            if position is not None:
                out[position] = data

    def _plan_readahead(
        self, handle: FsdFile, next_page: int
    ) -> tuple[int, int] | None:
        """The prefetch plan once a file reads sequentially: the
        remainder of the current disk run after ``next_page - 1``,
        capped by ``readahead_pages``, stopping at end-of-file or at
        the first sector already cached."""
        dc = self.data_cache
        sector_bytes = self._sector_bytes
        file_pages = -(-handle.props.byte_size // sector_bytes)
        if dc.readahead_pages <= 0 or not (0 < next_page < file_pages):
            return None
        prev_addr = handle.runs.sector_of_page(next_page - 1)
        run = next(r for r in handle.runs.runs if prev_addr in r)
        limit = min(
            dc.readahead_pages,
            file_pages - next_page,
            run.end - prev_addr - 1,
        )
        count = 0
        while count < limit and not dc.contains(prev_addr + 1 + count):
            count += 1
        return (prev_addr + 1, count) if count else None

    def _read_extent(
        self, handle: FsdFile, extent: Run, piggyback: Run | None
    ) -> list[bytes]:
        """Read one extent in chunks; when ``piggyback`` is the first
        extent of an unverified file, prepend the leader to the first
        chunk and verify it (paper §5.7)."""
        max_io = self.params.max_io_sectors
        out: list[bytes] = []
        start = extent.start
        remaining = extent.count
        if (
            piggyback is not None
            and start == handle.props.leader_addr + 1
            and self.cache.leader_pending_piggyback(handle.props.leader_addr)
            is None
        ):
            count = min(remaining, max_io - 1)
            sectors = self._ladder_read(
                handle.props.leader_addr, count + 1, cpu_overlap=True
            )
            self._check_leader_bytes(handle, sectors[0])
            self.ops.leader_piggyback_reads += 1
            out.extend(sectors[1:])
            start += count
            remaining -= count
        elif piggyback is not None:
            # Leader is cached (e.g. just created/extended): verify the
            # in-memory copy, no extra I/O.
            self._verify_leader_if_needed(handle, piggyback_extent=None)
        while remaining > 0:
            count = remaining if remaining < max_io else max_io
            out.extend(self._ladder_read(start, count, cpu_overlap=True))
            start += count
            remaining -= count
        return out

    # ------------------------------------------------------------------
    # leader handling
    # ------------------------------------------------------------------
    def _refresh_leader(self, handle: FsdFile) -> None:
        """The run table changed: rebuild the leader so the mutual
        check stays valid; logged like any other metadata change."""
        self.cache.write_leader(
            handle.props.leader_addr,
            encode_leader(
                handle.props, handle.runs, self._sector_bytes
            ),
        )
        handle.leader_verified = True

    def _piggyback_leader_alone(self, handle: FsdFile) -> None:
        """A zero-byte create has no data write to piggyback on; the
        leader simply stays cached until the logging code writes it
        during entry into its third (paper §5.3)."""

    def _verify_leader_if_needed(
        self, handle: FsdFile, piggyback_extent: Run | None
    ) -> None:
        if handle.leader_verified:
            return
        address = handle.props.leader_addr
        cached = self.cache.leader_pending_piggyback(address)
        if cached is not None:
            data = cached
        else:
            data = self._ladder_read(address, 1)[0]
            self.ops.leader_separate_reads += 1
        self._check_leader_bytes(handle, data)

    def _check_leader_bytes(self, handle: FsdFile, data: bytes) -> None:
        verify_leader(data, handle.props, handle.runs)
        handle.leader_verified = True
        self.ops.leader_verifies += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def mounted(self) -> bool:
        return self._mounted

    def metadata_io_stats(self) -> dict[str, int]:
        """Counters for the logging/commit machinery (benchmark aid)."""
        return {
            "log_records": self.wal.records_written,
            "log_sectors": self.wal.sectors_logged,
            "pages_logged": self.wal.pages_logged,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "home_writes": self.cache.home_writes,
            "forces": self.coordinator.forces,
        }


def _spans(addresses) -> list[tuple[int, int]]:
    """Group ascending addresses into contiguous (start, count) spans."""
    out: list[list[int]] = []
    for address in addresses:
        if out and out[-1][0] + out[-1][1] == address:
            out[-1][1] += 1
        else:
            out.append([address, 1])
    return [(start, count) for start, count in out]


def _split_leader(table: RunTable) -> tuple[int, RunTable]:
    """Split an allocation into (leader sector, data run table): the
    leader is the first allocated sector; data pages follow."""
    first = table.runs[0]
    leader_addr = first.start
    runs = RunTable()
    if first.count > 1:
        runs.append(Run(first.start + 1, first.count - 1))
    for run in table.runs[1:]:
        runs.append(run)
    return leader_addr, runs
