"""Group commit (paper §5.4).

"A set of updates are grouped together in one log write to amortize
the cost of the log write disk I/O over several updates...  FSD forces
its log twice a second."  The coordinator owns the group-commit
*deadline*: the first update after a force must be durable within one
commit interval, and the half-second timer is the alarm that fires at
that deadline.  A force batches every page dirtied since the last one
into as few log records as possible, submits them to the volume's I/O
scheduler stamped with the deadline they must meet (the deadline
policy dispatches them ahead of opportunistic writebacks), and ends
with a scheduler barrier — the durability point.  Because pages freed
by a delete are not really free until the delete commits, the shadow
bitmap is applied to the VAM only after that barrier.
"""

from __future__ import annotations

from typing import Callable

from repro.core.cache import MetadataCache
from repro.core.vam import VolumeAllocationMap
from repro.core.wal import WriteAheadLog
from repro.disk.clock import SimClock
from repro.obs import NULL_OBS

#: histogram bounds for pages per force and updates absorbed per force.
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
#: histogram bounds for simulated force latency (one log write).
FORCE_MS_BUCKETS = (2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0)
#: histogram bounds for update-to-durable latency: how long each
#: metadata update waited for the force that committed it (the
#: paper's half-second group-commit window dominates the tail).
DURABLE_MS_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                      500.0, 1000.0)


class CommitCoordinator:
    """Owns the group-commit policy for one mounted FSD volume."""

    def __init__(
        self,
        clock: SimClock,
        wal: WriteAheadLog,
        cache: MetadataCache,
        vam: VolumeAllocationMap,
        interval_ms: float,
        log_vam: bool = False,
        obs=NULL_OBS,
    ):
        self.clock = clock
        self.wal = wal
        self.cache = cache
        self.vam = vam
        self.interval_ms = interval_ms
        self.log_vam = log_vam
        self.obs = obs
        #: the shared I/O scheduler (the WAL's); force() barriers it.
        self.io = wal.io
        #: force early once this many pages await logging — "the log is
        #: forced long before [an oversized entry] should occur" (§5.3).
        self.pressure_pages = 2 * wal.layout.params.max_record_pages
        self.forces = 0
        self.pressure_forces = 0
        self.empty_forces = 0
        #: forces that could not run because operations were inside
        #: their brackets; the last end_op runs them instead.
        self.deferred_forces = 0
        #: client updates since the last force — each force "absorbs"
        #: this many commits into one log write (paper §5.4).
        self.updates_since_force = 0
        #: lifetime sum of absorbed updates (batching-factor numerator).
        self.updates_absorbed = 0
        #: issue time of each unforced update, for durable latency.
        self._update_times: list[float] = []
        #: the volume's TxnManager, when transaction brackets are
        #: active (set by TxnManager.__init__); None keeps the
        #: pre-bracket behaviour: every force runs immediately.
        self.txn = None
        self._forcing = False
        self.last_force_ms = clock.now_ms
        #: when the oldest unforced update must be durable (the
        #: group-commit deadline the submitted log writes carry).
        self.deadline_ms = clock.now_ms + interval_ms
        wal.flush_third = cache.flush_third
        self._timer = clock.add_timer(
            interval_ms, self._on_timer, name="group-commit"
        )
        self._commit_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # the commit itself
    # ------------------------------------------------------------------
    def force(self) -> int:
        """Write every pending update to the log; returns sectors logged.

        Clients may call this directly ("Clients may force the log");
        otherwise the timer does, twice a (virtual) second.

        With transaction brackets active, a force that arrives while
        client operations are outstanding (or while another force is
        already committing — a second client arriving mid-force) does
        not run: it is *deferred*, new admissions stop, and the last
        ``end_op`` of the drain commits on behalf of every waiting
        client.  A re-entrant call from a commit hook is likewise
        absorbed by the force already in progress.
        """
        txn = self.txn
        if txn is not None and not txn.can_commit():
            txn.request_commit()
            self.deferred_forces += 1
            self.obs.count("commit.deferred_forces")
            return 0
        if self._forcing:
            # Re-entrant force (a commit hook, or a second caller
            # arriving during the commit): the enclosing force IS the
            # commit in progress; running another would double-apply
            # the shadow bitmap.
            self.obs.count("commit.reentrant_forces")
            return 0
        self._forcing = True
        if txn is not None:
            txn.committing = True
        try:
            written = self._commit()
        finally:
            self._forcing = False
            if txn is not None:
                txn.committing = False
        if txn is not None:
            # Wake parked clients only after `committing` has cleared,
            # so a woken client may immediately retry begin_op.
            txn.after_force(self.clock.now_ms)
        return written

    def _commit(self) -> int:
        """The commit itself (admission already settled by force())."""
        obs = self.obs
        recorder = getattr(obs, "attribution", None)
        if recorder is not None:
            recorder.force_begin(self.clock.now_ms)
        with obs.span("commit.force") as span:
            if self.log_vam:
                # §5.3 extension: changed VAM bitmap pages join the batch.
                # Allocation bits for this batch's creates are already set,
                # so they commit atomically with the name-table updates;
                # frees applied after the commit ride the *next* record
                # (a crash can only leak, never double-allocate).
                for index, image in self.vam.take_dirty_pages():
                    self.cache.write_vam(index, image)
            pages = self.cache.pages_needing_log()
            deadline = self.deadline_ms
            self.last_force_ms = self.clock.now_ms
            self.deadline_ms = self.clock.now_ms + self.interval_ms
            absorbed, self.updates_since_force = self.updates_since_force, 0
            self.updates_absorbed += absorbed
            update_times, self._update_times = self._update_times, []
            if not pages:
                self.empty_forces += 1
                obs.count("commit.empty_forces")
                span.set(pages=0)
                self._note_durable(update_times)
                if recorder is not None:
                    recorder.force_logged(self.clock.now_ms)
                self._after_commit()
                if recorder is not None:
                    recorder.force_done(self.clock.now_ms)
                return 0
            self.forces += 1
            obs.count("commit.forces")
            obs.observe("commit.batch_pages", len(pages), bounds=BATCH_BUCKETS)
            obs.observe("commit.ops_absorbed", absorbed, bounds=BATCH_BUCKETS)
            start_ms = self.clock.now_ms
            written = 0
            records = 0
            for record_number, third, record_pages in self.wal.append_records(
                pages, deadline_ms=deadline
            ):
                self.cache.note_logged(record_pages, third)
                written += len(record_pages)
                records += 1
            # Durability point: every record of this commit is on the
            # platter before the updates it carries become final.
            self.io.barrier()
            if recorder is not None:
                recorder.force_logged(self.clock.now_ms)
            obs.observe(
                "commit.force_ms",
                self.clock.now_ms - start_ms,
                bounds=FORCE_MS_BUCKETS,
            )
            span.set(pages=written, records=records, absorbed=absorbed)
            self._note_durable(update_times)
            self._after_commit()
            if recorder is not None:
                recorder.force_done(self.clock.now_ms)
            return written

    def note_update(self) -> None:
        """An FSD entry point performed a metadata update; the next
        force will report it as absorbed by that commit."""
        if self.updates_since_force == 0:
            # First update of the batch starts the commit-deadline
            # countdown (never later than the periodic force).
            self.deadline_ms = min(
                self.deadline_ms, self.clock.now_ms + self.interval_ms
            )
        self.updates_since_force += 1
        if self.obs.enabled:
            self._update_times.append(self.clock.now_ms)

    def _note_durable(self, update_times: list[float]) -> None:
        """Record how long each absorbed update waited to be durable
        (the per-client commit latency the traffic engine reports)."""
        if not update_times:
            return
        end_ms = self.clock.now_ms
        for issued_ms in update_times:
            self.obs.observe(
                "commit.durable_latency_ms",
                end_ms - issued_ms,
                bounds=DURABLE_MS_BUCKETS,
            )

    def _after_commit(self) -> None:
        # Deletes become final: shadow-freed pages join the VAM.
        self.clock.advance_cpu(
            self.clock.cpu.vam_bit_ms * self.vam.shadow_sectors
        )
        self.vam.commit_shadow()
        for hook in self._commit_hooks:
            hook()

    def add_commit_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every commit (used by tests and by the
        last-used-time bookkeeping for cached remote files)."""
        self._commit_hooks.append(hook)

    def check_pressure(self) -> bool:
        """Force early when too many pages are waiting (called from the
        file system's entry points); returns True if a force ran."""
        # pending_log_pages() inlined: this guard runs on every file
        # system entry point.
        if len(self.cache._dirty) >= self.pressure_pages:
            self.pressure_forces += 1
            self.obs.count("commit.pressure_forces")
            self.force()
            return True
        return False

    # ------------------------------------------------------------------
    # timer plumbing
    # ------------------------------------------------------------------
    def _on_timer(self, _clock: SimClock) -> None:
        self.obs.count("commit.timer_forces")
        self.force()

    def shutdown(self) -> None:
        """Stop the commit daemon (unmount/crash)."""
        self.clock.remove_timer(self._timer)
