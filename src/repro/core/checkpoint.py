"""Background checkpointer: decouple log install from commit.

The paper's third-entry protocol does its writeback *synchronously*:
when appending is about to enter a new third, ``_enter_third`` writes
home every page whose newest log copy lives in that third before any
more records can be written — so a commit that happens to cross a
third boundary stalls behind a burst of home writes (visible as
``wal.stall_ms``).

The checkpointer moves that work off the commit path.  A periodic
timer on the *simulated* clock (the same mechanism as the group-commit
daemon) installs every logged-but-not-yet-home page image and then
advances the log anchor to the current append position — a classic
fuzzy checkpoint:

* by the time the appender enters the next third, its pages are
  already home and the anchor has already moved past it, so
  ``_enter_third`` finds nothing to do and commits never block on
  write-home (steady-state ``wal.stall_ms`` stays 0);
* the anchor *is* the checkpoint LSN: recovery scans forward from it,
  so redo replays only records newer than the last checkpoint and
  recovery time stays flat no matter how much history the log has
  absorbed (per-page incremental REDO — the replay coalesces to the
  newest image per page within that bounded window).

Ordering stays sound without new machinery: the anchor advance is a
synchronous write, which the scheduler treats as a full barrier — the
checkpoint's home writes are durable before the anchor abandons the
log records that cover them.  A crash between the home writes and the
anchor write merely replays those records again; redo is idempotent
(the ``mid_checkpoint`` crashcheck scenario exercises exactly this
window).

Home writes are submitted in *background* mode: under the queueing
policies they yield to any foreground (deadline-carrying) write in the
same flush, so a checkpoint burst cannot delay a log force.

The checkpointer is a mount-time option (``FSD.mount(...,
checkpoint_interval_ms=...)``), off by default: its background I/O
changes simulated timing, so the default mount stays bit-compatible
with the synchronous protocol.
"""

from __future__ import annotations

from repro.obs import NULL_OBS

#: default checkpoint cadence: every two seconds of simulated time
#: (four group-commit intervals) — frequent enough that the appender
#: never laps a full log third between ticks at realistic load.
DEFAULT_CHECKPOINT_INTERVAL_MS = 2000.0


class Checkpointer:
    """Periodic fuzzy checkpoint for one mounted FSD volume."""

    def __init__(
        self,
        clock,
        wal,
        cache,
        io,
        interval_ms: float = DEFAULT_CHECKPOINT_INTERVAL_MS,
        obs=NULL_OBS,
    ):
        self.clock = clock
        self.wal = wal
        self.cache = cache
        self.io = io
        self.interval_ms = interval_ms
        self.obs = obs
        self.ticks = 0
        self.pages_written = 0
        self.anchor_advances = 0
        self._timer = clock.add_timer(
            interval_ms, self._on_timer, name="checkpointer"
        )

    def _on_timer(self, _clock) -> None:
        self.tick()

    def tick(self) -> int:
        """Run one checkpoint; returns the pages written home.

        Idle volumes pay nothing: when the anchor already sits at the
        append position there is nothing logged since the last
        checkpoint, and the tick is a pure counter bump.
        """
        wal, cache = self.wal, self.cache
        self.ticks += 1
        self.obs.count("ckpt.ticks")
        if (
            wal.anchor_offset == wal.write_offset
            and wal.anchor_record_number == wal.next_record_number
        ):
            return 0
        before = cache.home_writes
        self.io.background_mode = True
        try:
            # Install every logged image (the *logged* image, never a
            # newer uncommitted one — same rule as the synchronous
            # writeback), then advance the anchor.  The anchor write is
            # synchronous, so it barriers the home writes it vouches for.
            cache.flush_all_home()
        finally:
            self.io.background_mode = False
        wal.checkpoint()
        written = cache.home_writes - before
        self.pages_written += written
        self.anchor_advances += 1
        if written:
            self.obs.count("ckpt.pages_written", written)
        self.obs.count("ckpt.anchor_advances")
        self.obs.gauge("ckpt.lsn", wal.anchor_record_number)
        return written

    def shutdown(self) -> None:
        """Deregister the timer (unmount/crash)."""
        self.clock.remove_timer(self._timer)
