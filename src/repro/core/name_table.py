"""FSD's file name table (paper §5.1).

A B-tree keyed by (name, version) whose entries hold *everything* FSD
knows about a file — uid, properties, and the run table, which CFS
kept in per-file header pages.  "There is no need for a disk read for
the properties since they are already available in the file name
table."

Robustness: "the file name table is written twice: every page is
written on two different sectors with independent failure modes...
When a page is read, both copies are read and checked."  The two
copies live in two separate extents near the central cylinder.
"""

from __future__ import annotations

from typing import Iterator

from repro.btree import BTree
from repro.core.cache import MetadataCache, _NullCounter
from repro.core.wal import PAGE_NAME_TABLE
from repro.core.layout import VolumeLayout
from repro.core import types
from repro.core.types import (
    MAX_INLINE_RUNS,
    MAX_RUNS_PER_CHUNK,
    FileProperties,
    RunTable,
    decode_continuation,
    decode_key,
    decode_main_entry,
    encode_continuation,
    encode_key,
    encode_main_entry,
    name_prefix,
)
from repro.disk.clock import SimClock
from repro.disk.disk import SimDisk
from repro.disk.sched import as_scheduler
from repro.errors import (
    CorruptMetadata,
    DegradedVolumeError,
    FileNotFound,
    VolumeFull,
)
from repro.obs import NULL_OBS


class NameTableHome:
    """The double-written home copies of the name table on disk.

    With ``VolumeParams.single_nt_copy`` (the §6 "no double write"
    ablation) only copy A exists: reads cost one I/O, writes one, and
    a damaged sector is unrecoverable — exactly the trade the paper's
    model weighed and rejected.

    Reads climb the escalation ladder: a failed sector read is retried
    once (a transient fault costs about a revolution and succeeds), a
    single dead copy is rebuilt from its twin, and only when *both*
    copies are genuinely gone does the read raise
    :class:`DegradedVolumeError` — after telling the volume, via
    ``on_degraded``, to stop accepting mutations.
    """

    def __init__(self, disk: SimDisk, layout: VolumeLayout):
        #: home-copy I/O goes through the volume's shared scheduler (a
        #: raw disk gets a pass-through fifo wrapper).
        self.io = as_scheduler(disk)
        self.layout = layout
        self.single_copy = layout.params.single_nt_copy
        self.repairs = 0
        self.retries = 0
        #: called with a reason string when a read exhausts the ladder
        #: (``FSD.mount`` points this at the volume's degraded switch).
        self.on_degraded = None
        #: observability attach point (``FSD.mount`` rebinds it).
        self.obs = NULL_OBS

    def _read_copy(self, address: int) -> bytes | None:
        """One ladder-aware sector read: retry a failed read once.

        The retry is a real second I/O — the platter has moved on, so
        it naturally costs about one revolution of simulated time.
        """
        data = self.io.read_maybe(address, 1)[0]
        if data is not None:
            return data
        self.retries += 1
        self.obs.count("ladder.retries")
        data = self.io.read_maybe(address, 1)[0]
        if data is not None:
            self.obs.count("ladder.retry_successes")
        return data

    def _degrade(
        self, reason: str, fault_site: int | None = None
    ) -> DegradedVolumeError:
        self.obs.count("ladder.nt_read_failures")
        if self.on_degraded is not None:
            self.on_degraded(reason, fault_site)
        return DegradedVolumeError(reason, fault_site=fault_site)

    def read_page(self, page_no: int) -> bytes:
        """Read both copies and cross-check (the paper's double read).

        One damaged copy is corrected from the other and repaired in
        place; two differing healthy copies mean corruption beyond the
        failure model (e.g. a wild write) and degrade the volume, as
        does the loss of both copies.
        """
        addr_a, addr_b = self.layout.nt_page_addresses(page_no)
        if self.single_copy:
            data = self._read_copy(addr_a)
            if data is None:
                raise self._degrade(
                    f"name-table page {page_no} damaged and unreplicated",
                    fault_site=addr_a,
                )
            return data
        copy_a = self._read_copy(addr_a)
        copy_b = self._read_copy(addr_b)
        if copy_a is not None and copy_b is not None:
            if copy_a != copy_b:
                raise self._degrade(
                    f"name-table page {page_no}: copies differ",
                    fault_site=addr_a,
                )
            return copy_a
        survivor = copy_a if copy_a is not None else copy_b
        if survivor is None:
            raise self._degrade(
                f"name-table page {page_no}: both copies damaged",
                fault_site=addr_a,
            )
        bad_addr = addr_a if copy_a is None else addr_b
        self.io.write(bad_addr, [survivor])
        self.repairs += 1
        self.obs.count("ladder.copy_repairs")
        return survivor

    def write_pages(self, pages: list[tuple[int, bytes]]) -> None:
        """Write pages home, to both copies, batching contiguous page
        numbers into single multi-sector I/Os per copy.

        The per-copy writes are *submitted*, not dispatched: under the
        elevator policies all A-copy groups land in one arm sweep and
        all B-copy groups in the next, instead of ping-ponging between
        the two extents once per group.  Callers with an ordering
        obligation (the WAL anchor advance, recovery) barrier the
        scheduler afterwards."""
        for group in _contiguous_groups(pages):
            first_page = group[0][0]
            sectors = [data for _, data in group]
            addr_a, addr_b = self.layout.nt_page_addresses(first_page)
            self.io.submit_write(addr_a, sectors)
            if not self.single_copy:
                self.io.submit_write(addr_b, sectors)


def _contiguous_groups(
    pages: list[tuple[int, bytes]]
) -> Iterator[list[tuple[int, bytes]]]:
    group: list[tuple[int, bytes]] = []
    for page_no, data in sorted(pages):
        if group and page_no != group[-1][0] + 1:
            yield group
            group = []
        group.append((page_no, data))
    if group:
        yield group


class NameTablePager:
    """B-tree pager over the metadata cache.

    Page allocation within the preallocated name-table extent uses a
    bitmap stored in the first pages of the table itself, so it is
    logged and recovered exactly like every other name-table page.
    """

    #: pages reserved at the front: page 0 is the B-tree meta page,
    #: pages 1..bitmap_pages hold the allocation bitmap.
    def __init__(
        self,
        cache: MetadataCache,
        layout: VolumeLayout,
        clock: SimClock,
    ):
        self.cache = cache
        self.layout = layout
        self.clock = clock
        #: the fixed per-node CPU charge (CpuCostModel is frozen).
        self._node_ms = clock.cpu.btree_node_ms
        self.page_size = layout.geometry.sector_bytes
        self.nt_pages = layout.params.nt_pages
        self.bitmap_pages = -(-self.nt_pages // (8 * self.page_size))
        self._alloc_cursor = 1 + self.bitmap_pages
        #: observability attach point (``FSD.mount`` rebinds it).
        self.obs = NULL_OBS

    @property
    def obs(self):
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        # Rebinding the observer invalidates any bound counter handle.
        self._obs = value
        self._read_counter = None
        self._write_counter = None

    # -- Pager protocol -------------------------------------------------
    def read(self, page_no: int) -> bytes:
        """B-tree pager read: one cached name-table page."""
        clock = self.clock
        # advance_cpu inlined: btree_node_ms is a fixed positive cost
        # and this is the hottest clock charge in the metadata path.
        ms = self._node_ms
        clock.now_ms += ms
        clock.cpu_busy_ms += ms
        counter = self._read_counter
        if counter is not None:
            counter.value += 1
        else:
            # First read creates the counter through the normal path,
            # then binds the handle (a throwaway slot when detached)
            # for every later read.
            obs = self._obs
            obs.count("btree.page_reads")
            if obs.enabled:
                self._read_counter = obs.metrics.counter("btree.page_reads")
            else:
                self._read_counter = _NullCounter()
        # cache.read_nt's hit path inlined (same statements, one frame
        # for the whole pager read); misses fall through to the method.
        cache = self.cache
        key = (PAGE_NAME_TABLE, page_no)
        entry = cache._entries.get(key)
        if entry is not None:
            hit_counter = cache._hit_counter
            if hit_counter is not None:
                cache.hits += 1
                hit_counter.value += 1
                cache._tick += 1
                entry.lru_tick = cache._tick
                try:
                    cache._lru.move_to_end(key)
                except KeyError:
                    cache._lru[key] = entry
                return entry.data
        return cache.read_nt(page_no)

    def write(self, page_no: int, data: bytes) -> None:
        """B-tree pager write: stage the page for the next commit."""
        clock = self.clock
        ms = self._node_ms
        clock.now_ms += ms
        clock.cpu_busy_ms += ms
        counter = self._write_counter
        if counter is not None:
            counter.value += 1
        else:
            obs = self._obs
            obs.count("btree.page_writes")
            if obs.enabled:
                self._write_counter = obs.metrics.counter("btree.page_writes")
            else:
                self._write_counter = _NullCounter()
        self.cache.write_nt(page_no, data)

    def allocate(self) -> int:
        """Allocate a free name-table page from the logged bitmap."""
        reserved = 1 + self.bitmap_pages
        for probe in range(reserved, self.nt_pages):
            page_no = reserved + (
                (self._alloc_cursor - reserved + probe - reserved)
                % (self.nt_pages - reserved)
            )
            if not self._bit(page_no):
                self._set_bit(page_no, True)
                self._alloc_cursor = page_no + 1
                self.obs.count("btree.page_allocs")
                return page_no
        raise VolumeFull("file name table is out of pages")

    def free(self, page_no: int) -> None:
        """Return a name-table page to the logged bitmap."""
        if not self._bit(page_no):
            raise CorruptMetadata(f"double free of name-table page {page_no}")
        self._set_bit(page_no, False)
        self.obs.count("btree.page_frees")

    # -- bitmap plumbing -------------------------------------------------
    def format_bitmap(self) -> None:
        """Mark the meta page and the bitmap pages themselves used."""
        for bitmap_page in range(1, 1 + self.bitmap_pages):
            self.cache.write_nt(bitmap_page, b"\x00" * self.page_size)
        for reserved in range(0, 1 + self.bitmap_pages):
            self._set_bit(reserved, True)

    def _locate(self, page_no: int) -> tuple[int, int, int]:
        bitmap_page = 1 + page_no // (8 * self.page_size)
        byte_index = (page_no % (8 * self.page_size)) // 8
        bit = page_no % 8
        return bitmap_page, byte_index, bit

    def _bit(self, page_no: int) -> bool:
        bitmap_page, byte_index, bit = self._locate(page_no)
        data = self.cache.read_nt(bitmap_page)
        return bool(data[byte_index] & (1 << bit))

    def _set_bit(self, page_no: int, value: bool) -> None:
        bitmap_page, byte_index, bit = self._locate(page_no)
        data = bytearray(self.cache.read_nt(bitmap_page))
        if value:
            data[byte_index] |= 1 << bit
        else:
            data[byte_index] &= ~(1 << bit)
        self.cache.write_nt(bitmap_page, bytes(data))

    def allocated_pages(self) -> int:
        """Pages currently marked used in the allocation bitmap."""
        total = 0
        for bitmap_page in range(1, 1 + self.bitmap_pages):
            data = self.cache.read_nt(bitmap_page)
            total += sum(bin(byte).count("1") for byte in data)
        return total


class FsdNameTable:
    """Typed operations over the raw B-tree: the FS-facing name table."""

    def __init__(self, tree: BTree, clock: SimClock):
        self.tree = tree
        self.clock = clock

    @classmethod
    def format(cls, pager: NameTablePager, clock: SimClock) -> "FsdNameTable":
        pager.format_bitmap()
        tree = BTree.create(pager)
        return cls(tree, clock)

    @classmethod
    def open(cls, pager: NameTablePager, clock: SimClock) -> "FsdNameTable":
        return cls(BTree.open(pager), clock)

    # ------------------------------------------------------------------
    # entry operations
    # ------------------------------------------------------------------
    def insert(self, props: FileProperties, runs: RunTable) -> None:
        """Insert (or replace) a file's entry, spilling long run tables."""
        self.clock.advance_cpu(self.clock.cpu.entry_interpret_ms)
        self.tree.insert(
            encode_key(props.name, props.version, 0),
            encode_main_entry(props, runs),
        )
        self._write_continuations(props.name, props.version, runs)

    def update(self, props: FileProperties, runs: RunTable) -> None:
        """Rewrite an entry whose properties or runs changed."""
        self.insert(props, runs)

    def _write_continuations(
        self, name: str, version: int, runs: RunTable
    ) -> None:
        spill = runs.runs[MAX_INLINE_RUNS:]
        chunk = 1
        for start in range(0, len(spill), MAX_RUNS_PER_CHUNK):
            self.tree.insert(
                encode_key(name, version, chunk),
                encode_continuation(spill[start : start + MAX_RUNS_PER_CHUNK]),
            )
            chunk += 1
        # Drop stale continuation chunks from an earlier, longer table.
        while self.tree.delete(encode_key(name, version, chunk)):
            chunk += 1

    def get(
        self, name: str, version: int
    ) -> tuple[FileProperties, RunTable] | None:
        """Full entry for (name, version), continuations resolved."""
        self.clock.advance_cpu(self.clock.cpu.entry_interpret_ms)
        value = self.tree.get(encode_key(name, version, 0))
        if value is None:
            return None
        props, runs, total_runs = decode_main_entry(name, version, value)
        chunk = 1
        while len(runs.runs) < total_runs:
            more = self.tree.get(encode_key(name, version, chunk))
            if more is None:
                raise CorruptMetadata(
                    f"missing run-table continuation {chunk} for "
                    f"{name}!{version}"
                )
            for run in decode_continuation(more):
                runs.runs.append(run)
            chunk += 1
        return props, runs

    def delete(self, name: str, version: int) -> tuple[FileProperties, RunTable]:
        """Remove an entry (and its continuations); returns what it held."""
        entry = self.get(name, version)
        if entry is None:
            raise FileNotFound(f"{name}!{version}")
        self.tree.delete(encode_key(name, version, 0))
        chunk = 1
        while self.tree.delete(encode_key(name, version, chunk)):
            chunk += 1
        return entry

    # ------------------------------------------------------------------
    # version helpers
    # ------------------------------------------------------------------
    def versions(self, name: str) -> list[int]:
        """All existing versions of ``name``, ascending."""
        out = []
        for key, _ in self.tree.scan_prefix(name_prefix(name)):
            _, version, chunk = decode_key(key)
            if chunk == 0:
                out.append(version)
        return out

    def highest_version(self, name: str) -> int | None:
        """Newest version of ``name``, or None."""
        versions = self.versions(name)
        return versions[-1] if versions else None

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def enumerate(
        self, prefix: str = ""
    ) -> Iterator[tuple[FileProperties, RunTable]]:
        """Iterate complete entries (with full run tables) in name order.

        This is the paper's "list" operation: properties come straight
        from the name table, no per-file I/O.
        """
        current: tuple[FileProperties, RunTable] | None = None
        expected_runs = 0
        start = prefix.encode("utf-8") if prefix else None
        clock = self.clock
        interpret_ms = clock.cpu.entry_interpret_ms
        # decode_key memo-hit inlined: one dict probe per entry, with
        # the decoding call only on a cold key.  Leaf-batched scan: one
        # generator resume per leaf page, not per entry.
        key_memo = types._KEY_MEMO
        for keys, values in self.tree.scan_leaves(start):
            for key, value in zip(keys, values):
                decoded = key_memo.get(key)
                if decoded is None:
                    decoded = decode_key(key)
                name, version, chunk = decoded
                if prefix and not name.startswith(prefix):
                    if current is not None:
                        yield current
                    return
                # advance_cpu inlined: fixed positive cost, once per
                # entry of every list operation.
                clock.now_ms += interpret_ms
                clock.cpu_busy_ms += interpret_ms
                if chunk == 0:
                    if current is not None:
                        yield current
                    props, runs, expected_runs = decode_main_entry(
                        name, version, value
                    )
                    current = (props, runs)
                else:
                    if current is None:
                        raise CorruptMetadata(
                            f"orphan continuation entry for {name}!{version}"
                        )
                    current[1].runs.extend(decode_continuation(value))
        if current is not None:
            yield current

    def enumerate_props(self, prefix: str = "") -> Iterator[FileProperties]:
        """Properties-only listing for ``fsd.list``.

        Same scan, same per-entry CPU charges as :meth:`enumerate`, but
        run tables are never materialised: continuation entries are
        charged and skipped without parsing, and chunk-0 entries decode
        through the properties memo.
        """
        have_main = False
        start = prefix.encode("utf-8") if prefix else None
        clock = self.clock
        interpret_ms = clock.cpu.entry_interpret_ms
        key_memo = types._KEY_MEMO
        decode_props = types.decode_main_props
        for keys, values in self.tree.scan_leaves(start):
            for key, value in zip(keys, values):
                decoded = key_memo.get(key)
                if decoded is None:
                    decoded = decode_key(key)
                name, version, chunk = decoded
                if prefix and not name.startswith(prefix):
                    return
                clock.now_ms += interpret_ms
                clock.cpu_busy_ms += interpret_ms
                if chunk == 0:
                    have_main = True
                    yield decode_props(name, version, value)
                elif not have_main:
                    raise CorruptMetadata(
                        f"orphan continuation entry for {name}!{version}"
                    )

    def __len__(self) -> int:
        """Number of chunk-0 entries is not tracked; len(tree) counts
        all entries including continuations."""
        return len(self.tree)
