"""The data-page buffer cache with sequential read-ahead.

The paper's evaluation assumes clients work from *cached* files —
"cached remote files" are one of FSD's three entry kinds — and the
4.2 BSD baseline it compares against owes much of its read throughput
to the kernel buffer cache and block clustering.  The FSD read path,
by contrast, issued one disk request per run extent with no caching at
all, which made reads the slowest path in every benchmark.  This
module closes that gap for *data* pages; metadata pages stay in
:class:`~repro.core.cache.MetadataCache`, whose logging obligations
this cache deliberately does not share.

Design rules:

* **Write-through, never write-behind.**  Data pages are not logged
  (paper §5.3: files are written once; logging them would double data
  writes), so the platter copy is the only durable copy.  A write
  populates the cache *and* reaches the disk exactly as it did before
  the cache existed — crash semantics are unchanged, and cache-off
  runs are bit-identical to cache-on runs on the write side.
* **Strict invalidation.**  Truncate and delete free sectors that the
  allocator may hand to a different file (or to a new leader page,
  which is written through a path this cache never sees); their cached
  images are dropped immediately.  Rename drops the file's pages too —
  cheaper to be strict than to prove each exception safe.  A crash or
  unmount discards everything: the cache is volatile state, exactly
  like the scheduler queue.
* **Sequential read-ahead.**  When two consecutive extents of a file
  are read in order (tracked per file uid), the miss read is extended
  to prefetch the remainder of the file's current disk run, capped by
  ``readahead_pages``.  The demand read and the prefetch are submitted
  as adjacent requests and merged by the I/O scheduler
  (:meth:`~repro.disk.sched.IoScheduler.merge_reads`) into a single
  multi-sector transfer — one rotational wait instead of one per page.

A capacity of zero disables the cache: every lookup misses, nothing is
stored, and the FSD read path takes its original extent-by-extent
route, keeping op counts and simulated times bit-identical to the
pre-cache tree.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs import NULL_OBS

#: default capacity when the cache is enabled without an explicit size
#: (256 sectors = 128 KB at the Trident's 512-byte sectors — small
#: beside the Dorado's real memory, large beside one file's run).
DEFAULT_DATA_CACHE_PAGES = 256

#: default read-ahead window, in pages (sectors).  Two windows fit one
#: ``VolumeParams.max_io_sectors`` transfer with room for the demand
#: read that triggers them.
DEFAULT_READAHEAD_PAGES = 16

#: default sequential-detection states tracked at once; beyond this
#: the oldest file's state is forgotten (it only costs a missed
#: prefetch).  Mounts serving many interleaved client streams (the
#: traffic engine) can raise it via the ``seq_streams`` knob.
_MAX_SEQ_STREAMS = 64


class DataPageCache:
    """LRU cache of data sectors keyed by disk address.

    ``capacity_pages == 0`` disables the cache entirely (the
    bit-compatibility mode).  All counters are mirrored to ``obs``
    under ``cache.data.*``; the hit-ratio and read-ahead-accuracy
    gauges are updated as the counters move so ``repro stats`` can
    report them without post-processing.
    """

    def __init__(
        self,
        capacity_pages: int = 0,
        readahead_pages: int = DEFAULT_READAHEAD_PAGES,
        sector_bytes: int = 512,
        seq_streams: int = _MAX_SEQ_STREAMS,
        obs=NULL_OBS,
    ):
        if capacity_pages < 0:
            raise ValueError("negative data-cache capacity")
        if readahead_pages < 0:
            raise ValueError("negative read-ahead window")
        if seq_streams < 1:
            raise ValueError("need at least one sequential stream slot")
        self.capacity = capacity_pages
        self.readahead_pages = readahead_pages
        self.sector_bytes = sector_bytes
        self.seq_streams = seq_streams
        self.obs = obs
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        #: addresses prefetched by read-ahead and not yet demanded.
        self._prefetched: set[int] = set()
        #: per-file sequential detector: uid -> next expected page.
        self._seq: OrderedDict[int, int] = OrderedDict()
        #: file identity of each cached address (and the reverse index)
        #: so delete/rename can invalidate by uid even when the
        #: caller's run list is stale under interleaved clients.
        self._owner: dict[int, int] = {}
        self._by_uid: dict[int, set[int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.readahead_issued = 0
        self.readahead_used = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    # lookups and population
    # ------------------------------------------------------------------
    def lookup(self, address: int) -> bytes | None:
        """A demand lookup: counts a hit or miss, tracks read-ahead
        accuracy, and refreshes LRU position on a hit."""
        if not self.enabled:
            return None
        data = self._pages.get(address)
        recorder = getattr(self.obs, "attribution", None)
        if recorder is not None:
            recorder.note_cache(hit=data is not None)
        if data is None:
            self.misses += 1
            self.obs.count("cache.data.misses")
        else:
            self.hits += 1
            self.obs.count("cache.data.hits")
            self._pages.move_to_end(address)
            if address in self._prefetched:
                self._prefetched.discard(address)
                self.readahead_used += 1
                self.obs.count("cache.data.readahead_used")
                self._update_accuracy()
        self._update_ratio()
        return data

    def contains(self, address: int) -> bool:
        """Presence probe for read-ahead planning (no hit/miss count,
        no LRU effect)."""
        return address in self._pages

    def put(
        self,
        address: int,
        data: bytes,
        prefetched: bool = False,
        uid: int | None = None,
    ) -> None:
        """Insert one sector image (padded to the sector size, exactly
        as it lies on the platter).  ``uid`` records which file the
        sector belongs to, feeding the per-file invalidation index."""
        if not self.enabled:
            return
        if len(data) < self.sector_bytes:
            data = data + b"\x00" * (self.sector_bytes - len(data))
        self._pages[address] = bytes(data)
        self._pages.move_to_end(address)
        self._set_owner(address, uid)
        if prefetched:
            self._prefetched.add(address)
            self.readahead_issued += 1
            self.obs.count("cache.data.readahead_issued")
            self._update_accuracy()
        else:
            self._prefetched.discard(address)
        while len(self._pages) > self.capacity:
            victim, _ = self._pages.popitem(last=False)
            self._prefetched.discard(victim)
            self._set_owner(victim, None)
            self.evictions += 1
            self.obs.count("cache.data.evictions")

    def _set_owner(self, address: int, uid: int | None) -> None:
        previous = self._owner.pop(address, None)
        if previous is not None:
            owned = self._by_uid.get(previous)
            if owned is not None:
                owned.discard(address)
                if not owned:
                    del self._by_uid[previous]
        if uid is not None:
            self._owner[address] = uid
            self._by_uid.setdefault(uid, set()).add(address)

    # ------------------------------------------------------------------
    # sequential detection
    # ------------------------------------------------------------------
    def note_read(self, uid: int, first_page: int, page_count: int) -> bool:
        """Record one read of file ``uid`` covering logical pages
        ``[first_page, first_page + page_count)``; returns True when it
        directly continues the previous read (the read-ahead trigger:
        two consecutive extents of the file read in order)."""
        if not self.enabled:
            return False
        sequential = self._seq.get(uid) == first_page and first_page > 0
        self._seq[uid] = first_page + page_count
        self._seq.move_to_end(uid)
        while len(self._seq) > self.seq_streams:
            self._seq.popitem(last=False)
        return sequential

    def forget_file(self, uid: int) -> None:
        """Drop the sequential-detection state of one file."""
        self._seq.pop(uid, None)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, address: int, count: int = 1) -> int:
        """Drop ``count`` sectors starting at ``address``; returns how
        many were actually cached."""
        dropped = 0
        for victim in range(address, address + count):
            if self._pages.pop(victim, None) is not None:
                dropped += 1
            self._prefetched.discard(victim)
            self._set_owner(victim, None)
        if dropped:
            self.invalidations += dropped
            self.obs.count("cache.data.invalidations", dropped)
        return dropped

    def invalidate_file(self, uid: int) -> int:
        """Drop every cached sector owned by file ``uid`` (and its
        sequential-detection state).  Delete and rename invalidate by
        identity *in addition to* run lists: under interleaved clients
        a stale handle may have populated pages outside the run list
        the invalidating operation resolved, and those images must not
        survive the file they belonged to."""
        addresses = list(self._by_uid.get(uid, ()))
        dropped = 0
        for address in addresses:
            dropped += self.invalidate(address)
        self.forget_file(uid)
        return dropped

    def invalidate_runs(self, runs) -> int:
        """Drop every sector of the given runs (truncate/delete/rename
        free or re-home these sectors; stale images must not survive)."""
        run_list = getattr(runs, "runs", runs)
        dropped = 0
        for run in run_list:
            dropped += self.invalidate(run.start, run.count)
        return dropped

    def discard_all(self) -> None:
        """A crash (or unmount): volatile state vanishes, exactly like
        the scheduler queue and the metadata cache."""
        self._pages.clear()
        self._prefetched.clear()
        self._seq.clear()
        self._owner.clear()
        self._by_uid.clear()

    # ------------------------------------------------------------------
    # derived gauges
    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def readahead_accuracy(self) -> float:
        return (
            self.readahead_used / self.readahead_issued
            if self.readahead_issued
            else 0.0
        )

    def _update_ratio(self) -> None:
        self.obs.gauge("cache.data.hit_ratio", round(self.hit_ratio, 4))

    def _update_accuracy(self) -> None:
        self.obs.gauge(
            "cache.data.readahead_accuracy", round(self.readahead_accuracy, 4)
        )
