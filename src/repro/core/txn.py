"""Transaction brackets around FSD mutating operations.

Hagmann's group commit amortizes one log force across *many
concurrent clients'* updates, which means the commit machinery must
know when client operations are in flight.  This module supplies the
xv6-style log brackets (``begin_op``/``end_op``): every mutating FSD
entry point runs inside a bracket, and the :class:`TxnManager` keeps
the three pieces of state the discipline needs —

* ``outstanding`` — client operations currently inside a bracket,
* ``committing`` — a log force is writing its records right now,
* ``commit_pending`` — a force came due while operations were
  outstanding; the last ``end_op`` must run it.

``begin_op`` performs **log-space admission**: a client is only
admitted while the circular log's active third can absorb the pages
already awaiting logging *plus* a worst-case record for every
admitted operation (``pending + (outstanding + 1) * max_record_pages
<= capacity``).  When admission fails, or a commit is pending or in
progress, the caller's ``waiter`` callback is parked and invoked on
the simulated clock when the next force completes — one commit wakes
every waiting client at once, which is exactly the amortization the
paper describes in §5.4.

In the uncontended (single-client, serial) case a bracket is pure
counter bookkeeping: ``begin_op`` without a waiter never blocks and
never forces, so existing serial workloads are bit-identical with
brackets on.  The concurrency behaviour only engages when a driver —
the traffic engine in :mod:`repro.workloads.traffic` — supplies
waiters and holds brackets open across simulated time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

from repro.errors import FsError
from repro.obs import NULL_OBS


class TxnManager:
    """The bracket state machine of one mounted FSD volume.

    ``coordinator`` is the volume's
    :class:`~repro.core.group_commit.CommitCoordinator`; the manager
    registers itself on it (``coordinator.txn``) so forces defer while
    operations are outstanding and wake waiters when they complete.
    ``capacity_pages`` is the admission budget (what the log's active
    third can absorb, see
    :meth:`~repro.core.wal.WriteAheadLog.admission_capacity_pages`);
    ``max_op_pages`` is the worst-case metadata pages one operation
    may dirty (``VolumeParams.max_record_pages``).
    """

    def __init__(
        self,
        coordinator,
        capacity_pages: int,
        max_op_pages: int,
        obs=NULL_OBS,
    ):
        if max_op_pages <= 0:
            raise FsError("max_op_pages must be positive")
        self.coordinator = coordinator
        self.max_op_pages = max_op_pages
        # Never set capacity below one worst-case op or no client could
        # ever be admitted.
        self.capacity_pages = max(capacity_pages, max_op_pages)
        self.obs = obs
        self.outstanding = 0
        self.committing = False
        self.commit_pending = False
        #: lifetime counts (mirrored to obs; plain so detached-observer
        #: harnesses can still report them).
        self.admission_waits = 0
        self.commit_waits = 0
        self._passthrough = 0
        self._admission_waiters: list[Callable[[], None]] = []
        self._commit_waiters: list[Callable[[float], None]] = []
        coordinator.txn = self

    # ------------------------------------------------------------------
    # the brackets
    # ------------------------------------------------------------------
    def begin_op(self, waiter: Callable[[], None] | None = None) -> bool:
        """Enter an operation bracket; returns True when admitted.

        Without a ``waiter`` (the serial path) admission always
        succeeds — a lone caller cannot overrun the log because the
        pressure check at every FSD entry point already bounds the
        pages awaiting logging.  With a ``waiter``, admission fails
        while a commit is pending or in progress, or while the log's
        active third could not absorb a worst-case record for every
        admitted operation; the waiter is parked and called (exactly
        once) when the next force completes.
        """
        if waiter is None:
            self.outstanding += 1
            self.obs.count("txn.begin_ops")
            return True
        if not self._admissible():
            if self.outstanding == 0 and not self.committing:
                # Nobody holds a bracket, so no end_op will ever run
                # the commit on our behalf: force now and re-check.
                self.coordinator.force()
                if self._admissible():
                    self.outstanding += 1
                    self.obs.count("txn.begin_ops")
                    return True
            self._admission_waiters.append(waiter)
            self.admission_waits += 1
            self.obs.count("txn.admission_waits")
            return False
        self.outstanding += 1
        self.obs.count("txn.begin_ops")
        return True

    def end_op(self) -> None:
        """Leave an operation bracket.

        The last ``end_op`` of a drain runs any force that came due
        while operations were outstanding (the deferred group commit),
        which in turn wakes every parked client.  Unbalanced calls —
        more ``end_op`` than ``begin_op`` — raise.
        """
        if self.outstanding <= 0:
            raise FsError("unbalanced end_op: no operation outstanding")
        if self.committing:
            raise FsError("end_op during commit: bracket crossed a force")
        self.outstanding -= 1
        self.obs.count("txn.end_ops")
        if self.outstanding:
            # Leaving the bracket released one worst-case reservation;
            # parked clients may now fit.
            self._wake_admissions()
            return
        if self.commit_pending:
            # A force came due mid-bracket; we are the quiescent point.
            self.coordinator.force()
        elif self._admission_waiters:
            if self.space_available():
                self._wake_admissions()
            else:
                # Parked clients are waiting on log space and no commit
                # is otherwise due: free the space for them.
                self.coordinator.force()

    @contextmanager
    def op(self):
        """A bracket as a context manager — what the FSD mutating
        entry points use.  Inside :meth:`passthrough` (a driver
        already holds the bracket for this operation) it is a no-op,
        so brackets never nest per client."""
        if self._passthrough:
            yield
            return
        self.begin_op()
        try:
            yield
        finally:
            self.end_op()

    @contextmanager
    def passthrough(self):
        """Mark the current (atomic) operation body as already
        bracketed by its driver; the FSD-internal :meth:`op` brackets
        become no-ops inside this context."""
        self._passthrough += 1
        try:
            yield
        finally:
            self._passthrough -= 1

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def space_available(self, extra_ops: int = 1) -> bool:
        """True when the active third can absorb the pages already
        awaiting logging plus ``extra_ops`` more worst-case records on
        top of the outstanding ones."""
        pending = self.coordinator.cache.pending_log_pages()
        reserved = (self.outstanding + extra_ops) * self.max_op_pages
        return pending + reserved <= self.capacity_pages

    def _admissible(self) -> bool:
        return (
            not self.committing
            and not self.commit_pending
            and self.space_available()
        )

    def block_reason(self) -> str:
        """Why admission would fail *right now* (for latency
        attribution): ``committing`` — a force is writing its records;
        ``commit_pending`` — a deferred force is draining the
        outstanding brackets; ``log_space`` — the active third cannot
        absorb another worst-case record; ``none`` — admissible."""
        if self.committing:
            return "committing"
        if self.commit_pending:
            return "commit_pending"
        if not self.space_available():
            return "log_space"
        return "none"

    def _admission_slots(self) -> int:
        """How many more worst-case operations fit right now."""
        pending = self.coordinator.cache.pending_log_pages()
        free = (
            self.capacity_pages
            - pending
            - self.outstanding * self.max_op_pages
        )
        return max(0, free // self.max_op_pages)

    def _wake_admissions(self) -> None:
        """Wake as many parked clients as could currently be admitted
        (each re-attempts ``begin_op``; losers re-park).  Limiting the
        wake to the free slots keeps a thousand parked clients from
        stampeding on every end_op."""
        if not self._admission_waiters or self.commit_pending:
            return
        slots = self._admission_slots()
        if slots <= 0:
            return
        woken = self._admission_waiters[:slots]
        del self._admission_waiters[:slots]
        for waiter in woken:
            waiter()

    # ------------------------------------------------------------------
    # commit interplay (called by the CommitCoordinator)
    # ------------------------------------------------------------------
    def can_commit(self) -> bool:
        """True when a force may run right now (no operation mid
        bracket, no force already in progress)."""
        return self.outstanding == 0 and not self.committing

    def request_commit(self) -> None:
        """A force came due but cannot run: remember it so the last
        ``end_op`` commits, and stop admitting new operations so the
        outstanding ones drain."""
        self.commit_pending = True
        self.obs.count("txn.commit_requests")

    def await_commit(self, waiter: Callable[[float], None]) -> None:
        """Park ``waiter`` until the next force completes; it is
        called exactly once with the completion time in simulated ms
        (the durability point of everything submitted before it)."""
        self._commit_waiters.append(waiter)
        self.commit_waits += 1
        self.obs.count("txn.commit_waits")

    def after_force(self, now_ms: float) -> None:
        """A force just completed: the pending request (if any) is
        satisfied and every parked client wakes.  Waiters run after
        ``committing`` has cleared, so a woken client may immediately
        retry ``begin_op``."""
        self.commit_pending = False
        commit_waiters, self._commit_waiters = self._commit_waiters, []
        for waiter in commit_waiters:
            waiter(now_ms)
        self._wake_admissions()

    def discard_waiters(self) -> int:
        """A crash vaporized the volume's volatile state: every open
        bracket and parked waiter belongs to a dead mount and must
        never run.  Returns how many waiters were dropped so a driver
        (the chaos engine) can re-drive those clients itself with a
        typed crash-interruption instead of leaving them hung.
        """
        dropped = len(self._admission_waiters) + len(self._commit_waiters)
        self._admission_waiters.clear()
        self._commit_waiters.clear()
        self.outstanding = 0
        self.committing = False
        self.commit_pending = False
        if dropped:
            self.obs.count("txn.waiters_discarded", dropped)
        return dropped

    @property
    def waiting(self) -> int:
        """Clients currently parked (admission + commit waiters)."""
        return len(self._admission_waiters) + len(self._commit_waiters)
