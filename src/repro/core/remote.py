"""Remote files: symbolic links and cached copies (paper §4, §5.4).

The original FS was "a caching file system for a programmer's
workstation" [Schr85]: most local files were cached copies of files on
file servers, reached through symbolic links.  The paper leans on this
twice — the three name-table entry kinds of Table 1 (local, symlink,
cached), and the canonical group-commit example: "the last-used-time
for cached copies of remote files is an excellent example of data that
does not require exact update."

``RemoteFileServer`` is a minimal versioned store standing in for an
Alpine/IFS server; ``CachingFS`` layers Cedar's caching behaviour over
a mounted FSD volume:

* ``make_link(local, "server:path")`` creates a SYMLINK entry;
* opening a link fetches the newest remote version into a CACHED
  entry (immutable once fetched; new remote versions fetch alongside);
* every cache hit updates the entry's last-used-time — a one-page
  name-table change batched by group commit;
* ``flush(bytes_needed)`` evicts the least-recently-used cached copies
  ("old versions are immutable (except that they may be flushed)").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fsd import FSD, FsdFile
from repro.core.types import FileKind
from repro.errors import FileNotFound, FsError

#: prefix under which cached copies live in the local name table.
CACHE_PREFIX = "cache"

#: modelled network fetch rate: a ~3 Mbit/s experimental-Ethernet era
#: link moves roughly 300 bytes per millisecond end to end.
NETWORK_BYTES_PER_MS = 300.0


class RemoteFileServer:
    """A versioned in-memory file server (the Alpine/IFS stand-in)."""

    def __init__(self, name: str):
        self.name = name
        self._files: dict[str, list[bytes]] = {}
        self.fetches = 0

    def store(self, path: str, data: bytes) -> int:
        """Store a new version; returns its version number (1-based)."""
        versions = self._files.setdefault(path, [])
        versions.append(bytes(data))
        return len(versions)

    def fetch(self, path: str, version: int | None = None) -> tuple[int, bytes]:
        """Return (version, data); newest when version is None."""
        versions = self._files.get(path)
        if not versions:
            raise FileNotFound(f"{self.name}:{path}")
        if version is None:
            version = len(versions)
        if not (1 <= version <= len(versions)):
            raise FileNotFound(f"{self.name}:{path}!{version}")
        self.fetches += 1
        return version, versions[version - 1]

    def highest_version(self, path: str) -> int | None:
        """Newest version number of ``path``, or None."""
        versions = self._files.get(path)
        return len(versions) if versions else None

    def exists(self, path: str) -> bool:
        """True when the server has any version of ``path``."""
        return path in self._files


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    fetched_bytes: int = 0
    flushed_files: int = 0
    flushed_bytes: int = 0


def parse_ref(ref: str) -> tuple[str, str]:
    """Split "server:path" into its parts."""
    server, sep, path = ref.partition(":")
    if not sep or not server or not path:
        raise FsError(f"bad remote reference {ref!r} (want 'server:path')")
    return server, path


class CachingFS:
    """Cedar's caching layer over a local FSD volume."""

    def __init__(self, fs: FSD, servers: dict[str, RemoteFileServer] | None = None):
        self.fs = fs
        self.servers = dict(servers or {})
        self.stats = CacheStats()

    def add_server(self, server: RemoteFileServer) -> None:
        """Register a file server by its name."""
        self.servers[server.name] = server

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def make_link(self, local_name: str, remote_ref: str) -> None:
        """Create (the next version of) a symbolic link."""
        parse_ref(remote_ref)  # validate early
        self.fs.create(
            local_name, kind=FileKind.SYMLINK, remote_target=remote_ref
        )

    def read_link(self, local_name: str) -> str:
        """The remote reference a symbolic link points at."""
        handle = self.fs.open(local_name)
        if handle.props.kind != FileKind.SYMLINK:
            raise FsError(f"{local_name} is not a symbolic link")
        return handle.props.remote_target

    # ------------------------------------------------------------------
    # opening through the cache
    # ------------------------------------------------------------------
    def open(self, name: str) -> FsdFile:
        """Open a name, following a symbolic link through the cache.

        Local files open directly; links resolve to the newest remote
        version, fetched into the cache on a miss.
        """
        handle = self.fs.open(name)
        if handle.props.kind != FileKind.SYMLINK:
            return handle
        return self.open_remote(handle.props.remote_target)

    def open_remote(self, remote_ref: str) -> FsdFile:
        """Open "server:path" via the cache (fetching if necessary)."""
        server_name, path = parse_ref(remote_ref)
        server = self.servers.get(server_name)
        if server is None:
            raise FileNotFound(f"no such server {server_name!r}")
        version = server.highest_version(path)
        if version is None:
            raise FileNotFound(remote_ref)
        cache_name = self._cache_name(server_name, path)
        stamp = f"{server_name}:{path}!{version}"
        for local_version in self.fs.versions(cache_name):
            entry = self.fs.name_table.get(cache_name, local_version)
            if entry is not None and entry[0].remote_target == stamp:
                self.stats.hits += 1
                # fs.open updates last-used-time for CACHED entries —
                # the paper's group-commit example happens right here.
                return self.fs.open(cache_name, version=local_version)
        self.stats.misses += 1
        return self._fetch(server, path, version, cache_name)

    def _fetch(
        self,
        server: RemoteFileServer,
        path: str,
        version: int,
        cache_name: str,
    ) -> FsdFile:
        remote_version, data = server.fetch(path, version)
        self.fs.clock.advance_idle(len(data) / NETWORK_BYTES_PER_MS)
        self.stats.fetched_bytes += len(data)
        # Local version numbers are dense per name, so the remote
        # version is recorded in the target stamp rather than reused as
        # the local version; keep=0 leaves retention to the flusher.
        handle = self.fs.create(
            cache_name,
            data,
            keep=0,
            kind=FileKind.CACHED,
            remote_target=f"{server.name}:{path}!{remote_version}",
        )
        return handle

    def _cache_name(self, server_name: str, path: str) -> str:
        return f"{CACHE_PREFIX}/{server_name}/{path}"

    def read(self, handle: FsdFile, offset: int = 0, length: int | None = None) -> bytes:
        """Read through to the underlying FSD volume."""
        return self.fs.read(handle, offset, length)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def cached_entries(self) -> list[FsdFile]:
        """Every cached remote copy currently on the local volume."""
        out = []
        for props, runs in self.fs.name_table.enumerate(CACHE_PREFIX + "/"):
            if props.kind == FileKind.CACHED:
                out.append(FsdFile(props=props, runs=runs))
        return out

    def flush(self, bytes_needed: int) -> int:
        """Evict least-recently-used cached copies until at least
        ``bytes_needed`` of file data has been released."""
        victims = sorted(
            self.cached_entries(), key=lambda h: h.props.last_used_ms
        )
        released = 0
        for victim in victims:
            if released >= bytes_needed:
                break
            self.fs.delete(victim.props.name, victim.props.version)
            released += victim.props.byte_size
            self.stats.flushed_files += 1
            self.stats.flushed_bytes += victim.props.byte_size
        return released
