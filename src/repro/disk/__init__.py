"""Disk simulator substrate: geometry, timing, virtual clock, faults.

This package stands in for the paper's Dorado + Trident hardware.  All
"wall clock" numbers in the reproduced tables are the virtual
milliseconds accumulated here.
"""

from repro.disk.clock import CpuCostModel, SimClock, TimerEvent
from repro.disk.disk import FREE_LABEL, LABEL_BYTES, SimDisk
from repro.disk.faults import CrashPlan, FaultInjector
from repro.disk.mirror import MirroredDisk
from repro.disk.geometry import DiskGeometry, SMALL_DISK, TRIDENT_T300
from repro.disk.sched import (
    IoRequest,
    IoScheduler,
    POLICIES,
    as_scheduler,
)
from repro.disk.stats import DiskStats, StatsWindow
from repro.disk.trace import IoEvent, IoTracer
from repro.disk.timing import DiskTiming, TRIDENT_TIMING

__all__ = [
    "CpuCostModel",
    "CrashPlan",
    "DiskGeometry",
    "DiskStats",
    "DiskTiming",
    "FaultInjector",
    "IoEvent",
    "IoRequest",
    "IoScheduler",
    "IoTracer",
    "FREE_LABEL",
    "LABEL_BYTES",
    "MirroredDisk",
    "POLICIES",
    "SMALL_DISK",
    "SimClock",
    "SimDisk",
    "StatsWindow",
    "TimerEvent",
    "TRIDENT_T300",
    "TRIDENT_TIMING",
    "as_scheduler",
]
