"""The explicit I/O scheduler between storage components and the disk.

Every storage layer (WAL, group commit writeback, recovery redo, VAM
save, the FSD data path) talks to one :class:`IoScheduler` instead of
calling :class:`~repro.disk.disk.SimDisk` directly.  Writes that have
no client waiting on them — the paper's §4 *asynchronous* writes:
writeback of logged metadata pages, redo writes during recovery, the
VAM bitmap save — are *submitted* to a queue; a pluggable policy picks
the dispatch order when the queue is flushed:

* ``fifo``     — dispatch immediately on submit, in program order.
  This is the bit-compatibility policy: op counts and simulated times
  are exactly those of direct disk calls (the ``NULL_OBS`` pattern).
* ``scan``     — elevator: at flush time, service requests at or above
  the head's cylinder in ascending address order, then the rest
  descending, so the arm sweeps instead of ping-ponging.
* ``deadline`` — requests whose deadline has expired (log forces carry
  ``deadline_ms``) dispatch first in ascending order; opportunistic
  writebacks follow in elevator order.

Under ``scan``/``deadline`` the scheduler also *coalesces* adjacent
requests: queued writes whose sector ranges abut are merged into one
disk operation (one I/O, one rotational wait), up to
``coalesce_limit`` sectors.

Reads merge too, on a different path: reads are synchronous, so there
is no read queue to reorder — instead :meth:`IoScheduler.merge_reads`
takes the *batch* of read requests a caller is about to issue (the
FSD data path's demand misses plus its read-ahead prefetch) and plans
the minimal sequence of physical transfers: address-adjacent requests
fuse into one multi-sector read, and oversized spans split at the
caller's transfer limit.  Every fused request is one rotational wait
saved, mirrored in ``sched.coalesced_reads``.

Ordering rules keep the redo log honest:

* a **synchronous write** (:meth:`IoScheduler.write`) is a barrier: the
  whole queue is flushed first, then the write dispatches.  The WAL's
  anchor advance therefore cannot pass the home writes it depends on,
  and a log force cannot complete before the records it covers.
* a **read** flushes the queue only when it overlaps a queued write
  (read-after-write consistency); non-overlapping reads pass the queue.
* requests whose sector ranges overlap are never reordered relative to
  each other: the flush splits the queue into overlap-free batches and
  only reorders within a batch.

Queued-but-undispatched writes are volatile: a
:class:`~repro.errors.SimulatedCrash` during dispatch drops the rest of
the queue, exactly as a machine crash loses writes the driver had not
started.  Durability points (log forces, anchor writes, unmount) are
all barriers, so nothing the log has promised can be lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disk.disk import SimDisk
from repro.errors import SimulatedCrash
from repro.obs import NULL_OBS

#: histogram bounds for dispatch batch sizes (requests per flush).
DISPATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: histogram bounds for deadline lateness at dispatch (ms past due).
LATENESS_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)

#: default cap on a coalesced write, in sectors.  Two max-sized data
#: transfers (``VolumeParams.max_io_sectors`` = 120) can merge; beyond
#: that the transfer monopolizes the arm for too long.
DEFAULT_COALESCE_LIMIT = 240


@dataclass(slots=True)
class IoRequest:
    """One queued write: everything needed to replay it on the disk."""

    tag: int
    address: int
    sectors: list[bytes]
    set_labels: list[bytes] | None = None
    expect_labels: list[bytes] | None = None
    cpu_overlap: bool = False
    #: when this write must be durable (group-commit deadline); None
    #: marks an opportunistic write (writeback) with no client waiting.
    deadline_ms: float | None = None
    #: background work (checkpointer write-home): yields to every
    #: foreground request in the same flush under scan/deadline.
    background: bool = False
    submitted_ms: float = 0.0
    #: number of submitted requests merged into this one at dispatch.
    merged: int = 1
    #: the client operation that submitted this write (latency
    #: attribution); None outside an attributed operation body.
    trace_id: int | None = None

    @property
    def count(self) -> int:
        return len(self.sectors)

    @property
    def end(self) -> int:
        return self.address + self.count

    def overlaps(self, address: int, count: int) -> bool:
        """True when this request's sector range intersects
        ``[address, address + count)``."""
        return self.address < address + count and address < self.end


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
class FifoPolicy:
    """Program order; dispatch on submit.  The bit-compat baseline."""

    name = "fifo"
    #: dispatch each submission immediately (queue depth never exceeds 0).
    immediate = True
    #: merging adjacent writes would change op counts; off for bit-compat.
    coalesce = False

    def order(
        self, batch: list[IoRequest], head_cylinder: int, geometry, now_ms: float
    ) -> list[IoRequest]:
        """Keep submission order untouched."""
        return list(batch)


class ScanPolicy:
    """Elevator: sweep up from the head, then back down."""

    name = "scan"
    immediate = False
    coalesce = True

    def order(
        self, batch: list[IoRequest], head_cylinder: int, geometry, now_ms: float
    ) -> list[IoRequest]:
        """Sort ascending from the head's cylinder, then the rest
        descending — one sweep up, one sweep back.  Background requests
        (checkpointer write-home) take their own sweep after every
        foreground request has been serviced."""
        foreground = [r for r in batch if not r.background]
        background = [r for r in batch if r.background]
        ordered = self._sweep(foreground, head_cylinder, geometry)
        if background:
            ordered += self._sweep(background, head_cylinder, geometry)
        return ordered

    @staticmethod
    def _sweep(
        batch: list[IoRequest], head_cylinder: int, geometry
    ) -> list[IoRequest]:
        ahead = [
            r for r in batch
            if geometry.cylinder_of(r.address) >= head_cylinder
        ]
        behind = [
            r for r in batch
            if geometry.cylinder_of(r.address) < head_cylinder
        ]
        ahead.sort(key=lambda r: r.address)
        behind.sort(key=lambda r: -r.address)
        return ahead + behind


class DeadlinePolicy:
    """Expired deadlines first (ascending), then elevator order.

    Log forces submit with ``deadline_ms`` (the group-commit deadline);
    writebacks submit without one.  At a flush the forced writes are
    serviced before any opportunistic writeback can delay them.
    """

    name = "deadline"
    immediate = False
    coalesce = True

    def __init__(self) -> None:
        self._elevator = ScanPolicy()

    def order(
        self, batch: list[IoRequest], head_cylinder: int, geometry, now_ms: float
    ) -> list[IoRequest]:
        """Expired-deadline requests first (by deadline, then address);
        everything else in elevator order."""
        expired = [
            r for r in batch
            if r.deadline_ms is not None and r.deadline_ms <= now_ms
        ]
        rest = [
            r for r in batch
            if r.deadline_ms is None or r.deadline_ms > now_ms
        ]
        expired.sort(key=lambda r: (r.deadline_ms, r.address))
        return expired + self._elevator.order(
            rest, head_cylinder, geometry, now_ms
        )


POLICIES = {
    "fifo": FifoPolicy,
    "scan": ScanPolicy,
    "deadline": DeadlinePolicy,
}


def make_policy(policy):
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, str):
        try:
            return POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown I/O scheduling policy {policy!r} "
                f"(expected one of {sorted(POLICIES)})"
            ) from None
    return policy


@dataclass
class SchedStats:
    """Cumulative scheduler counters (the obs metrics mirror these)."""

    submitted: int = 0
    dispatched: int = 0
    coalesced: int = 0
    flushes: int = 0
    read_flushes: int = 0
    max_queue_depth: int = 0
    #: read requests fused into a preceding one by :meth:`merge_reads`.
    read_merged: int = 0
    #: deadline-carrying writes dispatched, and how many of those
    #: dispatched after their deadline had already passed.
    deadline_dispatches: int = 0
    deadline_misses: int = 0
    #: worst lateness (dispatch time minus deadline) seen, in ms.
    max_lateness_ms: float = 0.0


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
class IoScheduler:
    """Submission queue + policy-ordered dispatch over one ``SimDisk``.

    The scheduler duck-types as a disk for I/O purposes — it exposes
    ``read``/``read_maybe``/``write``/``read_labels``/``write_labels``
    plus the ``geometry``/``clock``/``stats``/``faults`` attributes —
    so components written against ``SimDisk`` port by substitution.
    """

    def __init__(
        self,
        disk: SimDisk,
        policy="fifo",
        coalesce_limit: int = DEFAULT_COALESCE_LIMIT,
        obs=NULL_OBS,
    ):
        self.disk = disk
        self.policy = make_policy(policy)
        self.coalesce_limit = coalesce_limit
        self.obs = obs
        self.sched_stats = SchedStats()
        self._queue: list[IoRequest] = []
        self._next_tag = 1
        #: while set, every submitted write is tagged background (the
        #: checkpointer flips this around its write-home pass, so the
        #: cache's writeback callables need no extra plumbing).
        self.background_mode = False

    # -- disk passthrough ----------------------------------------------
    @property
    def geometry(self):
        return self.disk.geometry

    @property
    def clock(self):
        return self.disk.clock

    @property
    def stats(self):
        return self.disk.stats

    @property
    def timing(self):
        return self.disk.timing

    @property
    def faults(self):
        return self.disk.faults

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # synchronous operations
    # ------------------------------------------------------------------
    def read(self, address, count=1, expect_labels=None, cpu_overlap=False):
        """Read through the queue (flushes first on overlap)."""
        self._flush_for_read(address, count)
        return self.disk.read(
            address, count, expect_labels=expect_labels,
            cpu_overlap=cpu_overlap,
        )

    def read_maybe(self, address, count=1, expect_labels=None,
                   cpu_overlap=False):
        """Damage-tolerant read through the queue."""
        self._flush_for_read(address, count)
        return self.disk.read_maybe(
            address, count, expect_labels=expect_labels,
            cpu_overlap=cpu_overlap,
        )

    def read_labels(self, address, count=1):
        """Label read through the queue."""
        self._flush_for_read(address, count)
        return self.disk.read_labels(address, count)

    def merge_reads(
        self, requests: list[tuple[int, int]], limit: int | None = None
    ) -> list[tuple[int, int]]:
        """Plan physical transfers for a batch of read requests.

        ``requests`` is ``(address, count)`` per intended read, in the
        order the caller would issue them.  Address-adjacent requests
        fuse into one transfer; anything longer than ``limit`` sectors
        (default ``coalesce_limit``) splits.  Returns the planned
        ``(address, count)`` transfers; the caller dispatches them via
        :meth:`read` (which still flushes overlapping queued writes, so
        merging never weakens read-after-write consistency).
        """
        limit = self.coalesce_limit if limit is None else limit
        spans: list[list[int]] = []
        for address, count in requests:
            if count <= 0:
                continue
            if spans and spans[-1][0] + spans[-1][1] == address:
                spans[-1][1] += count
                self.sched_stats.read_merged += 1
                self.obs.count("sched.coalesced_reads")
            else:
                spans.append([address, count])
        out: list[tuple[int, int]] = []
        for address, count in spans:
            cursor = 0
            while cursor < count:
                take = min(limit, count - cursor)
                out.append((address + cursor, take))
                cursor += take
        return out

    def write(self, address, sectors, expect_labels=None, set_labels=None,
              cpu_overlap=False):
        """Synchronous write: a full barrier, then dispatch.

        Used for writes with ordering obligations (anchor advance, root
        page) and for client data writes the caller blocks on.
        """
        self.flush()
        self.disk.write(
            address, sectors,
            expect_labels=expect_labels, set_labels=set_labels,
            cpu_overlap=cpu_overlap,
        )

    def write_labels(self, address, labels):
        """Synchronous label write (barrier, like :meth:`write`)."""
        self.flush()
        self.disk.write_labels(address, labels)

    # ------------------------------------------------------------------
    # queued operations
    # ------------------------------------------------------------------
    def submit_write(
        self,
        address,
        sectors,
        set_labels=None,
        expect_labels=None,
        cpu_overlap=False,
        deadline_ms=None,
        background=None,
    ) -> int:
        """Queue a write for policy-ordered dispatch; returns its tag.

        Under an ``immediate`` policy (fifo) the write dispatches right
        here, preserving program order exactly.  ``background`` (default:
        the scheduler's ``background_mode``) marks checkpoint write-home
        traffic that must yield to foreground requests at the flush.
        """
        tag = self._next_tag
        self._next_tag += 1
        self.sched_stats.submitted += 1
        self.obs.count("sched.submitted")
        if self.policy.immediate:
            self.sched_stats.dispatched += 1
            self.obs.count("sched.dispatched")
            self.disk.write(
                address, sectors,
                expect_labels=expect_labels, set_labels=set_labels,
                cpu_overlap=cpu_overlap,
            )
            return tag
        recorder = getattr(self.obs, "attribution", None)
        current = recorder.current if recorder is not None else None
        self._queue.append(
            IoRequest(
                tag=tag,
                address=address,
                sectors=list(sectors),
                set_labels=list(set_labels) if set_labels else None,
                expect_labels=list(expect_labels) if expect_labels else None,
                cpu_overlap=cpu_overlap,
                deadline_ms=deadline_ms,
                background=(
                    self.background_mode if background is None else background
                ),
                submitted_ms=self.clock.now_ms,
                trace_id=current.trace_id if current is not None else None,
            )
        )
        depth = len(self._queue)
        if depth > self.sched_stats.max_queue_depth:
            self.sched_stats.max_queue_depth = depth
        self.obs.gauge("sched.queue_depth", depth)
        return tag

    def flush(self) -> int:
        """Dispatch the whole queue in policy order; returns the number
        of disk operations issued.  This is the ordering barrier."""
        if not self._queue:
            return 0
        queue, self._queue = self._queue, []
        self.sched_stats.flushes += 1
        self.obs.count("sched.flushes")
        issued = 0
        for batch in _overlap_batches(queue):
            ordered = self.policy.order(
                batch, self.disk.head_cylinder, self.geometry,
                self.clock.now_ms,
            )
            if self.policy.coalesce:
                ordered = self._coalesce(ordered)
            self.obs.observe(
                f"sched.dispatch_{self.policy.name}",
                len(ordered),
                bounds=DISPATCH_BUCKETS,
            )
            for request in ordered:
                self._dispatch(request)
                issued += 1
        self.obs.gauge("sched.queue_depth", 0)
        return issued

    #: alias making call sites read as what they mean.
    barrier = flush

    def discard(self) -> int:
        """A crash: queued writes vanish with the machine; returns how
        many were lost."""
        lost, self._queue = len(self._queue), []
        if lost:
            self.obs.count("sched.discarded", lost)
            self.obs.gauge("sched.queue_depth", 0)
        return lost

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush_for_read(self, address: int, count: int) -> None:
        if self._queue and any(
            r.overlaps(address, count) for r in self._queue
        ):
            self.sched_stats.read_flushes += 1
            self.obs.count("sched.read_flushes")
            self.flush()

    def _dispatch(self, request: IoRequest) -> None:
        self.sched_stats.dispatched += request.merged
        self.obs.count("sched.dispatched", request.merged)
        if request.trace_id is not None:
            recorder = getattr(self.obs, "attribution", None)
            if recorder is not None:
                recorder.note_queue_wait(
                    request.trace_id,
                    self.clock.now_ms - request.submitted_ms,
                )
        if request.deadline_ms is not None:
            lateness = max(0.0, self.clock.now_ms - request.deadline_ms)
            self.sched_stats.deadline_dispatches += 1
            if lateness > 0.0:
                self.sched_stats.deadline_misses += 1
                if lateness > self.sched_stats.max_lateness_ms:
                    self.sched_stats.max_lateness_ms = lateness
            self.obs.observe(
                "sched.deadline_lateness_ms", lateness,
                bounds=LATENESS_BUCKETS,
            )
        try:
            self.disk.write(
                request.address,
                request.sectors,
                expect_labels=request.expect_labels,
                set_labels=request.set_labels,
                cpu_overlap=request.cpu_overlap,
            )
        except SimulatedCrash:
            # The machine stopped: whatever else was queued is gone.
            self._queue.clear()
            raise

    def _coalesce(self, ordered: list[IoRequest]) -> list[IoRequest]:
        """Merge runs of address-adjacent requests into single I/Os."""
        out: list[IoRequest] = []
        for request in ordered:
            previous = out[-1] if out else None
            if (
                previous is not None
                and previous.end == request.address
                and previous.count + request.count <= self.coalesce_limit
                and previous.cpu_overlap == request.cpu_overlap
                and previous.expect_labels is None
                and request.expect_labels is None
                and (previous.set_labels is None) == (request.set_labels is None)
            ):
                previous.sectors.extend(request.sectors)
                if request.set_labels is not None:
                    assert previous.set_labels is not None
                    previous.set_labels.extend(request.set_labels)
                if request.deadline_ms is not None:
                    previous.deadline_ms = (
                        request.deadline_ms
                        if previous.deadline_ms is None
                        else min(previous.deadline_ms, request.deadline_ms)
                    )
                previous.merged += request.merged
                self.sched_stats.coalesced += 1
                self.obs.count("sched.coalesced_writes")
                continue
            out.append(request)
        return out


def _overlap_batches(queue: list[IoRequest]):
    """Split the queue, in submission order, into batches with no
    internal overlap, so reordering within a batch is always safe."""
    batch: list[IoRequest] = []
    for request in queue:
        if any(
            r.overlaps(request.address, request.count) for r in batch
        ):
            yield batch
            batch = []
        batch.append(request)
    if batch:
        yield batch


def as_scheduler(disk, policy="fifo", obs=NULL_OBS) -> IoScheduler:
    """Wrap ``disk`` in a scheduler unless it already is one.

    Components accept either a raw :class:`SimDisk` (tests, tools) or a
    shared :class:`IoScheduler` (a mounted volume); the fifo wrapper a
    raw disk gets here is a pure pass-through.
    """
    if isinstance(disk, IoScheduler):
        return disk
    return IoScheduler(disk, policy=policy, obs=obs)
