"""I/O tracing: see each disk operation the way the §6 model scripts it.

The paper's methodology was to script operations as seeks, latencies,
revolutions and transfers.  Attach an :class:`IoTracer` to a
``SimDisk`` and every operation is recorded with exactly that
decomposition, so you can diff an implementation's real behaviour
against the model's script for it:

    tracer = IoTracer()
    disk.tracer = tracer
    fs.create("a", b"x")
    for event in tracer.events:
        print(event)

Events are cheap dataclasses; tracing is off unless a tracer is
attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IoEvent:
    """One disk operation, decomposed like a model script step."""

    kind: str            # "read" | "write" | "label_read" | "label_write"
    address: int
    sectors: int
    cylinder_distance: int
    seek_ms: float
    rotational_ms: float
    transfer_ms: float
    start_ms: float

    @property
    def total_ms(self) -> float:
        return self.seek_ms + self.rotational_ms + self.transfer_ms

    def classify_seek(self, short_threshold: int = 4) -> str:
        """The model's vocabulary for this event's positioning."""
        if self.cylinder_distance == 0:
            return "none"
        if self.cylinder_distance <= short_threshold:
            return "short seek"
        return "seek"

    def __str__(self) -> str:
        return (
            f"[{self.start_ms:9.2f} ms] {self.kind:<11} "
            f"@{self.address:<7} x{self.sectors:<3} "
            f"seek={self.seek_ms:5.1f} rot={self.rotational_ms:5.1f} "
            f"xfer={self.transfer_ms:5.1f}"
        )


@dataclass
class IoTracer:
    """Collects :class:`IoEvent` records from an attached disk."""

    events: list[IoEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: IoEvent) -> None:
        """Append an event (no-op while disabled)."""
        if self.enabled:
            self.events.append(event)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    # ------------------------------------------------------------------
    # aggregation helpers (what the model predicts in aggregate)
    # ------------------------------------------------------------------
    def totals(self) -> dict[str, float]:
        """Aggregate seek/rotation/transfer time over the trace."""
        return {
            "events": len(self.events),
            "seek_ms": sum(e.seek_ms for e in self.events),
            "rotational_ms": sum(e.rotational_ms for e in self.events),
            "transfer_ms": sum(e.transfer_ms for e in self.events),
            "sectors": sum(e.sectors for e in self.events),
        }

    def script(self, short_threshold: int = 4) -> list[str]:
        """The trace rendered in the §6 model's vocabulary."""
        out = []
        for event in self.events:
            parts = []
            seek_kind = event.classify_seek(short_threshold)
            if seek_kind != "none":
                parts.append(seek_kind)
            if event.rotational_ms > 0.01:
                parts.append(f"rotate {event.rotational_ms:.1f} ms")
            parts.append(f"transfer {event.sectors}")
            out.append(f"{event.kind}: " + ", ".join(parts))
        return out
