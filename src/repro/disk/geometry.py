"""Disk geometry: the address arithmetic layer.

The defaults model a Trident T-300-class drive, the disk behind the
paper's "moderately full 300 megabyte file system": roughly 300 MB
formatted, 512-byte sectors, 3600 RPM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiskRangeError


@dataclass(frozen=True)
class DiskGeometry:
    """Cylinder/head/sector geometry of a simulated drive."""

    cylinders: int = 830
    heads: int = 24
    sectors_per_track: int = 30
    sector_bytes: int = 512

    def __post_init__(self) -> None:
        if min(self.cylinders, self.heads, self.sectors_per_track) <= 0:
            raise ValueError("geometry dimensions must be positive")
        if self.sector_bytes <= 0:
            raise ValueError("sector size must be positive")
        # Derived sizes, cached once: the range checks below run on
        # every simulated I/O.
        spc = self.heads * self.sectors_per_track
        object.__setattr__(self, "_sectors_per_cylinder", spc)
        object.__setattr__(self, "_total_sectors", self.cylinders * spc)

    # ------------------------------------------------------------------
    # derived sizes
    # ------------------------------------------------------------------
    @property
    def sectors_per_cylinder(self) -> int:
        return self._sectors_per_cylinder

    @property
    def total_sectors(self) -> int:
        return self._total_sectors

    @property
    def total_bytes(self) -> int:
        return self.total_sectors * self.sector_bytes

    @property
    def central_cylinder(self) -> int:
        """The cylinder FSD clusters its metadata around (paper §5.1)."""
        return self.cylinders // 2

    # ------------------------------------------------------------------
    # address arithmetic
    # ------------------------------------------------------------------
    def check_range(self, address: int, count: int = 1) -> None:
        """Raise DiskRangeError unless [address, address+count) fits the disk."""
        if count <= 0:
            raise DiskRangeError(f"non-positive sector count {count}")
        if address < 0 or address + count > self._total_sectors:
            raise DiskRangeError(
                f"sectors [{address}, {address + count}) outside disk of "
                f"{self._total_sectors} sectors"
            )

    def chs(self, address: int) -> tuple[int, int, int]:
        """Decompose a linear sector address into (cylinder, head, sector)."""
        self.check_range(address)
        cylinder, rest = divmod(address, self._sectors_per_cylinder)
        head, sector = divmod(rest, self.sectors_per_track)
        return cylinder, head, sector

    def address(self, cylinder: int, head: int, sector: int) -> int:
        """Compose a linear sector address from (cylinder, head, sector)."""
        if not (0 <= cylinder < self.cylinders):
            raise DiskRangeError(f"cylinder {cylinder} out of range")
        if not (0 <= head < self.heads):
            raise DiskRangeError(f"head {head} out of range")
        if not (0 <= sector < self.sectors_per_track):
            raise DiskRangeError(f"sector {sector} out of range")
        return (
            cylinder * self.sectors_per_cylinder
            + head * self.sectors_per_track
            + sector
        )

    def cylinder_of(self, address: int) -> int:
        """Cylinder containing linear sector ``address``."""
        self.check_range(address)
        return address // self._sectors_per_cylinder

    def rotational_slot(self, address: int) -> int:
        """Angular position (sector index within the track) of a sector."""
        self.check_range(address)
        return address % self.sectors_per_track

    def cylinder_start(self, cylinder: int) -> int:
        """First linear sector address of ``cylinder``."""
        if not (0 <= cylinder < self.cylinders):
            raise DiskRangeError(f"cylinder {cylinder} out of range")
        return cylinder * self.sectors_per_cylinder


#: Geometry used throughout the benchmarks: ~306 MB formatted, like the
#: paper's 300 MB volume.
TRIDENT_T300 = DiskGeometry(cylinders=830, heads=24, sectors_per_track=30)

#: A small geometry (~19 MB) for fast unit tests.
SMALL_DISK = DiskGeometry(cylinders=100, heads=8, sectors_per_track=16)
