"""Disk-image persistence: save a simulated drive to a real file.

A ``SimDisk`` (sector payloads, label fields, damage flags, geometry)
round-trips through a compact binary image, so a volume can live
across processes — which is what makes the ``python -m repro`` CLI a
usable tool rather than a demo.  The virtual clock is *not* persisted:
a freshly loaded disk starts a new session at time zero, exactly like
powering the machine back on.

Image format (zlib-compressed after the magic):

    magic  "FSDIMG2\\n"
    u32 cylinders, u32 heads, u32 sectors_per_track, u32 sector_bytes
    u32 data_count,   then data_count  x (u32 addr, sector payload)
    u32 label_count,  then label_count x (u32 addr, 16-byte label)
    u32 damage_count, then damage_count x u32 addr
    u32 transient_count, then transient_count x (u32 addr, u16 remaining)
    u32 latent_count, then latent_count x u32 addr

Version 1 images (no transient/latent sections) still load: fault
state beyond ``damaged`` simply starts empty, which is exactly what a
v1 image meant.
"""

from __future__ import annotations

import zlib
from pathlib import Path

from repro.disk.disk import LABEL_BYTES, SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import DiskError
from repro.serial import Packer, Unpacker

_MAGIC = b"FSDIMG2\n"
_MAGIC_V1 = b"FSDIMG1\n"


def save_disk(disk: SimDisk, path: str | Path) -> int:
    """Write ``disk`` to an image file; returns bytes written.

    Mirrored disks are refused: an image holds one unit's state, and
    silently dropping the shadow would turn a redundant volume into a
    plain one.  Resilver and image the primary explicitly if that is
    what you want.
    """
    from repro.disk.mirror import MirroredDisk

    if isinstance(disk, MirroredDisk):
        raise DiskError(
            "disk images hold a single unit; MirroredDisk cannot be "
            "saved without losing its shadow"
        )
    body = Packer()
    geo = disk.geometry
    body.u32(geo.cylinders)
    body.u32(geo.heads)
    body.u32(geo.sectors_per_track)
    body.u32(geo.sector_bytes)

    body.u32(len(disk._data))
    for address in sorted(disk._data):
        body.u32(address)
        body.raw(disk._data[address])
    body.u32(len(disk._labels))
    for address in sorted(disk._labels):
        body.u32(address)
        body.raw(disk._labels[address])
    damaged = sorted(disk.faults.damaged)
    body.u32(len(damaged))
    for address in damaged:
        body.u32(address)
    transient = sorted(disk.faults.transient.items())
    body.u32(len(transient))
    for address, remaining in transient:
        body.u32(address)
        body.u16(remaining)
    latent = sorted(disk.faults.latent)
    body.u32(len(latent))
    for address in latent:
        body.u32(address)

    blob = _MAGIC + zlib.compress(body.bytes(), level=6)
    Path(path).write_bytes(blob)
    return len(blob)


def load_disk(path: str | Path) -> SimDisk:
    """Load a disk image saved by :func:`save_disk`."""
    blob = Path(path).read_bytes()
    if blob.startswith(_MAGIC):
        version = 2
    elif blob.startswith(_MAGIC_V1):
        version = 1
    else:
        raise DiskError(f"{path}: not a repro disk image")
    reader = Unpacker(zlib.decompress(blob[len(_MAGIC):]))
    geometry = DiskGeometry(
        cylinders=reader.u32(),
        heads=reader.u32(),
        sectors_per_track=reader.u32(),
        sector_bytes=reader.u32(),
    )
    disk = SimDisk(geometry=geometry)
    for _ in range(reader.u32()):
        address = reader.u32()
        disk._data[address] = reader.raw(geometry.sector_bytes)
    for _ in range(reader.u32()):
        address = reader.u32()
        disk._labels[address] = reader.raw(LABEL_BYTES)
    for _ in range(reader.u32()):
        disk.faults.damaged.add(reader.u32())
    if version >= 2:
        for _ in range(reader.u32()):
            address = reader.u32()
            disk.faults.transient[address] = reader.u16()
        for _ in range(reader.u32()):
            disk.faults.latent.add(reader.u32())
    return disk
