"""Disk-image persistence: save a simulated drive to a real file.

A ``SimDisk`` (sector payloads, label fields, damage flags, geometry)
round-trips through a compact binary image, so a volume can live
across processes — which is what makes the ``python -m repro`` CLI a
usable tool rather than a demo.  The virtual clock is *not* persisted:
a freshly loaded disk starts a new session at time zero, exactly like
powering the machine back on.

Image format (zlib-compressed after the magic):

    magic  "FSDIMG2\\n"
    u32 cylinders, u32 heads, u32 sectors_per_track, u32 sector_bytes
    u32 data_count,   then data_count  x (u32 addr, sector payload)
    u32 label_count,  then label_count x (u32 addr, 16-byte label)
    u32 damage_count, then damage_count x u32 addr
    u32 transient_count, then transient_count x (u32 addr, u16 remaining)
    u32 latent_count, then latent_count x u32 addr

Version 1 images (no transient/latent sections) still load: fault
state beyond ``damaged`` simply starts empty, which is exactly what a
v1 image meant.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

from repro.disk.disk import LABEL_BYTES, SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import CorruptMetadata, DiskError

_MAGIC = b"FSDIMG2\n"
_MAGIC_V1 = b"FSDIMG1\n"

_GEO = struct.Struct("<IIII")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_ADDR_REMAINING = struct.Struct("<IH")


def save_disk(disk: SimDisk, path: str | Path) -> int:
    """Write ``disk`` to an image file; returns bytes written.

    Mirrored disks are refused: an image holds one unit's state, and
    silently dropping the shadow would turn a redundant volume into a
    plain one.  Resilver and image the primary explicitly if that is
    what you want.
    """
    from repro.disk.mirror import MirroredDisk

    if isinstance(disk, MirroredDisk):
        raise DiskError(
            "disk images hold a single unit; MirroredDisk cannot be "
            "saved without losing its shadow"
        )
    # Extent-batched serialization: one part list joined once, with
    # precompiled structs — the per-sector Packer calls dominated image
    # saves of full-size volumes.
    geo = disk.geometry
    pack32 = _U32.pack
    parts = [
        _GEO.pack(
            geo.cylinders, geo.heads, geo.sectors_per_track, geo.sector_bytes
        ),
        pack32(len(disk._data)),
    ]
    data = disk._data
    for address in sorted(data):
        parts.append(pack32(address))
        parts.append(data[address])
    labels = disk._labels
    parts.append(pack32(len(labels)))
    for address in sorted(labels):
        parts.append(pack32(address))
        parts.append(labels[address])
    damaged = sorted(disk.faults.damaged)
    parts.append(pack32(len(damaged)))
    parts.extend(map(pack32, damaged))
    transient = sorted(disk.faults.transient.items())
    parts.append(pack32(len(transient)))
    parts.extend(
        _ADDR_REMAINING.pack(address, remaining)
        for address, remaining in transient
    )
    latent = sorted(disk.faults.latent)
    parts.append(pack32(len(latent)))
    parts.extend(map(pack32, latent))

    blob = _MAGIC + zlib.compress(b"".join(parts), level=6)
    Path(path).write_bytes(blob)
    return len(blob)


def load_disk(path: str | Path) -> SimDisk:
    """Load a disk image saved by :func:`save_disk`."""
    blob = Path(path).read_bytes()
    if blob.startswith(_MAGIC):
        version = 2
    elif blob.startswith(_MAGIC_V1):
        version = 1
    else:
        raise DiskError(f"{path}: not a repro disk image")
    buf = zlib.decompress(blob[len(_MAGIC):])
    size = len(buf)

    def need(offset: int, count: int) -> None:
        if offset + count > size:
            raise CorruptMetadata(
                f"truncated structure: wanted {count} bytes at "
                f"offset {offset} of {size}"
            )

    need(0, _GEO.size)
    cylinders, heads, sectors_per_track, sector_bytes = _GEO.unpack_from(
        buf, 0
    )
    offset = _GEO.size
    geometry = DiskGeometry(
        cylinders=cylinders,
        heads=heads,
        sectors_per_track=sectors_per_track,
        sector_bytes=sector_bytes,
    )
    disk = SimDisk(geometry=geometry)
    unpack32 = _U32.unpack_from

    need(offset, 4)
    (count,) = unpack32(buf, offset)
    offset += 4
    record = 4 + sector_bytes
    need(offset, count * record)
    data = disk._data
    for _ in range(count):
        (address,) = unpack32(buf, offset)
        data[address] = buf[offset + 4:offset + record]
        offset += record

    need(offset, 4)
    (count,) = unpack32(buf, offset)
    offset += 4
    record = 4 + LABEL_BYTES
    need(offset, count * record)
    labels = disk._labels
    for _ in range(count):
        (address,) = unpack32(buf, offset)
        labels[address] = buf[offset + 4:offset + record]
        offset += record

    need(offset, 4)
    (count,) = unpack32(buf, offset)
    offset += 4
    need(offset, count * 4)
    disk.faults.damaged.update(
        unpack32(buf, offset + 4 * index)[0] for index in range(count)
    )
    offset += count * 4

    if version >= 2:
        need(offset, 4)
        (count,) = unpack32(buf, offset)
        offset += 4
        need(offset, count * 6)
        transient = disk.faults.transient
        for _ in range(count):
            address, remaining = _ADDR_REMAINING.unpack_from(buf, offset)
            transient[address] = remaining
            offset += 6
        need(offset, 4)
        (count,) = unpack32(buf, offset)
        offset += 4
        need(offset, count * 4)
        disk.faults.latent.update(
            unpack32(buf, offset + 4 * index)[0] for index in range(count)
        )
    return disk
