"""Fault injection for the paper's failure model.

FSD's failure model (§5.3): at most one fault at a time, damaging one
or two *consecutive* sectors; multi-sector writes are weakly atomic —
when writing the last two pages, either both transfer, the last is
detectably damaged, or both are detectably damaged.  The injector can:

* mark 1–2 consecutive sectors detectably damaged (media flaw),
* arm a crash at a chosen point in the I/O stream, tearing the
  in-flight write exactly per the weak-atomic model,
* perform a "wild write" (memory smash scribbling on a sector without
  marking it damaged — only software cross-checks can catch it).

Beyond the paper's single-fault model, the injector also distinguishes
*transient* faults (a read fails a bounded number of times, then the
sector reads fine — dust, marginal servo; the ladder's retry rung
absorbs these) and *latent* faults (the sector is already bad but
nobody knows until the next read surfaces it as permanent damage —
this is what makes multi-fault windows real: a latent fault planted
long ago can surface while recovering from a fresh one).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CrashPlan:
    """An armed crash.

    ``after_ios`` counts down on every disk operation; when it reaches
    zero the operation in progress raises ``SimulatedCrash``.  If that
    operation is a write, ``surviving_sectors`` of it persist first and
    ``damage_tail`` controls how many trailing sectors (0, 1 or 2) of
    the persisted boundary are detectably damaged.
    """

    after_ios: int = 0
    surviving_sectors: int | None = None  # None: all sectors persist
    damage_tail: int = 1

    def __post_init__(self) -> None:
        if self.damage_tail not in (0, 1, 2):
            raise ValueError("damage_tail must be 0, 1 or 2 (paper's model)")


@dataclass
class FaultInjector:
    """Mutable fault state consulted by :class:`~repro.disk.disk.SimDisk`."""

    damaged: set[int] = field(default_factory=set)
    #: transient faults: address -> remaining reads that will fail.
    transient: dict[int, int] = field(default_factory=dict)
    #: latent faults: bad already, surfaced (-> ``damaged``) on next read.
    latent: set[int] = field(default_factory=set)
    crash_plan: CrashPlan | None = None
    injected_media_faults: int = 0
    injected_transient_faults: int = 0
    injected_latent_faults: int = 0
    injected_wild_writes: int = 0
    transient_reads_failed: int = 0
    latent_surfaced: int = 0
    crashes_fired: int = 0

    # ------------------------------------------------------------------
    # media faults
    # ------------------------------------------------------------------
    def damage(self, address: int, count: int = 1) -> None:
        """Mark ``count`` (1 or 2) consecutive sectors detectably damaged."""
        if count not in (1, 2):
            raise ValueError(
                "the paper's failure model damages 1 or 2 consecutive sectors"
            )
        for offset in range(count):
            self.damaged.add(address + offset)
        self.injected_media_faults += 1

    def damage_transient(self, address: int, failures: int = 1) -> None:
        """The next ``failures`` reads of ``address`` fail; later reads
        succeed (the retry rung of the escalation ladder absorbs these)."""
        if failures < 1:
            raise ValueError("a transient fault must fail at least one read")
        self.transient[address] = failures
        self.injected_transient_faults += 1

    def damage_latent(self, address: int) -> None:
        """Mark ``address`` latently bad: it becomes permanent damage
        the moment it is next read (until then nothing knows)."""
        self.latent.add(address)
        self.injected_latent_faults += 1

    def repair(self, address: int) -> None:
        """A successful rewrite of a damaged sector repairs it —
        permanent, transient and latent faults alike."""
        self.damaged.discard(address)
        self.transient.pop(address, None)
        self.latent.discard(address)

    def is_damaged(self, address: int) -> bool:
        """True when ``address`` is detectably damaged (permanently)."""
        return address in self.damaged

    @property
    def any_read_faults(self) -> bool:
        """True when *some* sector somewhere could fail a read.

        The batched-consult guard: when False (the common case), an
        extent read skips the per-sector :meth:`read_fails` consult
        entirely — one truth-value test instead of N dict probes.
        """
        return bool(self.damaged or self.transient or self.latent)

    def repair_range(self, address: int, count: int) -> None:
        """Repair every sector of an extent write in one consult.

        Equivalent to calling :meth:`repair` per sector; when no fault
        of any kind is armed it is a single truth-value test.
        """
        if not (self.damaged or self.transient or self.latent):
            return
        for sector in range(address, address + count):
            self.damaged.discard(sector)
            self.transient.pop(sector, None)
            self.latent.discard(sector)

    def read_fails(self, address: int) -> bool:
        """Consult (and advance) fault state for one sector read.

        Latent faults surface into permanent damage; transient faults
        consume one failing read.  Returns True when the read must
        report the sector damaged.
        """
        if address in self.latent:
            self.latent.discard(address)
            self.damaged.add(address)
            self.latent_surfaced += 1
            return True
        if address in self.damaged:
            return True
        remaining = self.transient.get(address)
        if remaining is not None:
            self.transient_reads_failed += 1
            if remaining <= 1:
                del self.transient[address]
            else:
                self.transient[address] = remaining - 1
            return True
        return False

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------
    def arm_crash(
        self,
        after_ios: int = 0,
        surviving_sectors: int | None = None,
        damage_tail: int = 1,
    ) -> None:
        """Arm a crash ``after_ios`` further disk operations from now."""
        self.crash_plan = CrashPlan(
            after_ios=after_ios,
            surviving_sectors=surviving_sectors,
            damage_tail=damage_tail,
        )

    def disarm_crash(self) -> None:
        """Cancel any armed crash plan."""
        self.crash_plan = None

    def counters(self) -> dict[str, int]:
        """Lifetime injection/surface counters as a plain dict (the
        chaos report embeds this so a campaign's fault mix is part of
        the artifact)."""
        return {
            "injected_media_faults": self.injected_media_faults,
            "injected_transient_faults": self.injected_transient_faults,
            "injected_latent_faults": self.injected_latent_faults,
            "injected_wild_writes": self.injected_wild_writes,
            "transient_reads_failed": self.transient_reads_failed,
            "latent_surfaced": self.latent_surfaced,
            "crashes_fired": self.crashes_fired,
        }

    def crash_due(self) -> CrashPlan | None:
        """Count down an armed crash; return the plan when it fires."""
        plan = self.crash_plan
        if plan is None:
            return None
        if plan.after_ios > 0:
            plan.after_ios -= 1
            return None
        self.crash_plan = None
        self.crashes_fired += 1
        return plan
