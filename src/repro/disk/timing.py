"""Disk timing model: the quantities the paper's §6 model is built on.

The paper's analytical model scripts operations in terms of *seeks*,
*short seeks* (a few cylinders), *latencies* (half a revolution),
*lost revolutions*, and *transfer time*.  This module defines those
quantities for the simulator, and the analytic model in
:mod:`repro.model` evaluates its scripts against the very same object,
so model-vs-simulation validation compares like with like.

Seek time follows the classic settle-plus-square-root curve; the
default constants give ~6 ms track-to-track, ~30 ms average, ~50 ms
full stroke — a late-1970s Trident-class drive at 3600 RPM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DiskTiming:
    """Timing constants of a simulated drive."""

    rotation_ms: float = 16.67
    seek_settle_ms: float = 5.5       # fixed cost of any head motion
    seek_coeff_ms: float = 1.55       # multiplies sqrt(cylinder distance)
    head_switch_ms: float = 0.30      # select a different head, same cylinder
    #: Cylinder distance at or under which a seek counts as "short"
    #: in the paper's model ("a few cylinders").
    short_seek_cylinders: int = 4

    def __post_init__(self) -> None:
        # Memo tables (plain dicts, not dataclass fields, so equality
        # and repr are untouched).  Entries hold exactly the float the
        # formula below would produce, so memoised timing is
        # bit-identical to computed timing.
        object.__setattr__(self, "_seek_table", {})
        object.__setattr__(self, "_slot_angle_table", {})

    # ------------------------------------------------------------------
    # primitive times (the model's vocabulary)
    # ------------------------------------------------------------------
    def seek_ms(self, cylinder_distance: int) -> float:
        """Time to move the heads ``cylinder_distance`` cylinders."""
        table = self._seek_table
        cached = table.get(cylinder_distance)
        if cached is not None:
            return cached
        if cylinder_distance < 0:
            raise ValueError("negative cylinder distance")
        if cylinder_distance == 0:
            value = 0.0
        else:
            value = self.seek_settle_ms + self.seek_coeff_ms * math.sqrt(
                cylinder_distance
            )
        table[cylinder_distance] = value
        return value

    @property
    def short_seek_ms(self) -> float:
        """Representative "short seek" (a few cylinders) used by scripts."""
        return self.seek_ms(self.short_seek_cylinders)

    @property
    def average_seek_ms(self) -> float:
        """Seek over one third of the stroke of an 830-cylinder drive,
        the usual random-seek approximation."""
        return self.seek_ms(830 // 3)

    @property
    def latency_ms(self) -> float:
        """Average rotational latency: half a revolution."""
        return self.rotation_ms / 2.0

    @property
    def revolution_ms(self) -> float:
        return self.rotation_ms

    def sector_time_ms(self, sectors_per_track: int) -> float:
        """Time for one sector to pass under the head."""
        return self.rotation_ms / sectors_per_track

    def transfer_ms(self, sector_count: int, sectors_per_track: int) -> float:
        """Media transfer time for ``sector_count`` contiguous sectors.

        Track and cylinder switches during a long transfer are assumed
        to be hidden by track skew (as formatted drives of the era did),
        so a contiguous run transfers at the full media rate.
        """
        if sector_count < 0:
            raise ValueError("negative sector count")
        return sector_count * self.sector_time_ms(sectors_per_track)

    def track_bandwidth_bytes_per_ms(
        self, sectors_per_track: int, sector_bytes: int
    ) -> float:
        """Raw media bandwidth: one track per revolution."""
        return sectors_per_track * sector_bytes / self.rotation_ms

    # ------------------------------------------------------------------
    # rotational position
    # ------------------------------------------------------------------
    def angle_at(self, now_ms: float) -> float:
        """Angular position of the platter at ``now_ms``, in fractions
        of a revolution (the platter never stops spinning)."""
        return (now_ms % self.rotation_ms) / self.rotation_ms

    def rotational_wait_ms(
        self, now_ms: float, target_slot: int, sectors_per_track: int
    ) -> float:
        """Time until the start of sector ``target_slot`` is under the head."""
        key = (target_slot, sectors_per_track)
        table = self._slot_angle_table
        target_angle = table.get(key)
        if target_angle is None:
            target_angle = target_slot / sectors_per_track
            table[key] = target_angle
        rotation = self.rotation_ms
        current_angle = (now_ms % rotation) / rotation
        wait = (target_angle - current_angle) % 1.0
        return wait * rotation


#: Timing used throughout the benchmarks.
TRIDENT_TIMING = DiskTiming()
