"""I/O accounting.

The paper's Tables 3 and 4 are measured in "disk I/O's": one I/O is one
disk operation regardless of how many contiguous sectors it transfers
(a 33-sector log record write is a single I/O).  :class:`DiskStats`
counts both I/Os and sectors, plus a breakdown of where the time went,
so benchmarks can report either metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class DiskStats:
    """Cumulative disk counters; subtract snapshots to get deltas."""

    reads: int = 0
    writes: int = 0
    label_reads: int = 0
    label_writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    seek_ms: float = 0.0
    rotational_ms: float = 0.0
    transfer_ms: float = 0.0
    seeks: int = 0
    short_seeks: int = 0

    @property
    def total_ios(self) -> int:
        """Total disk operations (data + label-only I/Os)."""
        return self.reads + self.writes + self.label_reads + self.label_writes

    @property
    def data_ios(self) -> int:
        return self.reads + self.writes

    @property
    def busy_ms(self) -> float:
        return self.seek_ms + self.rotational_ms + self.transfer_ms

    def copy(self) -> "DiskStats":
        """Independent snapshot of the counters."""
        return DiskStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, float]:
        """All counters (plus total_ios) as a plain dict."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["total_ios"] = self.total_ios
        return data


@dataclass
class StatsWindow:
    """Convenience: measure counter deltas across a code region.

    >>> window = StatsWindow(disk.stats)
    >>> ...  # run the workload
    >>> delta = window.delta(disk.stats)
    """

    start: DiskStats = field(default_factory=DiskStats)

    def __post_init__(self) -> None:
        self.start = self.start.copy()

    def delta(self, current: DiskStats) -> DiskStats:
        """Counters accumulated since the window opened."""
        return current - self.start
