"""Mirrored (shadowed) disks — the paper's §3 pointer for massive
failures.

"Massive failures (e.g., a head crash) are non-recoverable, except
from backup.  Mirrored hardware could be used to guard against massive
failures [Lamp79b]."  Lampson & Sturgis' shadowed-disk design pairs
two drives behind one controller: writes go to both units, reads are
served by either, and the loss of an entire unit loses nothing.

``MirroredDisk`` extends the simulator accordingly:

* every write lands on both units (the units are duplexed and seek in
  lock-step, so a shadowed write costs one positioning pass — the
  classic dual-ported controller assumption; stated here because it is
  a modelling choice);
* a read whose primary sector is damaged recovers from the mirror at
  the cost of one extra positioning + transfer, and repairs the
  primary in place;
* :meth:`massive_failure` kills a whole unit; the volume keeps
  operating on the survivor, and :meth:`resilver` rebuilds the dead
  unit from the live one.
"""

from __future__ import annotations

from repro.disk.disk import FREE_LABEL, SimDisk
from repro.disk.faults import FaultInjector
from repro.errors import DiskError
from repro.obs import NULL_OBS


class MirroredDisk(SimDisk):
    """A shadowed pair of simulated drives presented as one."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.mirror_faults = FaultInjector()
        self._mirror_data: dict[int, bytes] = {}
        self._mirror_labels: dict[int, bytes] = {}
        self._unit_a_dead = False
        self._unit_b_dead = False
        self.mirror_recoveries = 0
        #: observability attach point (``FSD.attach_observer`` rebinds it).
        self.obs = NULL_OBS

    # ------------------------------------------------------------------
    # failure control
    # ------------------------------------------------------------------
    def massive_failure(self, unit: str) -> None:
        """Lose an entire unit (head crash).  ``unit`` is "a" (the
        primary) or "b" (the mirror)."""
        if unit == "a":
            if self._unit_b_dead:
                raise DiskError("both units dead: volume unrecoverable")
            self._unit_a_dead = True
        elif unit == "b":
            if self._unit_a_dead:
                raise DiskError("both units dead: volume unrecoverable")
            self._unit_b_dead = True
        else:
            raise ValueError(f"unknown unit {unit!r}")
        self.obs.count("mirror.massive_failures")
        self.obs.gauge("mirror.unit_a_dead", int(self._unit_a_dead))
        self.obs.gauge("mirror.unit_b_dead", int(self._unit_b_dead))

    def resilver(self) -> int:
        """Rebuild the dead unit from the survivor (a full-disk copy
        pass); returns sectors copied.  Timing: one sequential read of
        the live unit plus the lock-step write."""
        if not (self._unit_a_dead or self._unit_b_dead):
            return 0
        geo = self.geometry
        copied = 0
        per_io = 120
        for start in range(0, geo.total_sectors, per_io):
            count = min(per_io, geo.total_sectors - start)
            self._position(start)
            self._transfer(start, count)  # read live + write dead, lock-step
            copied += count
        if self._unit_a_dead:
            self._data = dict(self._mirror_data)
            self._labels = dict(self._mirror_labels)
            self.faults.damaged.clear()
        else:
            self._mirror_data = dict(self._data)
            self._mirror_labels = dict(self._labels)
            self.mirror_faults.damaged.clear()
        self._unit_a_dead = False
        self._unit_b_dead = False
        self.obs.count("mirror.resilvers")
        self.obs.count("mirror.resilver_sectors", copied)
        self.obs.gauge("mirror.unit_a_dead", 0)
        self.obs.gauge("mirror.unit_b_dead", 0)
        return copied

    @property
    def degraded(self) -> bool:
        return self._unit_a_dead or self._unit_b_dead

    # ------------------------------------------------------------------
    # shadowed I/O
    # ------------------------------------------------------------------
    def write(self, address, sectors, expect_labels=None, set_labels=None,
              cpu_overlap=False):
        """Shadowed write.

        Per Lampson & Sturgis' careful-replacement discipline the two
        units are written in order, never simultaneously — so a crash
        tears at most the primary, and the mirror still holds the *old*
        values.  A later read of a torn primary sector therefore
        recovers old data (never garbage), which is exactly the
        old-or-new guarantee FSD's log-record validation is built on.
        """
        super().write(
            address, sectors,
            expect_labels=expect_labels,
            set_labels=set_labels,
            cpu_overlap=cpu_overlap,
        )
        # The shadow write happens in lock-step on the second unit —
        # extent-batched like the primary install.
        if not self._unit_b_dead:
            count = len(sectors)
            self._mirror_data.update(
                zip(range(address, address + count), map(self._pad, sectors))
            )
            if set_labels is not None:
                labels = self._labels
                self._mirror_labels.update(
                    (a, labels[a]) for a in range(address, address + count)
                )
            self.mirror_faults.repair_range(address, count)

    def read_maybe(self, address, count=1, expect_labels=None,
                   cpu_overlap=False):
        sectors = super().read_maybe(
            address, count, expect_labels=expect_labels,
            cpu_overlap=cpu_overlap,
        )
        if not self._unit_a_dead and None not in sectors:
            # Fast path: primary healthy, nothing to shadow-read.
            return sectors
        out = []
        repairs: list[tuple[int, bytes]] = []
        unit_a_dead = self._unit_a_dead
        mirror_data = self._mirror_data
        for offset, sector in enumerate(sectors):
            sector_address = address + offset
            if not (unit_a_dead or sector is None):
                out.append(sector)
                continue
            if self._unit_b_dead or self.mirror_faults.is_damaged(
                sector_address
            ):
                out.append(None)  # both sides bad
                continue
            recovered = mirror_data.get(sector_address, self._zero())
            out.append(recovered)
            if not unit_a_dead:
                repairs.append((sector_address, recovered))
        if repairs:
            # The primary is alive but had damaged sectors: one extra
            # positioning pass reads the mirror, and the good copies
            # are repaired onto the primary in place (extent-batched).
            self._position(address)
            self._transfer(address, count)
            self.mirror_recoveries += 1
            self.obs.count("mirror.recoveries")
            self._data.update(repairs)
            for sector_address, _ in repairs:
                self.faults.repair(sector_address)
                self.obs.count("mirror.repairs")
        # A dead primary costs nothing extra: the read was simply
        # served by the mirror unit's identical positioning pass.
        return out

    def write_labels(self, address, labels):
        """Label writes are shadowed too (CFS on mirrored hardware)."""
        super().write_labels(address, labels)
        if not self._unit_b_dead:
            stored = self._labels
            self._mirror_labels.update(
                (a, stored[a])
                for a in range(address, address + len(labels))
            )

    def peek_mirror(self, address: int) -> bytes:
        """Inspect the shadow copy (tests only)."""
        self.geometry.check_range(address)
        return self._mirror_data.get(address, self._zero())

    def peek_mirror_label(self, address: int) -> bytes:
        """Inspect the shadow label (tests only)."""
        self.geometry.check_range(address)
        return self._mirror_labels.get(address, FREE_LABEL)
