"""The simulated disk.

``SimDisk`` stores sector payloads and (optionally) Trident-style label
fields, and charges every operation with physically derived timing:
seek to the target cylinder, rotational wait for the target sector,
then media transfer — against the shared :class:`SimClock`.  Because
the platter keeps spinning between operations, effects the paper's
model cares about arise naturally: a read-then-rewrite of the same
sector loses a revolution, sequential reads stream at media rate, and
CPU time spent between block reads makes the next block's start slip
past the head (the 4.2 BSD bandwidth problem of Table 5).

One call to :meth:`read`/:meth:`write` is one disk I/O regardless of
sector count, matching how the paper counts I/Os (a 33-sector log
record write is one I/O).
"""

from __future__ import annotations

from repro.disk.clock import SimClock
from repro.disk.faults import FaultInjector
from repro.disk.geometry import DiskGeometry
from repro.disk.stats import DiskStats
from repro.disk.timing import DiskTiming
from repro.disk.trace import IoEvent, IoTracer
from repro.errors import (
    DamagedSectorError,
    DiskRangeError,
    LabelCheckError,
    SimulatedCrash,
)

#: Label fields are fixed width (the Trident hardware compared them in
#: microcode); 16 bytes holds the CFS (uid, page number, page type).
LABEL_BYTES = 16

FREE_LABEL = b"\x00" * LABEL_BYTES


class SimDisk:
    """A sector-addressed simulated drive with labels and fault injection."""

    def __init__(
        self,
        geometry: DiskGeometry | None = None,
        timing: DiskTiming | None = None,
        clock: SimClock | None = None,
        faults: FaultInjector | None = None,
        charge_cpu: bool = True,
    ):
        self.geometry = geometry or DiskGeometry()
        self.timing = timing or DiskTiming()
        self.clock = clock or SimClock()
        self.faults = faults or FaultInjector()
        self.stats = DiskStats()
        self.head_cylinder = 0
        self.charge_cpu = charge_cpu
        #: attach an :class:`IoTracer` to record per-operation timing
        #: decomposed the way the paper's model scripts it.
        self.tracer: IoTracer | None = None
        self._data: dict[int, bytes] = {}
        self._labels: dict[int, bytes] = {}
        self._zero_sector = b"\x00" * self.geometry.sector_bytes
        # Geometry is frozen; cache the derived integers the per-I/O
        # prologue needs so the hot path does no property dispatch.
        geo = self.geometry
        self._spc = geo.sectors_per_cylinder
        self._spt = geo.sectors_per_track
        self._total = geo.total_sectors
        self._sector_bytes = geo.sector_bytes
        #: count -> media transfer time.  Timing and geometry are both
        #: frozen, so the entry is exactly what ``timing.transfer_ms``
        #: returns for that count (computed through it once).
        self._xfer_memo: dict[int, float] = {}
        #: slot -> target rotational angle: the same ``slot / spt``
        #: division ``timing.rotational_wait_ms`` performs, precomputed
        #: for every slot of this (frozen) geometry.
        self._angles = [slot / self._spt for slot in range(self._spt)]

    # ------------------------------------------------------------------
    # positioning and timing
    # ------------------------------------------------------------------
    def _position(self, address: int) -> None:
        """Seek to the target cylinder and wait for the target sector.

        ``address`` was range-checked by the caller's prologue, so the
        cylinder/slot arithmetic is inlined (no re-validation).
        """
        timing = self.timing
        clock, stats = self.clock, self.stats
        target_cylinder = address // self._spc
        distance = abs(target_cylinder - self.head_cylinder)
        # clock.advance_disk inlined below: seek and rotational waits
        # are non-negative by construction and this prologue runs for
        # every simulated I/O.
        if distance:
            seek = timing.seek_ms(distance)
            clock.now_ms += seek
            clock.disk_busy_ms += seek
            stats.seek_ms += seek
            if distance <= timing.short_seek_cylinders:
                stats.short_seeks += 1
            else:
                stats.seeks += 1
            self.head_cylinder = target_cylinder
        spt = self._spt
        wait = timing.rotational_wait_ms(clock.now_ms, address % spt, spt)
        clock.now_ms += wait
        clock.disk_busy_ms += wait
        stats.rotational_ms += wait

    def _transfer(self, address: int, count: int) -> None:
        memo = self._xfer_memo
        time = memo.get(count)
        if time is None:
            time = self.timing.transfer_ms(count, self._spt)
            memo[count] = time
        clock = self.clock
        clock.now_ms += time
        clock.disk_busy_ms += time
        self.stats.transfer_ms += time
        self.head_cylinder = (address + count - 1) // self._spc

    def _trace_begin(self, address: int) -> tuple[float, float, float, int, float] | None:
        if self.tracer is None:
            return None
        return (
            self.stats.seek_ms,
            self.stats.rotational_ms,
            self.stats.transfer_ms,
            abs(self.geometry.cylinder_of(address) - self.head_cylinder),
            self.clock.now_ms,
        )

    def _trace_end(
        self, marker, kind: str, address: int, count: int
    ) -> None:
        if marker is None or self.tracer is None:
            return
        seek0, rot0, xfer0, distance, start_ms = marker
        self.tracer.record(
            IoEvent(
                kind=kind,
                address=address,
                sectors=count,
                cylinder_distance=distance,
                seek_ms=self.stats.seek_ms - seek0,
                rotational_ms=self.stats.rotational_ms - rot0,
                transfer_ms=self.stats.transfer_ms - xfer0,
                start_ms=start_ms,
            )
        )

    def _cpu_for_io(self, sectors: int, cpu_overlap: bool) -> None:
        if not self.charge_cpu:
            return
        clock = self.clock
        cpu = clock.cpu
        setup_ms = cpu.io_setup_ms
        clock.now_ms += setup_ms
        clock.cpu_busy_ms += setup_ms
        copy_ms = cpu.per_sector_copy_ms * sectors
        if cpu_overlap:
            # Streaming transfers: the copy overlaps the media transfer
            # (DMA), so it costs CPU but not elapsed time.
            clock.cpu_busy_ms += copy_ms
        else:
            clock.now_ms += copy_ms
            clock.cpu_busy_ms += copy_ms

    def _begin_io(
        self, address: int, count: int, is_write: bool, cpu_overlap: bool
    ):
        """Common prologue: range check, crash countdown, CPU, positioning.

        Returns the crash plan if this very operation must crash.
        """
        # check_range inlined for the in-bounds case; the slow call
        # keeps the exact error text for the raising paths.
        if count <= 0 or address < 0 or address + count > self._total:
            self.geometry.check_range(address, count)
        faults = self.faults
        # crash_due() inlined for the unarmed case (every I/O pays it).
        plan = None if faults.crash_plan is None else faults.crash_due()
        self._cpu_for_io(count, cpu_overlap)
        self._position(address)
        if plan is not None and not is_write:
            # A crash during a read destroys no state; it just stops
            # the machine mid-operation.
            raise SimulatedCrash(f"crash during read of sector {address}")
        return plan

    # ------------------------------------------------------------------
    # data I/O
    # ------------------------------------------------------------------
    def read(
        self,
        address: int,
        count: int = 1,
        expect_labels: list[bytes] | None = None,
        cpu_overlap: bool = False,
    ) -> list[bytes]:
        """Read ``count`` contiguous sectors; damaged sectors raise.

        ``expect_labels`` requests the Trident microcode check: each
        sector's stored label is compared before its data transfers.
        ``cpu_overlap`` marks a streaming transfer whose copy cost
        overlaps the media transfer.
        """
        sectors = self.read_maybe(address, count, expect_labels, cpu_overlap)
        if None in sectors:
            for offset, sector in enumerate(sectors):
                if sector is None:
                    raise DamagedSectorError(address + offset)
        return sectors  # type: ignore[return-value]

    def read_maybe(
        self,
        address: int,
        count: int = 1,
        expect_labels: list[bytes] | None = None,
        cpu_overlap: bool = False,
    ) -> list[bytes | None]:
        """Read sectors, returning ``None`` for detectably damaged ones.

        Recovery code (double-read of the name table, log scanning)
        uses this form so that damage is data, not control flow.
        """
        if expect_labels is not None and len(expect_labels) != count:
            raise DiskRangeError("expect_labels length != sector count")
        marker = self._trace_begin(address) if self.tracer is not None else None
        # The read prologue below is ``_begin_io`` + ``_transfer``
        # inlined: reads are the hottest simulated operation, and one
        # frame covers range check, crash countdown, CPU charge, seek,
        # rotational wait and media transfer.  Keep in sync with the
        # method bodies above (writes and label I/O still call them).
        if count <= 0 or address < 0 or address + count > self._total:
            self.geometry.check_range(address, count)
        faults = self.faults
        plan = None if faults.crash_plan is None else faults.crash_due()
        clock, stats, timing = self.clock, self.stats, self.timing
        if self.charge_cpu:
            cpu = clock.cpu
            setup_ms = cpu.io_setup_ms
            clock.now_ms += setup_ms
            clock.cpu_busy_ms += setup_ms
            copy_ms = cpu.per_sector_copy_ms * count
            if cpu_overlap:
                clock.cpu_busy_ms += copy_ms
            else:
                clock.now_ms += copy_ms
                clock.cpu_busy_ms += copy_ms
        target_cylinder = address // self._spc
        distance = abs(target_cylinder - self.head_cylinder)
        if distance:
            # seek_ms memo-hit inlined; a miss computes (and caches)
            # through the method, so values stay bit-identical.
            seek = timing._seek_table.get(distance)
            if seek is None:
                seek = timing.seek_ms(distance)
            clock.now_ms += seek
            clock.disk_busy_ms += seek
            stats.seek_ms += seek
            if distance <= timing.short_seek_cylinders:
                stats.short_seeks += 1
            else:
                stats.seeks += 1
            self.head_cylinder = target_cylinder
        # rotational_wait_ms inlined, float op for float op.
        spt = self._spt
        target_angle = self._angles[address % spt]
        rotation = timing.rotation_ms
        current_angle = (clock.now_ms % rotation) / rotation
        wait = ((target_angle - current_angle) % 1.0) * rotation
        clock.now_ms += wait
        clock.disk_busy_ms += wait
        stats.rotational_ms += wait
        if plan is not None:
            raise SimulatedCrash(f"crash during read of sector {address}")
        memo = self._xfer_memo
        time = memo.get(count)
        if time is None:
            time = timing.transfer_ms(count, spt)
            memo[count] = time
        clock.now_ms += time
        clock.disk_busy_ms += time
        stats.transfer_ms += time
        self.head_cylinder = (address + count - 1) // self._spc
        if marker is not None:
            self._trace_end(marker, "read", address, count)
        stats.reads += 1
        stats.sectors_read += count
        data = self._data
        # any_read_faults inlined (same truth test, no property frame).
        if not (faults.damaged or faults.transient or faults.latent):
            # The batched fast path: no fault anywhere can fail a read,
            # so the extent needs no per-sector consult at all.
            if expect_labels is not None:
                labels = self._labels
                for offset in range(count):
                    sector_address = address + offset
                    stored = labels.get(sector_address, FREE_LABEL)
                    if stored != _pad_label(expect_labels[offset]):
                        raise LabelCheckError(
                            sector_address, expect_labels[offset], stored
                        )
            zero = self._zero_sector
            return [data.get(a, zero) for a in range(address, address + count)]
        # Faults armed: consult per sector, label checks interleaved in
        # address order exactly as the microcode would hit them.
        out: list[bytes | None] = []
        for offset in range(count):
            sector_address = address + offset
            if expect_labels is not None:
                stored = self._labels.get(sector_address, FREE_LABEL)
                if stored != _pad_label(expect_labels[offset]):
                    raise LabelCheckError(
                        sector_address, expect_labels[offset], stored
                    )
            if self.faults.read_fails(sector_address):
                out.append(None)
            else:
                out.append(data.get(sector_address, self._zero()))
        return out

    def write(
        self,
        address: int,
        sectors: list[bytes],
        expect_labels: list[bytes] | None = None,
        set_labels: list[bytes] | None = None,
        cpu_overlap: bool = False,
    ) -> None:
        """Write contiguous sectors, optionally verifying/rewriting labels.

        A successful write of a damaged sector repairs it.  If an armed
        crash fires during this write, a prefix of the sectors persists
        and the boundary is damaged per the paper's weak-atomic model;
        ``SimulatedCrash`` is raised.
        """
        count = len(sectors)
        if count == 0:
            raise DiskRangeError("empty write")
        sector_bytes = self._sector_bytes
        # max(map(len, ...)) keeps the common all-valid case in C code;
        # the Python loop only runs to find the offender for the error.
        if max(map(len, sectors)) > sector_bytes:
            for sector in sectors:
                if len(sector) > sector_bytes:
                    raise DiskRangeError(
                        f"sector payload of {len(sector)} bytes > "
                        f"{sector_bytes}"
                    )
        if expect_labels is not None and len(expect_labels) != count:
            raise DiskRangeError("expect_labels length != sector count")
        if set_labels is not None and len(set_labels) != count:
            raise DiskRangeError("set_labels length != sector count")

        marker = self._trace_begin(address)
        plan = self._begin_io(
            address, count, is_write=True, cpu_overlap=cpu_overlap
        )

        if expect_labels is not None:
            for offset in range(count):
                stored = self._labels.get(address + offset, FREE_LABEL)
                expected = _pad_label(expect_labels[offset])
                if stored != expected:
                    raise LabelCheckError(address + offset, expected, stored)

        persist = count
        if plan is not None:
            persist = (
                count
                if plan.surviving_sectors is None
                else min(plan.surviving_sectors, count)
            )
            # Time passes only for what actually hit the platter.
            self._transfer(address, max(persist, 1))
        else:
            self._transfer(address, count)

        self._trace_end(marker, "write", address, persist if plan else count)
        self.stats.writes += 1
        self.stats.sectors_written += persist
        # Extent-batched install: one dict update per extent, labels
        # alongside, and a single batched fault consult (a no-op truth
        # test when nothing is armed).
        self._data.update(
            zip(
                range(address, address + persist),
                [s.ljust(sector_bytes, b"\x00") for s in sectors],
            )
        )
        if set_labels is not None:
            labels = self._labels
            for offset in range(persist):
                labels[address + offset] = _pad_label(set_labels[offset])
        self.faults.repair_range(address, persist)

        if plan is not None:
            for offset in range(plan.damage_tail):
                victim = address + persist + offset
                if victim < min(
                    address + count, self.geometry.total_sectors
                ):
                    self.faults.damaged.add(victim)
            raise SimulatedCrash(
                f"crash during write at sector {address} "
                f"({persist}/{count} sectors persisted)"
            )

    # ------------------------------------------------------------------
    # label-only I/O (Trident / CFS)
    # ------------------------------------------------------------------
    def read_labels(self, address: int, count: int = 1) -> list[bytes]:
        """Read only the label fields of ``count`` sectors (one I/O)."""
        marker = self._trace_begin(address)
        self._begin_io(address, count, is_write=False, cpu_overlap=False)
        self._transfer(address, count)
        self._trace_end(marker, "label_read", address, count)
        self.stats.label_reads += 1
        return [
            self._labels.get(address + offset, FREE_LABEL)
            for offset in range(count)
        ]

    def write_labels(self, address: int, labels: list[bytes]) -> None:
        """Rewrite only the label fields (claim/free pages in CFS)."""
        count = len(labels)
        if count == 0:
            raise DiskRangeError("empty label write")
        marker = self._trace_begin(address)
        plan = self._begin_io(address, count, is_write=True, cpu_overlap=False)
        self._transfer(address, count)
        self._trace_end(marker, "label_write", address, count)
        self.stats.label_writes += 1
        for offset in range(count):
            self._labels[address + offset] = _pad_label(labels[offset])
        if plan is not None:
            raise SimulatedCrash(f"crash during label write at {address}")

    # ------------------------------------------------------------------
    # out-of-band access (no timing, no counters): test/tooling only
    # ------------------------------------------------------------------
    def peek(self, address: int) -> bytes:
        """Inspect a sector without simulating an I/O (tests only)."""
        self.geometry.check_range(address)
        return self._data.get(address, self._zero())

    def poke(self, address: int, data: bytes) -> None:
        """Scribble on a sector without an I/O: a wild write / memory
        smash.  The sector is *not* marked damaged — only software
        cross-checks (labels, checksums, double reads) can notice."""
        self.geometry.check_range(address)
        self._data[address] = self._pad(data)
        self.faults.injected_wild_writes += 1

    def peek_label(self, address: int) -> bytes:
        """Inspect a label field without an I/O (tests only)."""
        self.geometry.check_range(address)
        return self._labels.get(address, FREE_LABEL)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _zero(self) -> bytes:
        return self._zero_sector

    def _pad(self, sector: bytes) -> bytes:
        return sector.ljust(self.geometry.sector_bytes, b"\x00")


def _pad_label(label: bytes) -> bytes:
    if len(label) > LABEL_BYTES:
        raise DiskRangeError(f"label of {len(label)} bytes > {LABEL_BYTES}")
    return label.ljust(LABEL_BYTES, b"\x00")
