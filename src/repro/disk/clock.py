"""Virtual time base for the whole simulation.

The paper measures everything in wall-clock milliseconds on a Dorado and
in disk I/O counts.  Every component in this reproduction shares one
:class:`SimClock`; the disk advances it by seek/latency/transfer time
and file systems advance it by modelled CPU time.  "Wall clock" in the
reproduced tables is ``SimClock.now_ms``.

The real FSD forces its log from a timer process twice a second.  The
simulator is single threaded, so periodic work is expressed as *timer
events*: callbacks with a due time that the owning file system fires at
its next entry point (see :meth:`SimClock.fire_due_timers`).  The
externally observable schedule is the same as the threaded original —
a log force happens at the first opportunity after its period elapses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class CpuCostModel:
    """Modelled CPU costs, in milliseconds, charged by file systems.

    The paper's design model deliberately ignored CPU time and the
    author notes the CPU was "sometimes a slight bottleneck"; Table 5
    however reports %CPU, so the reproduction needs *some* CPU model.
    The constants below are a Dorado-class workstation: sub-millisecond
    per-operation overheads, a per-sector copy cost, and a much larger
    per-block overhead for the modelled 4.2/4.3 BSD kernel (system call
    plus buffer-cache copy on a VAX-11/785).

    Only the *shape* of Table 5 depends on these values: the BSD block
    overhead is large enough that block-at-a-time synchronous I/O misses
    the rotational interleave, while FSD's big multi-sector transfers
    amortize their setup cost.
    """

    io_setup_ms: float = 0.30          # start one disk I/O
    per_sector_copy_ms: float = 0.25   # move one 512-byte sector
    btree_node_ms: float = 0.05        # search/modify one B-tree node
    entry_interpret_ms: float = 0.02   # decode one metadata entry
    scavenge_sector_ms: float = 4.0    # CFS scavenger: interpret 1 label
    vam_bit_ms: float = 0.002          # flip one VAM bit (alloc/free)
    fsck_inode_ms: float = 12.0        # BSD fsck: check one inode (VAX)
    # BSD per-block costs: a serial part (issued between I/Os, so it
    # eats into the rotational gap) and an overlapped part (the second
    # buffer copy, concurrent with DMA).  Together with the rotdelay
    # block spacing these produce Table 5's bandwidth/CPU shape.
    bsd_block_serial_ms: float = 2.1       # serial extra per block read
    bsd_write_serial_ms: float = 4.2       # serial extra per block write
    bsd_read_overlap_ms: float = 1.5       # overlapped extra per block read
    bsd_write_overlap_ms: float = 4.0      # overlapped extra per block write


@dataclass(order=True)
class TimerEvent:
    """A periodic callback owned by a file system (e.g. the log force
    daemon).  ``callback`` runs with the clock as argument."""

    due_ms: float
    period_ms: float = field(compare=False)
    callback: Callable[["SimClock"], None] = field(compare=False)
    name: str = field(compare=False, default="timer")
    enabled: bool = field(compare=False, default=True)


class SimClock:
    """Single global virtual clock with CPU/disk accounting."""

    def __init__(self, cpu: CpuCostModel | None = None):
        self.now_ms: float = 0.0
        self.cpu_busy_ms: float = 0.0
        self.disk_busy_ms: float = 0.0
        self.cpu = cpu or CpuCostModel()
        self._timers: list[TimerEvent] = []

    # ------------------------------------------------------------------
    # time advancement
    # ------------------------------------------------------------------
    def advance_disk(self, ms: float) -> None:
        """Advance time because the disk was busy for ``ms``."""
        if ms < 0:
            raise ValueError(f"negative time advance: {ms}")
        self.now_ms += ms
        self.disk_busy_ms += ms

    def advance_cpu(self, ms: float) -> None:
        """Advance time because the CPU was busy for ``ms``."""
        if ms < 0:
            raise ValueError(f"negative time advance: {ms}")
        self.now_ms += ms
        self.cpu_busy_ms += ms

    def advance_idle(self, ms: float) -> None:
        """Advance time with neither CPU nor disk busy (think time)."""
        if ms < 0:
            raise ValueError(f"negative time advance: {ms}")
        self.now_ms += ms

    def charge_overlapped_cpu(self, ms: float) -> None:
        """Account CPU work that overlaps a disk transfer (DMA-style
        copies): it consumes CPU but does not delay the operation."""
        if ms < 0:
            raise ValueError(f"negative time charge: {ms}")
        self.cpu_busy_ms += ms

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def add_timer(
        self,
        period_ms: float,
        callback: Callable[["SimClock"], None],
        name: str = "timer",
    ) -> TimerEvent:
        """Register a periodic timer; first due one period from now."""
        event = TimerEvent(
            due_ms=self.now_ms + period_ms,
            period_ms=period_ms,
            callback=callback,
            name=name,
        )
        self._timers.append(event)
        return event

    def remove_timer(self, event: TimerEvent) -> None:
        """Deregister a timer so it never fires again."""
        event.enabled = False
        if event in self._timers:
            self._timers.remove(event)

    def next_timer_due_ms(self) -> float | None:
        """Earliest due time among enabled timers, or None when no
        timer is registered.  Event-driven harnesses (the traffic
        engine) use it to advance an idle simulation to the next
        daemon wake-up instead of polling."""
        due = [event.due_ms for event in self._timers if event.enabled]
        return min(due) if due else None

    def fire_due_timers(self) -> int:
        """Fire every enabled timer whose due time has passed.

        Called by file-system entry points before doing work, which is
        how the single-threaded simulation models the background commit
        daemon.  Returns the number of callbacks fired.
        """
        fired = 0
        for event in list(self._timers):
            # A long idle gap may cover several periods; the daemon only
            # runs once per wake-up, like a real timer thread catching up.
            if event.enabled and self.now_ms >= event.due_ms:
                event.due_ms = self.now_ms + event.period_ms
                event.callback(self)
                fired += 1
        return fired

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Current (now, cpu busy, disk busy) readings in ms."""
        return {
            "now_ms": self.now_ms,
            "cpu_busy_ms": self.cpu_busy_ms,
            "disk_busy_ms": self.disk_busy_ms,
        }
