"""Virtual time base for the whole simulation.

The paper measures everything in wall-clock milliseconds on a Dorado and
in disk I/O counts.  Every component in this reproduction shares one
:class:`SimClock`; the disk advances it by seek/latency/transfer time
and file systems advance it by modelled CPU time.  "Wall clock" in the
reproduced tables is ``SimClock.now_ms``.

The real FSD forces its log from a timer process twice a second.  The
simulator is single threaded, so periodic work is expressed as *timer
events*: callbacks with a due time.  Two entry points drive them:

* :meth:`SimClock.tick` — fire anything already due, at the current
  time.  File-system entry points call it so a daemon that came due
  while the client thought runs "at the first opportunity after its
  period elapses", exactly like the threaded original.  The check is a
  single comparison against a cached horizon (the earliest enabled due
  time), so a tick with nothing due costs O(1) — no list walk.
* :meth:`SimClock.advance_to` — advance idle time to a deadline,
  firing each timer at its exact due time along the way.  Event-driven
  harnesses (the traffic engine) use it to jump an idle simulation to
  the next daemon wake-up instead of stepping-and-polling.

Cancellation is O(1): :meth:`SimClock.remove_timer` tombstones the
event (``enabled = False``) and dead entries are swept out lazily when
they outnumber the live ones — a chaos campaign cancelling thousands of
deadline timers stays linear.  Registration order is preserved across
sweeps because simultaneous timers fire in the order they were added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

_INF = float("inf")

#: Compact the timer list once tombstones outnumber live entries (and
#: there are enough of them for the sweep to matter).
_COMPACT_MIN_DEAD = 64

#: ``advance_to`` refuses to fire more than this many batches in one
#: call — a zero-period timer would otherwise spin forever.
_ADVANCE_GUARD = 1_000_000


@dataclass
class CpuCostModel:
    """Modelled CPU costs, in milliseconds, charged by file systems.

    The paper's design model deliberately ignored CPU time and the
    author notes the CPU was "sometimes a slight bottleneck"; Table 5
    however reports %CPU, so the reproduction needs *some* CPU model.
    The constants below are a Dorado-class workstation: sub-millisecond
    per-operation overheads, a per-sector copy cost, and a much larger
    per-block overhead for the modelled 4.2/4.3 BSD kernel (system call
    plus buffer-cache copy on a VAX-11/785).

    Only the *shape* of Table 5 depends on these values: the BSD block
    overhead is large enough that block-at-a-time synchronous I/O misses
    the rotational interleave, while FSD's big multi-sector transfers
    amortize their setup cost.
    """

    io_setup_ms: float = 0.30          # start one disk I/O
    per_sector_copy_ms: float = 0.25   # move one 512-byte sector
    btree_node_ms: float = 0.05        # search/modify one B-tree node
    entry_interpret_ms: float = 0.02   # decode one metadata entry
    scavenge_sector_ms: float = 4.0    # CFS scavenger: interpret 1 label
    vam_bit_ms: float = 0.002          # flip one VAM bit (alloc/free)
    fsck_inode_ms: float = 12.0        # BSD fsck: check one inode (VAX)
    # BSD per-block costs: a serial part (issued between I/Os, so it
    # eats into the rotational gap) and an overlapped part (the second
    # buffer copy, concurrent with DMA).  Together with the rotdelay
    # block spacing these produce Table 5's bandwidth/CPU shape.
    bsd_block_serial_ms: float = 2.1       # serial extra per block read
    bsd_write_serial_ms: float = 4.2       # serial extra per block write
    bsd_read_overlap_ms: float = 1.5       # overlapped extra per block read
    bsd_write_overlap_ms: float = 4.0      # overlapped extra per block write


@dataclass(order=True, slots=True)
class TimerEvent:
    """A periodic callback owned by a file system (e.g. the log force
    daemon).  ``callback`` runs with the clock as argument."""

    due_ms: float
    period_ms: float = field(compare=False)
    callback: Callable[["SimClock"], None] = field(compare=False)
    name: str = field(compare=False, default="timer")
    enabled: bool = field(compare=False, default=True)


class SimClock:
    """Single global virtual clock with CPU/disk accounting."""

    def __init__(self, cpu: CpuCostModel | None = None):
        self.now_ms: float = 0.0
        self.cpu_busy_ms: float = 0.0
        self.disk_busy_ms: float = 0.0
        self.cpu = cpu or CpuCostModel()
        #: registration-ordered ring of timers; cancelled entries stay
        #: as tombstones until the lazy sweep in :meth:`_compact`.
        self._timers: list[TimerEvent] = []
        self._dead = 0
        #: cached lower bound on the earliest enabled due time (+inf
        #: when no timer is live).  A stale-too-early horizon is safe —
        #: it costs one wasted scan that then recomputes it exactly.
        self._horizon_ms: float = _INF

    # ------------------------------------------------------------------
    # time advancement
    # ------------------------------------------------------------------
    def advance_disk(self, ms: float) -> None:
        """Advance time because the disk was busy for ``ms``."""
        if ms < 0:
            raise ValueError(f"negative time advance: {ms}")
        self.now_ms += ms
        self.disk_busy_ms += ms

    def advance_cpu(self, ms: float) -> None:
        """Advance time because the CPU was busy for ``ms``."""
        if ms < 0:
            raise ValueError(f"negative time advance: {ms}")
        self.now_ms += ms
        self.cpu_busy_ms += ms

    def advance_idle(self, ms: float) -> None:
        """Advance time with neither CPU nor disk busy (think time)."""
        if ms < 0:
            raise ValueError(f"negative time advance: {ms}")
        self.now_ms += ms

    def charge_overlapped_cpu(self, ms: float) -> None:
        """Account CPU work that overlaps a disk transfer (DMA-style
        copies): it consumes CPU but does not delay the operation."""
        if ms < 0:
            raise ValueError(f"negative time charge: {ms}")
        self.cpu_busy_ms += ms

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def add_timer(
        self,
        period_ms: float,
        callback: Callable[["SimClock"], None],
        name: str = "timer",
    ) -> TimerEvent:
        """Register a periodic timer; first due one period from now."""
        event = TimerEvent(
            due_ms=self.now_ms + period_ms,
            period_ms=period_ms,
            callback=callback,
            name=name,
        )
        self._timers.append(event)
        if event.due_ms < self._horizon_ms:
            self._horizon_ms = event.due_ms
        return event

    def remove_timer(self, event: TimerEvent) -> None:
        """Deregister a timer so it never fires again.  O(1): the event
        is tombstoned in place; the list is swept when tombstones
        outnumber live timers."""
        if not event.enabled:
            return
        event.enabled = False
        self._dead += 1
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead * 2 >= len(self._timers)
        ):
            self._compact()

    def _compact(self) -> None:
        """Sweep tombstones, preserving registration order."""
        self._timers = [e for e in self._timers if e.enabled]
        self._dead = 0

    def _refresh_horizon(self) -> float:
        """Recompute the exact earliest enabled due time."""
        horizon = _INF
        for event in self._timers:
            if event.enabled and event.due_ms < horizon:
                horizon = event.due_ms
        self._horizon_ms = horizon
        return horizon

    def next_timer_due_ms(self) -> float | None:
        """Earliest due time among enabled timers, or None when no
        timer is registered."""
        horizon = self._refresh_horizon()
        return None if horizon == _INF else horizon

    def tick(self) -> int:
        """Fire every enabled timer whose due time has passed.

        Called by file-system entry points before doing work, which is
        how the single-threaded simulation models the background commit
        daemon: the callback runs at the first opportunity after its
        period elapses.  With nothing due this is one comparison
        against the cached horizon.  Returns the callbacks fired.
        """
        if self.now_ms < self._horizon_ms:
            return 0
        return self._fire_due()

    def _fire_due(self) -> int:
        """Fire due timers in registration order, rescheduling each one
        period ahead *before* its callback runs (so a callback that
        re-enters the clock sees the next deadline, not the stale one).
        A long idle gap covering several periods still fires once, like
        a real timer thread catching up after oversleeping."""
        fired = 0
        for event in list(self._timers):
            if event.enabled and self.now_ms >= event.due_ms:
                event.due_ms = self.now_ms + event.period_ms
                event.callback(self)
                fired += 1
        self._refresh_horizon()
        return fired

    def advance_to(self, deadline_ms: float) -> int:
        """Advance idle time to ``deadline_ms``, firing each timer at
        its exact due time along the way.

        This is the event-driven replacement for step-and-poll drains:
        the clock jumps straight to the next due time, fires (in
        registration order when several coincide), and repeats until
        the deadline is reached.  Callbacks may themselves consume
        simulated time; any timer that comes due during a callback
        fires in the same batch.  A deadline already in the past just
        fires what is due now.  Returns the callbacks fired.
        """
        fired = 0
        for _ in range(_ADVANCE_GUARD):
            horizon = self._refresh_horizon()
            if horizon > deadline_ms:
                break
            if horizon > self.now_ms:
                self.advance_idle(horizon - self.now_ms)
            fired += self._fire_due()
        else:
            raise RuntimeError(
                f"timer storm: {_ADVANCE_GUARD} batches fired advancing "
                f"to {deadline_ms}"
            )
        if deadline_ms > self.now_ms:
            self.advance_idle(deadline_ms - self.now_ms)
        return fired

    def drain(self, ms: float, step_ms: float = 100.0) -> None:
        """Advance ``ms`` of idle time in ``step_ms`` slices, firing
        due timers at each slice boundary — lets the group-commit
        daemon run between measured phases.  Time consumed by the
        callbacks themselves is on top of ``ms``, mirroring a harness
        that sleeps in steps regardless of what the daemons do."""
        remaining = ms
        while remaining > 0:
            slice_ms = min(step_ms, remaining)
            self.advance_idle(slice_ms)
            self.tick()
            remaining -= slice_ms

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Current (now, cpu busy, disk busy) readings in ms."""
        return {
            "now_ms": self.now_ms,
            "cpu_busy_ms": self.cpu_busy_ms,
            "disk_busy_ms": self.disk_busy_ms,
        }
