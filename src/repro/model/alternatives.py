"""The design alternatives the paper evaluated with the model (§6).

"Many alternatives were examined using the model.  The poorer
alternatives were quickly discarded.  The model allowed estimation of
the effects of logging, group commit, redundancy, and central
placement of certain files."

Each alternative is a full set of operation scripts; the ablation
bench ranks them per operation and shows the chosen design winning on
the metadata operations, with redundancy (double writes) nearly free.
"""

from __future__ import annotations

from dataclasses import replace

from repro.model.primitives import (
    Cpu,
    Fraction,
    Latency,
    Script,
    Seek,
    ShortSeek,
    Transfer,
)
from repro.model.scripts import (
    ModelAssumptions,
    _io_cpu,
    cfs_open,
    cfs_small_create,
    cfs_small_delete,
    fsd_open,
    fsd_small_create,
    fsd_small_delete,
)

OPERATIONS = ("small create", "open", "small delete")


def _chosen(assume: ModelAssumptions) -> dict[str, Script]:
    return {
        "small create": fsd_small_create(assume),
        "open": fsd_open(assume),
        "small delete": fsd_small_delete(assume),
    }


def _cfs_labels(assume: ModelAssumptions) -> dict[str, Script]:
    return {
        "small create": cfs_small_create(assume),
        "open": cfs_open(assume),
        "small delete": cfs_small_delete(assume),
    }


def _sync_writes(assume: ModelAssumptions) -> dict[str, Script]:
    """No log: every metadata change synchronously writes both copies
    of the dirtied name-table page (UNIX-style ordered writes)."""
    cpu = assume.cpu
    sync_page = [
        _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
        _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
    ]
    create = Script(
        name="sync small create",
        steps=[
            Cpu(ms=6 * cpu.btree_node_ms),
            _io_cpu(cpu, 2), Seek(), Latency(), Transfer(sectors=2),
            *sync_page,          # the updated leaf, twice
            *sync_page,          # the leader page write, plus bitmap page
        ],
        miss_steps=list(sync_page),
        miss_probability=assume.leaf_miss_probability,
    )
    open_script = fsd_open(assume)
    delete = Script(
        name="sync small delete",
        steps=[Cpu(ms=6 * cpu.btree_node_ms), *sync_page],
        miss_steps=list(sync_page),
        miss_probability=assume.leaf_miss_probability,
    )
    return {"small create": create, "open": open_script, "small delete": delete}


def _commit_per_op(assume: ModelAssumptions) -> dict[str, Script]:
    """Logging but no group commit: every operation forces its own
    (small) log record."""
    solo = replace(assume, ops_per_commit=1.0, pages_per_record=2.0)
    return _chosen(solo)


def _no_double_write(assume: ModelAssumptions) -> dict[str, Script]:
    """Single name-table copy: cheaper misses, less robustness."""
    cpu = assume.cpu
    single_miss = [
        _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
    ]
    chosen = _chosen(assume)
    out = {}
    for op, script in chosen.items():
        out[op] = Script(
            name=f"{script.name} (single copy)",
            steps=script.steps,
            miss_steps=single_miss,
            miss_probability=script.miss_probability,
        )
    return out


def _scattered_metadata(assume: ModelAssumptions) -> dict[str, Script]:
    """Log and name table NOT at the central cylinder: every metadata
    I/O pays an average seek instead of a short one."""
    cpu = assume.cpu
    far_share = Fraction(
        label="log force share (far)",
        steps=(
            _io_cpu(cpu, assume.record_sectors),
            Seek(), Latency(), Transfer(sectors=assume.record_sectors),
        ),
        weight=1.0 / assume.ops_per_commit,
    )
    far_miss = [
        _io_cpu(cpu, 1), Seek(), Latency(), Transfer(sectors=1),
        _io_cpu(cpu, 1), Seek(), Latency(), Transfer(sectors=1),
    ]
    chosen = _chosen(assume)
    out = {}
    for op, script in chosen.items():
        steps = [
            far_share if isinstance(step, Fraction) else step
            for step in script.steps
        ]
        out[op] = Script(
            name=f"{script.name} (scattered)",
            steps=steps,
            miss_steps=far_miss,
            miss_probability=script.miss_probability,
        )
    return out


def design_alternatives(
    assume: ModelAssumptions | None = None,
) -> dict[str, dict[str, Script]]:
    """All alternatives: name -> operation -> script."""
    assume = assume or ModelAssumptions()
    return {
        "FSD (chosen: log + group commit + double write, central)": _chosen(assume),
        "CFS (hardware labels, baseline)": _cfs_labels(assume),
        "No log: synchronous double writes": _sync_writes(assume),
        "Log but commit per operation": _commit_per_op(assume),
        "No double write (single name-table copy)": _no_double_write(assume),
        "Scattered metadata (no central placement)": _scattered_metadata(assume),
    }
