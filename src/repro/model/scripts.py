"""Operation scripts for CFS and FSD (paper §6).

These reproduce the paper's design-time analysis: each file-system
operation is scripted as seeks, short seeks, latencies, lost
revolutions and transfers, using any known rotational/radial locality.
The CFS one-sector-file create script below is the paper's own §6
example, verbatim, continued through the remaining steps of the
implementation.

The paper's model ignored CPU time; each script optionally carries
``Cpu`` steps so the validation bench can report both the
paper-faithful prediction and a CPU-corrected one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disk.clock import CpuCostModel
from repro.model.primitives import (
    Cpu,
    Fraction,
    Latency,
    MinusTransfer,
    Revolution,
    Script,
    Seek,
    ShortSeek,
    Step,
    Transfer,
)


@dataclass(frozen=True)
class ModelAssumptions:
    """The probability distributions and amortization constants of §6.

    "The caches were assumed to hit if the information is small, and to
    hit except for the leaf nodes for large structures such as the file
    name table.  Hits for leaf nodes were modeled by simple probability
    distributions."
    """

    #: FSD name-table leaf misses: FSD entries are fat (run tables
    #: inline) so its tree has many more leaf pages than CFS's.
    leaf_miss_probability: float = 0.30
    #: creates append adjacent keys, so they nearly always hit the
    #: leaf they dirtied moments ago.
    create_miss_probability: float = 0.05
    #: deletes touch more pages (leaf + allocation bitmap + rebalance).
    delete_miss_probability: float = 0.45
    #: CFS entries are tiny (uid + header address); its whole name
    #: table fits the page cache, so leaf misses are rare.
    cfs_leaf_miss_probability: float = 0.05
    #: operations sharing one group-commit log force.
    ops_per_commit: float = 16.0
    #: pages in a typical commit record (paper: 14 → 33 sectors).
    pages_per_record: float = 14.0
    cpu: CpuCostModel = field(default_factory=CpuCostModel)

    @property
    def record_sectors(self) -> float:
        return 5.0 + 2.0 * self.pages_per_record


def _io_cpu(cpu: CpuCostModel, sectors: float) -> Cpu:
    return Cpu(ms=cpu.io_setup_ms + cpu.per_sector_copy_ms * sectors)


# ======================================================================
# CFS scripts
# ======================================================================
def cfs_small_create(assume: ModelAssumptions) -> Script:
    """The paper's §6 example, continued to the end of the operation.

    1) Verify free pages: 1 seek, 1 latency, 3 page transfers
    2) Write header labels: (revolution − 3 page transfers), 2 transfers
    3) Write data labels: revolution − 1 transfer, 1 page transfer
    4) Write header: revolution − 3 transfers, 2 transfers
    5) Update name table: seek, latency, 2 transfers (write-through page)
    6) Write the byte: seek, latency, 1 transfer
    7) Rewrite header: revolution − 3 transfers... (same track again)
    """
    cpu = assume.cpu
    steps: list[Step] = [
        # 1 verify free pages
        _io_cpu(cpu, 3), Seek(), Latency(), Transfer(sectors=3),
        # 2 write header labels (rotationally synced: CPU absorbed)
        Revolution(), MinusTransfer(sectors=3), Transfer(sectors=2),
        # 3 write data label
        Revolution(), MinusTransfer(sectors=1), Transfer(sectors=1),
        # 4 write the header contents
        Revolution(), MinusTransfer(sectors=3), Transfer(sectors=2),
        # 5 update the file name table (write-through, elsewhere on disk)
        _io_cpu(cpu, 2), Cpu(ms=4 * cpu.btree_node_ms),
        Seek(), Latency(), Transfer(sectors=2),
        # 6 write the data sector (seek back to the file)
        _io_cpu(cpu, 1), Seek(), Latency(), Transfer(sectors=1),
        # 7 rewrite the header (same track as the data)
        Revolution(), MinusTransfer(sectors=2), Transfer(sectors=2),
    ]
    miss = [
        # name-table leaf miss: read the leaf before updating it
        _io_cpu(cpu, 2), ShortSeek(), Latency(), Transfer(sectors=2),
    ]
    return Script(
        name="cfs small create",
        steps=steps,
        miss_steps=miss,
        miss_probability=assume.cfs_leaf_miss_probability,
    )


def cfs_open(assume: ModelAssumptions) -> Script:
    """Name-table lookup (cached) + header read: always one I/O."""
    cpu = assume.cpu
    return Script(
        name="cfs open",
        steps=[
            Cpu(ms=3 * cpu.btree_node_ms),
            _io_cpu(cpu, 2), Seek(), Latency(), Transfer(sectors=2),
        ],
        miss_steps=[
            _io_cpu(cpu, 2), Seek(), Latency(), Transfer(sectors=2),
        ],
        miss_probability=assume.cfs_leaf_miss_probability,
    )


def cfs_read_page(assume: ModelAssumptions) -> Script:
    """One random page read on an open CFS file."""
    cpu = assume.cpu
    return Script(
        name="cfs read page",
        steps=[_io_cpu(cpu, 1), Seek(), Latency(), Transfer(sectors=1)],
    )


def cfs_open_read(assume: ModelAssumptions) -> Script:
    """Open + read first page: the data is near its header, so the read
    costs a short seek, not an average one."""
    cpu = assume.cpu
    script = cfs_open(assume)
    return Script(
        name="cfs open+read",
        steps=script.steps
        + [_io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1)],
        miss_steps=script.miss_steps,
        miss_probability=script.miss_probability,
    )


def cfs_small_delete(assume: ModelAssumptions) -> Script:
    """Read header; free data labels; free header labels; name table."""
    cpu = assume.cpu
    return Script(
        name="cfs small delete",
        steps=[
            _io_cpu(cpu, 2), Seek(), Latency(), Transfer(sectors=2),
            # free the data run's labels (same track as the header)
            Revolution(), MinusTransfer(sectors=2), Transfer(sectors=1),
            # free the header labels
            Revolution(), MinusTransfer(sectors=1), Transfer(sectors=2),
            # name-table update (write-through)
            _io_cpu(cpu, 2), Cpu(ms=4 * cpu.btree_node_ms),
            Seek(), Latency(), Transfer(sectors=2),
        ],
        miss_steps=[
            _io_cpu(cpu, 2), ShortSeek(), Latency(), Transfer(sectors=2),
        ],
        miss_probability=assume.cfs_leaf_miss_probability,
    )


def cfs_list_per_file(assume: ModelAssumptions) -> Script:
    """Listing reads one header per file (plus amortized leaf reads)."""
    cpu = assume.cpu
    return Script(
        name="cfs list (per file)",
        steps=[
            Cpu(ms=cpu.entry_interpret_ms),
            _io_cpu(cpu, 2), ShortSeek(), Latency(), Transfer(sectors=2),
        ],
    )


# ======================================================================
# FSD scripts
# ======================================================================
def _fsd_commit_share(assume: ModelAssumptions) -> Fraction:
    """One operation's share of the group-commit log force: a short
    seek to the central log plus the record write."""
    cpu = assume.cpu
    return Fraction(
        label="log force share",
        steps=(
            _io_cpu(cpu, assume.record_sectors),
            ShortSeek(),
            Latency(),
            Transfer(sectors=assume.record_sectors),
        ),
        weight=1.0 / assume.ops_per_commit,
    )


def fsd_small_create(assume: ModelAssumptions) -> Script:
    """Two free pages from the (memory) VAM, a cached name-table
    update, one combined leader+data write, and a share of the log.

    The allocator hands out small files sequentially in the small-file
    area, so the combined write needs no seek — only the rotational
    wait (this is *why* FSD creates are fast; the model knows it)."""
    cpu = assume.cpu
    return Script(
        name="fsd small create",
        steps=[
            Cpu(ms=6 * cpu.btree_node_ms + 2 * cpu.entry_interpret_ms),
            _io_cpu(cpu, 2), Latency(), Transfer(sectors=2),
            _fsd_commit_share(assume),
        ],
        miss_steps=[
            # leaf miss: double read of the name-table page (two copies)
            _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
            _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
        ],
        miss_probability=assume.create_miss_probability,
    )


def fsd_open(assume: ModelAssumptions) -> Script:
    """Open usually does no I/O; a leaf miss costs the double read."""
    cpu = assume.cpu
    return Script(
        name="fsd open",
        steps=[Cpu(ms=4 * cpu.btree_node_ms + 2 * cpu.entry_interpret_ms)],
        miss_steps=[
            _io_cpu(cpu, 1), Seek(), Latency(), Transfer(sectors=1),
            _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
        ],
        miss_probability=assume.leaf_miss_probability,
    )


def fsd_read_page(assume: ModelAssumptions) -> Script:
    """One random page read on an open FSD file."""
    cpu = assume.cpu
    return Script(
        name="fsd read page",
        steps=[_io_cpu(cpu, 1), Seek(), Latency(), Transfer(sectors=1)],
    )


def fsd_open_read(assume: ModelAssumptions) -> Script:
    """Open + first read, which piggybacks the leader: one I/O of two
    sectors (leader + data page 0)."""
    cpu = assume.cpu
    base = fsd_open(assume)
    return Script(
        name="fsd open+read",
        steps=base.steps
        + [_io_cpu(cpu, 2), Seek(), Latency(), Transfer(sectors=2)],
        miss_steps=base.miss_steps,
        miss_probability=base.miss_probability,
    )


def fsd_small_delete(assume: ModelAssumptions) -> Script:
    """No synchronous I/O: cached tree update, shadow-bitmap free, and
    a share of the next log force."""
    cpu = assume.cpu
    return Script(
        name="fsd small delete",
        steps=[
            Cpu(ms=6 * cpu.btree_node_ms + 2 * cpu.entry_interpret_ms),
            _fsd_commit_share(assume),
        ],
        miss_steps=[
            _io_cpu(cpu, 1), Seek(), Latency(), Transfer(sectors=1),
            _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
        ],
        miss_probability=assume.delete_miss_probability,
    )


def fsd_list_per_file(assume: ModelAssumptions) -> Script:
    """Properties come from the name table; the only I/O is the rare
    leaf fetch, amortized over the ~3 files per leaf."""
    cpu = assume.cpu
    per_leaf = Fraction(
        label="leaf fetch share",
        steps=(
            _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
            _io_cpu(cpu, 1), ShortSeek(), Latency(), Transfer(sectors=1),
        ),
        weight=assume.leaf_miss_probability / 3.0,
    )
    return Script(
        name="fsd list (per file)",
        steps=[Cpu(ms=cpu.entry_interpret_ms + cpu.btree_node_ms), per_leaf],
    )


# ======================================================================
# large transfers (the §5 scaling case: streaming in big chunks)
# ======================================================================
#: sectors in a "large" file for the large-create scripts (2 MB).
LARGE_FILE_SECTORS = 4096
#: largest single transfer (VolumeParams.max_io_sectors).
CHUNK_SECTORS = 120


def _streaming_pass(sectors: int, chunk: int) -> list[Step]:
    """One sequential pass over ``sectors``: each chunk transfers at
    media rate, then the inter-chunk request gap costs a revolution
    (the chunks are contiguous, so the missed sector start forces a
    full turn)."""
    chunks = -(-sectors // chunk)
    steps: list[Step] = [Transfer(sectors=sectors)]
    if chunks > 1:
        steps.append(Revolution(count=float(chunks - 1)))
    return steps


def fsd_large_create(assume: ModelAssumptions) -> Script:
    """Allocate one big run and stream it in max-sized chunks."""
    cpu = assume.cpu
    chunks = -(-LARGE_FILE_SECTORS // CHUNK_SECTORS)
    return Script(
        name="fsd large create",
        steps=[
            Cpu(ms=cpu.vam_bit_ms * LARGE_FILE_SECTORS
                + chunks * cpu.io_setup_ms),
            Seek(), Latency(),
            *_streaming_pass(LARGE_FILE_SECTORS, CHUNK_SECTORS),
            _fsd_commit_share(assume),
        ],
    )


def cfs_large_create(assume: ModelAssumptions) -> Script:
    """Three sequential passes over the data: verify the labels free,
    write the labels to claim, then write the data (verifying labels) —
    why CFS large creates cost ~3x FSD's (Table 2: 7674 vs 2730 ms)."""
    cpu = assume.cpu
    chunks = -(-LARGE_FILE_SECTORS // CHUNK_SECTORS)
    per_pass = _streaming_pass(LARGE_FILE_SECTORS, CHUNK_SECTORS)
    return Script(
        name="cfs large create",
        steps=[
            Cpu(ms=3 * chunks * cpu.io_setup_ms),
            # pass 1: verify free (label read)
            Seek(), Latency(), *per_pass,
            # pass 2: claim (label write) — same region, re-approached
            Revolution(), *per_pass,
            # pass 3: data write
            Revolution(), *per_pass,
            # header write + rewrite and the name-table update
            Revolution(), Transfer(sectors=2),
            _io_cpu(cpu, 2), Seek(), Latency(), Transfer(sectors=2),
            Revolution(), Transfer(sectors=2),
        ],
    )


# ======================================================================
# catalogue
# ======================================================================
def all_scripts(assume: ModelAssumptions | None = None) -> dict[str, Script]:
    """Every operation script, keyed by name."""
    assume = assume or ModelAssumptions()
    builders = [
        cfs_small_create, cfs_open, cfs_open_read, cfs_read_page,
        cfs_small_delete, cfs_list_per_file, cfs_large_create,
        fsd_small_create, fsd_open, fsd_open_read, fsd_read_page,
        fsd_small_delete, fsd_list_per_file, fsd_large_create,
    ]
    return {script.name: script for script in (b(assume) for b in builders)}
