"""The paper's §6 analytical disk-performance model."""

from repro.model.alternatives import OPERATIONS, design_alternatives
from repro.model.evaluate import Prediction, predict, predict_all
from repro.model.primitives import (
    Cpu,
    Fraction,
    Latency,
    MinusTransfer,
    Revolution,
    Script,
    Seek,
    ShortSeek,
    Step,
    Transfer,
)
from repro.model.scripts import ModelAssumptions, all_scripts
from repro.model.validate import (
    ValidationRow,
    compare,
    max_abs_error_pct,
    mean_abs_error_pct,
)

__all__ = [
    "Cpu",
    "Fraction",
    "Latency",
    "MinusTransfer",
    "ModelAssumptions",
    "OPERATIONS",
    "Prediction",
    "Revolution",
    "Script",
    "Seek",
    "ShortSeek",
    "Step",
    "Transfer",
    "ValidationRow",
    "all_scripts",
    "compare",
    "design_alternatives",
    "max_abs_error_pct",
    "mean_abs_error_pct",
    "predict",
    "predict_all",
]
