"""Script primitives for the paper's analytical disk model (§6).

"The numbers of seeks, short seeks (a few cylinders), latencies (half
a revolution), lost revolutions, and transfer time were estimated by
analyzing and scripting the necessary operations."

A script is a list of steps; each step evaluates to milliseconds
against a :class:`~repro.disk.timing.DiskTiming` and geometry — the
*same* objects the simulator runs on, so model-vs-measurement
validation compares like with like.  ``MinusTransfer`` expresses the
paper's "revolution · 3 page transfers" idiom (a rotational wait of a
revolution less the pages that just passed under the head).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.disk.geometry import DiskGeometry
from repro.disk.timing import DiskTiming


@dataclass(frozen=True)
class Step:
    """One script step; ``evaluate`` returns its cost in ms."""

    label: str

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        """Cost of this step in milliseconds."""
        raise NotImplementedError


@dataclass(frozen=True)
class Seek(Step):
    """A random (average) seek."""

    label: str = "seek"

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return timing.seek_ms(geometry.cylinders // 3)


@dataclass(frozen=True)
class ShortSeek(Step):
    """A seek of a few cylinders (metadata near the data)."""

    label: str = "short seek"

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return timing.short_seek_ms


@dataclass(frozen=True)
class Latency(Step):
    """Average rotational latency: half a revolution."""

    label: str = "latency"

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return timing.latency_ms


@dataclass(frozen=True)
class Revolution(Step):
    """One or more lost revolutions."""

    label: str = "revolution"
    count: float = 1.0

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return self.count * timing.rotation_ms


@dataclass(frozen=True)
class Transfer(Step):
    """Media transfer of ``sectors`` contiguous sectors."""

    label: str = "transfer"
    sectors: float = 1.0

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return timing.transfer_ms(self.sectors, geometry.sectors_per_track)


@dataclass(frozen=True)
class MinusTransfer(Step):
    """Negative transfer time: 'revolution less N page transfers'."""

    label: str = "minus transfer"
    sectors: float = 1.0

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return -timing.transfer_ms(self.sectors, geometry.sectors_per_track)


@dataclass(frozen=True)
class Cpu(Step):
    """Fixed CPU time.  The paper's model deliberately ignored CPU; the
    scripts include it optionally so the validation bench can show both
    the paper-faithful (CPU-free) and the corrected prediction."""

    label: str = "cpu"
    ms: float = 0.0

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return self.ms


@dataclass(frozen=True)
class Fraction(Step):
    """A fractional share of a sub-script: amortized costs such as one
    log force spread over the operations in a commit interval."""

    label: str = "amortized"
    steps: tuple[Step, ...] = ()
    weight: float = 1.0

    def evaluate(self, timing: DiskTiming, geometry: DiskGeometry) -> float:
        return self.weight * sum(
            step.evaluate(timing, geometry) for step in self.steps
        )


@dataclass
class Script:
    """A named operation script with hit/miss weighting.

    ``steps`` always run; ``miss_steps`` are added with probability
    ``miss_probability`` ("Hits for leaf nodes were modeled by simple
    probability distributions" — the weighted average of §6).
    """

    name: str
    steps: list[Step] = field(default_factory=list)
    miss_steps: list[Step] = field(default_factory=list)
    miss_probability: float = 0.0
    include_cpu: bool = True

    def evaluate(
        self, timing: DiskTiming, geometry: DiskGeometry
    ) -> float:
        """Predicted operation time: base steps + weighted miss steps."""
        total = self._sum(self.steps, timing, geometry)
        if self.miss_steps and self.miss_probability > 0:
            total += self.miss_probability * self._sum(
                self.miss_steps, timing, geometry
            )
        return total

    def _sum(
        self, steps: Sequence[Step], timing: DiskTiming, geometry: DiskGeometry
    ) -> float:
        return sum(
            step.evaluate(timing, geometry)
            for step in steps
            if self.include_cpu or not _is_pure_cpu(step)
        )

    def breakdown(
        self, timing: DiskTiming, geometry: DiskGeometry
    ) -> list[tuple[str, float]]:
        """Per-step (label, ms) rows, misses weighted by probability."""
        rows = [
            (step.label, step.evaluate(timing, geometry))
            for step in self.steps
        ]
        for step in self.miss_steps:
            rows.append(
                (
                    f"miss({self.miss_probability:.0%}): {step.label}",
                    self.miss_probability * step.evaluate(timing, geometry),
                )
            )
        return rows


def _is_pure_cpu(step: Step) -> bool:
    if isinstance(step, Cpu):
        return True
    if isinstance(step, Fraction):
        return all(_is_pure_cpu(inner) for inner in step.steps)
    return False
