"""Evaluate model scripts against a disk configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry
from repro.disk.timing import DiskTiming
from repro.model.primitives import Script


@dataclass
class Prediction:
    operation: str
    predicted_ms: float
    cpu_free_ms: float  # the paper-faithful prediction (CPU ignored)

    def __str__(self) -> str:
        return (
            f"{self.operation}: {self.predicted_ms:.1f} ms "
            f"({self.cpu_free_ms:.1f} ms ignoring CPU)"
        )


def predict(
    script: Script, timing: DiskTiming, geometry: DiskGeometry
) -> Prediction:
    """Evaluate a script both with and without its CPU steps."""
    with_cpu = script.evaluate(timing, geometry)
    script_no_cpu = Script(
        name=script.name,
        steps=script.steps,
        miss_steps=script.miss_steps,
        miss_probability=script.miss_probability,
        include_cpu=False,
    )
    without_cpu = script_no_cpu.evaluate(timing, geometry)
    return Prediction(
        operation=script.name,
        predicted_ms=with_cpu,
        cpu_free_ms=without_cpu,
    )


def predict_all(
    scripts: dict[str, Script], timing: DiskTiming, geometry: DiskGeometry
) -> dict[str, Prediction]:
    """Predictions for every script, keyed by operation name."""
    return {
        name: predict(script, timing, geometry)
        for name, script in scripts.items()
    }
