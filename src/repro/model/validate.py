"""Model-vs-measurement validation (paper §6).

"This model was validated by estimating and measuring performance of
CFS, 4.3 BSD UNIX, and two types of file servers.  For the simple
operations benchmarked, the model almost always predicted performance
to within five percent of measured performance."

The bench measures the same operations on the simulator and compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.evaluate import Prediction


@dataclass
class ValidationRow:
    operation: str
    predicted_ms: float
    measured_ms: float

    @property
    def error_pct(self) -> float:
        if self.measured_ms == 0:
            return 0.0
        return 100.0 * (self.predicted_ms - self.measured_ms) / self.measured_ms

    def __str__(self) -> str:
        return (
            f"{self.operation:<24} model {self.predicted_ms:8.1f} ms   "
            f"measured {self.measured_ms:8.1f} ms   "
            f"error {self.error_pct:+6.1f}%"
        )


def compare(
    predictions: dict[str, Prediction], measured_ms: dict[str, float]
) -> list[ValidationRow]:
    """Join predictions with measurements by operation name."""
    rows = []
    for name, measured in measured_ms.items():
        prediction = predictions.get(name)
        if prediction is None:
            continue
        rows.append(
            ValidationRow(
                operation=name,
                predicted_ms=prediction.predicted_ms,
                measured_ms=measured,
            )
        )
    return rows


def max_abs_error_pct(rows: list[ValidationRow]) -> float:
    """Largest absolute prediction error, in percent."""
    return max((abs(row.error_pct) for row in rows), default=0.0)


def mean_abs_error_pct(rows: list[ValidationRow]) -> float:
    """Mean absolute prediction error, in percent."""
    if not rows:
        return 0.0
    return sum(abs(row.error_pct) for row in rows) / len(rows)
