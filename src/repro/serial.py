"""Binary serialization helpers shared by every on-disk format.

All metadata in this reproduction really serializes to 512-byte sectors;
recovery code paths parse those bytes back, so a crash genuinely
round-trips through the "disk".  This module provides a tiny
reader/writer pair over ``struct`` plus the checksum used by leader
pages, log records and the name table.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import CorruptMetadata


def checksum(data: bytes) -> int:
    """32-bit checksum used by all on-disk structures (CRC-32)."""
    return zlib.crc32(data) & 0xFFFFFFFF


#: precompiled scalar codecs — ``Struct.pack``/``unpack_from`` avoid
#: both the per-call format parse and intermediate byte copies.
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

#: sentinel capacity for unbounded packers: one compare per append, no
#: ``is None`` branch on the hot path.
_NO_CAP = float("inf")


class Packer:
    """Append-only binary writer with fixed-capacity enforcement.

    A ``Packer`` refuses to grow past ``capacity`` bytes, which models
    the hard sector/page boundary every on-disk structure must respect.
    Bytes accumulate in one ``bytearray`` (amortized O(1) appends, no
    per-field ``bytes`` objects or final join).
    """

    __slots__ = ("_buf", "_capacity", "_cap")

    def __init__(self, capacity: int | None = None):
        self._buf = bytearray()
        self._capacity = capacity
        self._cap = _NO_CAP if capacity is None else capacity

    def _overflow(self) -> ValueError:
        return ValueError(
            f"packed structure overflows capacity {self._capacity}"
        )

    def u8(self, value: int) -> "Packer":
        """Append an unsigned byte."""
        buf = self._buf
        if len(buf) + 1 > self._cap:
            raise self._overflow()
        buf += _U8.pack(value)
        return self

    def u16(self, value: int) -> "Packer":
        """Append a little-endian unsigned 16-bit integer."""
        buf = self._buf
        if len(buf) + 2 > self._cap:
            raise self._overflow()
        buf += _U16.pack(value)
        return self

    def u32(self, value: int) -> "Packer":
        """Append a little-endian unsigned 32-bit integer."""
        buf = self._buf
        if len(buf) + 4 > self._cap:
            raise self._overflow()
        buf += _U32.pack(value)
        return self

    def u64(self, value: int) -> "Packer":
        """Append a little-endian unsigned 64-bit integer."""
        buf = self._buf
        if len(buf) + 8 > self._cap:
            raise self._overflow()
        buf += _U64.pack(value)
        return self

    def f64(self, value: float) -> "Packer":
        """Append a little-endian IEEE-754 double."""
        buf = self._buf
        if len(buf) + 8 > self._cap:
            raise self._overflow()
        buf += _F64.pack(value)
        return self

    def raw(self, data: bytes) -> "Packer":
        """Append raw bytes verbatim."""
        buf = self._buf
        if len(buf) + len(data) > self._cap:
            raise self._overflow()
        buf += data
        return self

    def string(self, text: str, max_len: int = 255) -> "Packer":
        """Length-prefixed UTF-8 string (one length byte)."""
        encoded = text.encode("utf-8")
        if len(encoded) > max_len:
            raise ValueError(f"string longer than {max_len} bytes: {text!r}")
        buf = self._buf
        if len(buf) + 1 + len(encoded) > self._cap:
            raise self._overflow()
        buf += _U8.pack(len(encoded))
        buf += encoded
        return self

    @property
    def size(self) -> int:
        return len(self._buf)

    def bytes(self, pad_to: int | None = None) -> bytes:
        """Return the packed bytes, zero-padded to ``pad_to`` if given."""
        buf = self._buf
        if pad_to is None:
            return bytes(buf)
        if len(buf) > pad_to:
            raise ValueError(f"packed {len(buf)} bytes > pad_to {pad_to}")
        out = bytearray(pad_to)
        out[: len(buf)] = buf
        return bytes(out)


class Unpacker:
    """Sequential binary reader matching :class:`Packer`.

    Raises :class:`~repro.errors.CorruptMetadata` on truncation so that
    callers parsing possibly-damaged sectors fail into the same error
    class the software cross-checks use.
    """

    __slots__ = ("_data", "_offset", "_len")

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._offset = offset
        self._len = len(data)

    def _truncated(self, count: int) -> CorruptMetadata:
        return CorruptMetadata(
            f"truncated structure: wanted {count} bytes at "
            f"offset {self._offset} of {self._len}"
        )

    def u8(self) -> int:
        """Read an unsigned byte."""
        offset = self._offset
        if offset + 1 > self._len:
            raise self._truncated(1)
        self._offset = offset + 1
        return self._data[offset]

    def u16(self) -> int:
        """Read a little-endian unsigned 16-bit integer."""
        offset = self._offset
        if offset + 2 > self._len:
            raise self._truncated(2)
        self._offset = offset + 2
        return _U16.unpack_from(self._data, offset)[0]

    def u32(self) -> int:
        """Read a little-endian unsigned 32-bit integer."""
        offset = self._offset
        if offset + 4 > self._len:
            raise self._truncated(4)
        self._offset = offset + 4
        return _U32.unpack_from(self._data, offset)[0]

    def u64(self) -> int:
        """Read a little-endian unsigned 64-bit integer."""
        offset = self._offset
        if offset + 8 > self._len:
            raise self._truncated(8)
        self._offset = offset + 8
        return _U64.unpack_from(self._data, offset)[0]

    def f64(self) -> float:
        """Read a little-endian IEEE-754 double."""
        offset = self._offset
        if offset + 8 > self._len:
            raise self._truncated(8)
        self._offset = offset + 8
        return _F64.unpack_from(self._data, offset)[0]

    def raw(self, count: int) -> bytes:
        """Read ``count`` raw bytes.  Always an independent ``bytes``
        copy, even when the unpacker wraps a ``memoryview`` over a
        reusable buffer — callers may hold the result indefinitely."""
        offset = self._offset
        end = offset + count
        if end > self._len:
            raise self._truncated(count)
        self._offset = end
        return bytes(self._data[offset:end])

    def string(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        offset = self._offset
        if offset + 1 > self._len:
            raise self._truncated(1)
        length = self._data[offset]
        offset += 1
        end = offset + length
        if end > self._len:
            self._offset = offset
            raise self._truncated(length)
        self._offset = end
        return str(self._data[offset:end], "utf-8")

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        """Bytes left to read."""
        return self._len - self._offset
