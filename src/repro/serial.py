"""Binary serialization helpers shared by every on-disk format.

All metadata in this reproduction really serializes to 512-byte sectors;
recovery code paths parse those bytes back, so a crash genuinely
round-trips through the "disk".  This module provides a tiny
reader/writer pair over ``struct`` plus the checksum used by leader
pages, log records and the name table.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import CorruptMetadata


def checksum(data: bytes) -> int:
    """32-bit checksum used by all on-disk structures (CRC-32)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class Packer:
    """Append-only binary writer with fixed-capacity enforcement.

    A ``Packer`` refuses to grow past ``capacity`` bytes, which models
    the hard sector/page boundary every on-disk structure must respect.
    """

    def __init__(self, capacity: int | None = None):
        self._parts: list[bytes] = []
        self._size = 0
        self._capacity = capacity

    def _append(self, data: bytes) -> None:
        if self._capacity is not None and self._size + len(data) > self._capacity:
            raise ValueError(
                f"packed structure overflows capacity {self._capacity}"
            )
        self._parts.append(data)
        self._size += len(data)

    def u8(self, value: int) -> "Packer":
        """Append an unsigned byte."""
        self._append(struct.pack("<B", value))
        return self

    def u16(self, value: int) -> "Packer":
        """Append a little-endian unsigned 16-bit integer."""
        self._append(struct.pack("<H", value))
        return self

    def u32(self, value: int) -> "Packer":
        """Append a little-endian unsigned 32-bit integer."""
        self._append(struct.pack("<I", value))
        return self

    def u64(self, value: int) -> "Packer":
        """Append a little-endian unsigned 64-bit integer."""
        self._append(struct.pack("<Q", value))
        return self

    def f64(self, value: float) -> "Packer":
        """Append a little-endian IEEE-754 double."""
        self._append(struct.pack("<d", value))
        return self

    def raw(self, data: bytes) -> "Packer":
        """Append raw bytes verbatim."""
        self._append(data)
        return self

    def string(self, text: str, max_len: int = 255) -> "Packer":
        """Length-prefixed UTF-8 string (one length byte)."""
        encoded = text.encode("utf-8")
        if len(encoded) > max_len:
            raise ValueError(f"string longer than {max_len} bytes: {text!r}")
        self.u8(len(encoded))
        self._append(encoded)
        return self

    @property
    def size(self) -> int:
        return self._size

    def bytes(self, pad_to: int | None = None) -> bytes:
        """Return the packed bytes, zero-padded to ``pad_to`` if given."""
        data = b"".join(self._parts)
        if pad_to is not None:
            if len(data) > pad_to:
                raise ValueError(f"packed {len(data)} bytes > pad_to {pad_to}")
            data = data.ljust(pad_to, b"\x00")
        return data


#: precompiled scalar codecs — ``Struct.unpack_from`` avoids both the
#: per-call format parse and the intermediate slice of ``_take``.
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


class Unpacker:
    """Sequential binary reader matching :class:`Packer`.

    Raises :class:`~repro.errors.CorruptMetadata` on truncation so that
    callers parsing possibly-damaged sectors fail into the same error
    class the software cross-checks use.
    """

    __slots__ = ("_data", "_offset")

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._offset = offset

    def _truncated(self, count: int) -> CorruptMetadata:
        return CorruptMetadata(
            f"truncated structure: wanted {count} bytes at "
            f"offset {self._offset} of {len(self._data)}"
        )

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise self._truncated(count)
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def u8(self) -> int:
        """Read an unsigned byte."""
        offset = self._offset
        if offset + 1 > len(self._data):
            raise self._truncated(1)
        self._offset = offset + 1
        return self._data[offset]

    def u16(self) -> int:
        """Read a little-endian unsigned 16-bit integer."""
        offset = self._offset
        if offset + 2 > len(self._data):
            raise self._truncated(2)
        self._offset = offset + 2
        return _U16.unpack_from(self._data, offset)[0]

    def u32(self) -> int:
        """Read a little-endian unsigned 32-bit integer."""
        offset = self._offset
        if offset + 4 > len(self._data):
            raise self._truncated(4)
        self._offset = offset + 4
        return _U32.unpack_from(self._data, offset)[0]

    def u64(self) -> int:
        """Read a little-endian unsigned 64-bit integer."""
        offset = self._offset
        if offset + 8 > len(self._data):
            raise self._truncated(8)
        self._offset = offset + 8
        return _U64.unpack_from(self._data, offset)[0]

    def f64(self) -> float:
        """Read a little-endian IEEE-754 double."""
        offset = self._offset
        if offset + 8 > len(self._data):
            raise self._truncated(8)
        self._offset = offset + 8
        return _F64.unpack_from(self._data, offset)[0]

    def raw(self, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        return bytes(self._take(count))

    def string(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        length = self.u8()
        return self._take(length).decode("utf-8")

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._offset
