"""Exception taxonomy shared by every subsystem in the reproduction.

The hierarchy mirrors the failure classes the paper reasons about:
hardware sector damage, label mismatches (CFS' Trident check), metadata
corruption discovered by software cross-checks, and simulated crashes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DiskError(ReproError):
    """Base class for errors raised by the disk simulator."""


class DiskRangeError(DiskError):
    """An I/O addressed sectors outside the disk."""


class DamagedSectorError(DiskError):
    """A read touched a sector that is detectably damaged.

    The paper's failure model: a fault damages one or two *consecutive*
    sectors, and the damage is detectable when the sector is next read.
    """

    def __init__(self, address: int):
        super().__init__(f"sector {address} is detectably damaged")
        self.address = address


class LabelCheckError(DiskError):
    """A Trident label verification failed (CFS robustness check).

    On the real hardware this check ran in microcode before the data
    transfer; here it is raised by the simulator when the label computed
    by the file system does not match the label stored on the sector.
    """

    def __init__(self, address: int, expected: bytes, actual: bytes):
        super().__init__(
            f"label mismatch at sector {address}: "
            f"expected {expected!r}, found {actual!r}"
        )
        self.address = address
        self.expected = expected
        self.actual = actual


class SimulatedCrash(ReproError):
    """Raised when an armed crash point fires during an I/O.

    The file system under test must *not* catch this; the test harness
    catches it, discards all volatile state, and reboots the volume to
    exercise recovery.
    """


class FsError(ReproError):
    """Base class for file-system level errors (CFS, FSD and FFS)."""


class FileNotFound(FsError):
    """No file with the given name (and version) exists."""


class FileExists(FsError):
    """A create collided with an existing name and version."""


class VolumeFull(FsError):
    """The allocator could not find enough free pages."""


class CorruptMetadata(FsError):
    """A software cross-check (leader page, checksum, double-read
    comparison, B-tree invariant) found inconsistent metadata."""


class DegradedVolumeError(CorruptMetadata):
    """Every rung of the read-path escalation ladder failed.

    Retry (transient fault), duplicate-copy repair and mirror fallback
    all came up empty: the data is genuinely gone from the media.  The
    volume is marked degraded read-only; the operator's escape hatch is
    the offline salvager (``python -m repro salvage IMAGE OUT``).

    Subclasses :class:`CorruptMetadata` so existing cross-check
    handlers still classify it as detected (never silent) corruption.
    """

    def __init__(self, reason: str):
        super().__init__(
            f"{reason}; volume degraded to read-only "
            "(run `python -m repro salvage` to rebuild)"
        )
        self.reason = reason


class LogFull(FsError):
    """A single log record would not fit in the log file.

    The paper: "A log entry that is longer than the log file will cause
    a crash, but the log is forced long before this should occur."
    """


class NotMounted(FsError):
    """An operation was attempted on an unmounted or crashed volume."""
