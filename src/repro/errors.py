"""Exception taxonomy shared by every subsystem in the reproduction.

The hierarchy mirrors the failure classes the paper reasons about:
hardware sector damage, label mismatches (CFS' Trident check), metadata
corruption discovered by software cross-checks, and simulated crashes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DiskError(ReproError):
    """Base class for errors raised by the disk simulator."""


class DiskRangeError(DiskError):
    """An I/O addressed sectors outside the disk."""


class DamagedSectorError(DiskError):
    """A read touched a sector that is detectably damaged.

    The paper's failure model: a fault damages one or two *consecutive*
    sectors, and the damage is detectable when the sector is next read.
    """

    def __init__(self, address: int):
        super().__init__(f"sector {address} is detectably damaged")
        self.address = address


class LabelCheckError(DiskError):
    """A Trident label verification failed (CFS robustness check).

    On the real hardware this check ran in microcode before the data
    transfer; here it is raised by the simulator when the label computed
    by the file system does not match the label stored on the sector.
    """

    def __init__(self, address: int, expected: bytes, actual: bytes):
        super().__init__(
            f"label mismatch at sector {address}: "
            f"expected {expected!r}, found {actual!r}"
        )
        self.address = address
        self.expected = expected
        self.actual = actual


class SimulatedCrash(ReproError):
    """Raised when an armed crash point fires during an I/O.

    The file system under test must *not* catch this; the test harness
    catches it, discards all volatile state, and reboots the volume to
    exercise recovery.
    """


class FsError(ReproError):
    """Base class for file-system level errors (CFS, FSD and FFS)."""


class FileNotFound(FsError):
    """No file with the given name (and version) exists."""


class FileExists(FsError):
    """A create collided with an existing name and version."""


class VolumeFull(FsError):
    """The allocator could not find enough free pages."""


class CorruptMetadata(FsError):
    """A software cross-check (leader page, checksum, double-read
    comparison, B-tree invariant) found inconsistent metadata."""


class DegradedVolumeError(CorruptMetadata):
    """Every rung of the read-path escalation ladder failed.

    Retry (transient fault), duplicate-copy repair and mirror fallback
    all came up empty: the data is genuinely gone from the media.  The
    volume is marked degraded read-only; the operator's escape hatch is
    the offline salvager (``python -m repro salvage IMAGE OUT``).

    Subclasses :class:`CorruptMetadata` so existing cross-check
    handlers still classify it as detected (never silent) corruption.
    """

    def __init__(self, reason: str, fault_site: int | None = None):
        site = f" (fault site: sector {fault_site})" if fault_site is not None else ""
        super().__init__(
            f"{reason}{site}; volume degraded to read-only "
            "(run `python -m repro salvage` to rebuild)"
        )
        self.reason = reason
        #: disk address of the read that exhausted the ladder, when the
        #: failing rung knew one (both-copies-damaged, copies-differ).
        #: ``None`` for degradations without a single site (lost log
        #: records at mount time).
        self.fault_site = fault_site


class LogFull(FsError):
    """A single log record would not fit in the log file.

    The paper: "A log entry that is longer than the log file will cause
    a crash, but the log is forced long before this should occur."
    """


class NotMounted(FsError):
    """An operation was attempted on an unmounted or crashed volume."""


#: the client-visible error classes of the traffic engine's contract.
ERROR_CLASSES = ("retryable", "fatal", "degraded")


def classify_error(error: BaseException) -> str:
    """Classify an operation failure for the client retry contract.

    * ``retryable`` — media-level failures that a later attempt may not
      see again: transient sector damage, label mismatches, any disk
      error, and ``NotMounted`` (the op raced a crash/recover cycle).
      Permanent damage also lands here; the retry budget exhausts and
      the op resolves as a typed failure.
    * ``degraded`` — the escalation ladder dropped the volume to
      read-only; retrying cannot help and clients must fail fast.
    * ``fatal`` — semantic errors (no such file, version collision,
      volume full, detected metadata corruption) where a retry would
      deterministically repeat the failure.
    """
    if isinstance(error, DegradedVolumeError):
        return "degraded"
    if isinstance(error, (DiskError, NotMounted)):
        return "retryable"
    return "fatal"
