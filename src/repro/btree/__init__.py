"""Page-based B-tree substrate shared by the CFS and FSD name tables."""

from repro.btree.btree import BTree
from repro.btree.node import INTERNAL, LEAF, Node, max_entry_bytes
from repro.btree.pager import MemoryPager, Pager

__all__ = [
    "BTree",
    "INTERNAL",
    "LEAF",
    "MemoryPager",
    "Node",
    "Pager",
    "max_entry_bytes",
]
