"""B-tree node representation and its 512-byte-page serialization.

Nodes are small (one disk sector in FSD, two in CFS), so nodes are
fully re-serialized on every write; simplicity beats in-page slot
surgery at this scale, and every byte still round-trips through the
simulated disk.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import CorruptMetadata

LEAF = 1
INTERNAL = 2

#: kind byte + count word.
_NODE_HEADER_BYTES = 3
#: per-entry overhead in a leaf: klen u16 + vlen u16.
_LEAF_ENTRY_OVERHEAD = 4
#: per-key overhead in an internal node: klen u16 + child u32.
_INTERNAL_ENTRY_OVERHEAD = 6
#: leftmost child pointer of an internal node.
_INTERNAL_FIRST_CHILD_BYTES = 4

#: precompiled codecs for the hand-rolled (de)serializers below.
_HEADER = struct.Struct("<BH")
_LEAF_ENTRY = struct.Struct("<HH")
_INTERNAL_ENTRY = struct.Struct("<HI")
_U32 = struct.Struct("<I")


@dataclass(slots=True)
class Node:
    """One B-tree node, either a leaf or an internal node.

    Leaves hold parallel ``keys``/``values``.  Internal nodes hold
    ``keys`` as separators and ``children`` with one more element than
    ``keys``; subtree ``children[i]`` holds keys ``k`` with
    ``keys[i-1] <= k < keys[i]``.
    """

    kind: int
    keys: list[bytes] = field(default_factory=list)
    values: list[bytes] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.kind == LEAF

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def serialized_size(self) -> int:
        """Exact on-page size of this node when serialized."""
        if self.kind == LEAF:
            payload = sum(
                _LEAF_ENTRY_OVERHEAD + len(k) + len(v)
                for k, v in zip(self.keys, self.values)
            )
            return _NODE_HEADER_BYTES + payload
        payload = sum(_INTERNAL_ENTRY_OVERHEAD + len(k) for k in self.keys)
        return _NODE_HEADER_BYTES + _INTERNAL_FIRST_CHILD_BYTES + payload

    def fits(self, page_size: int) -> bool:
        """True when the node serializes within ``page_size`` bytes."""
        return self.serialized_size() <= page_size

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self, page_size: int) -> bytes:
        """Serialize the node, zero-padded to ``page_size``."""
        parts = [_HEADER.pack(self.kind, len(self.keys))]
        if self.kind == LEAF:
            if len(self.keys) != len(self.values):
                raise CorruptMetadata("leaf keys/values length mismatch")
            pack_entry = _LEAF_ENTRY.pack
            for key, value in zip(self.keys, self.values):
                parts.append(pack_entry(len(key), len(value)))
                parts.append(key)
                parts.append(value)
        else:
            if len(self.children) != len(self.keys) + 1:
                raise CorruptMetadata("internal children/keys length mismatch")
            parts.append(_U32.pack(self.children[0]))
            pack_entry = _INTERNAL_ENTRY.pack
            for key, child in zip(self.keys, self.children[1:]):
                parts.append(pack_entry(len(key), child))
                parts.append(key)
        data = b"".join(parts)
        if len(data) > page_size:
            raise ValueError(
                f"packed structure overflows capacity {page_size}"
            )
        return data.ljust(page_size, b"\x00")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Node":
        # Hand-rolled parse: node reads dominate the host-CPU profile,
        # so this avoids the per-field Unpacker calls.  Truncation
        # still raises CorruptMetadata, matching the Unpacker path.
        size = len(data)
        if size < _NODE_HEADER_BYTES:
            raise CorruptMetadata(
                f"truncated structure: wanted {_NODE_HEADER_BYTES} bytes "
                f"at offset 0 of {size}"
            )
        kind = data[0]
        if kind not in (LEAF, INTERNAL):
            raise CorruptMetadata(f"bad node kind byte {kind}")
        count = data[1] | (data[2] << 8)
        offset = _NODE_HEADER_BYTES
        keys: list[bytes] = []
        node = cls(kind=kind, keys=keys)
        try:
            if kind == LEAF:
                values = node.values
                for _ in range(count):
                    klen = data[offset] | (data[offset + 1] << 8)
                    vlen = data[offset + 2] | (data[offset + 3] << 8)
                    offset += 4
                    end = offset + klen + vlen
                    if end > size:
                        raise IndexError
                    keys.append(data[offset:offset + klen])
                    values.append(data[offset + klen:end])
                    offset = end
            else:
                children = node.children
                children.append(
                    int.from_bytes(data[offset:offset + 4], "little")
                )
                offset += 4
                for _ in range(count):
                    klen = data[offset] | (data[offset + 1] << 8)
                    children.append(
                        int.from_bytes(data[offset + 2:offset + 6], "little")
                    )
                    offset += 6
                    end = offset + klen
                    if end > size:
                        raise IndexError
                    keys.append(data[offset:end])
                    offset = end
        except IndexError:
            raise CorruptMetadata(
                f"truncated structure: wanted more bytes at "
                f"offset {offset} of {size}"
            ) from None
        return node


def max_entry_bytes(page_size: int) -> int:
    """Largest key+value a leaf can hold two of (split feasibility)."""
    return (page_size - _NODE_HEADER_BYTES) // 2 - _LEAF_ENTRY_OVERHEAD
