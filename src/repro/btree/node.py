"""B-tree node representation and its 512-byte-page serialization.

Nodes are small (one disk sector in FSD, two in CFS), so nodes are
fully re-serialized on every write; simplicity beats in-page slot
surgery at this scale, and every byte still round-trips through the
simulated disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CorruptMetadata
from repro.serial import Packer, Unpacker

LEAF = 1
INTERNAL = 2

#: kind byte + count word.
_NODE_HEADER_BYTES = 3
#: per-entry overhead in a leaf: klen u16 + vlen u16.
_LEAF_ENTRY_OVERHEAD = 4
#: per-key overhead in an internal node: klen u16 + child u32.
_INTERNAL_ENTRY_OVERHEAD = 6
#: leftmost child pointer of an internal node.
_INTERNAL_FIRST_CHILD_BYTES = 4


@dataclass
class Node:
    """One B-tree node, either a leaf or an internal node.

    Leaves hold parallel ``keys``/``values``.  Internal nodes hold
    ``keys`` as separators and ``children`` with one more element than
    ``keys``; subtree ``children[i]`` holds keys ``k`` with
    ``keys[i-1] <= k < keys[i]``.
    """

    kind: int
    keys: list[bytes] = field(default_factory=list)
    values: list[bytes] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.kind == LEAF

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def serialized_size(self) -> int:
        """Exact on-page size of this node when serialized."""
        if self.is_leaf:
            payload = sum(
                _LEAF_ENTRY_OVERHEAD + len(k) + len(v)
                for k, v in zip(self.keys, self.values)
            )
            return _NODE_HEADER_BYTES + payload
        payload = sum(_INTERNAL_ENTRY_OVERHEAD + len(k) for k in self.keys)
        return _NODE_HEADER_BYTES + _INTERNAL_FIRST_CHILD_BYTES + payload

    def fits(self, page_size: int) -> bool:
        """True when the node serializes within ``page_size`` bytes."""
        return self.serialized_size() <= page_size

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self, page_size: int) -> bytes:
        """Serialize the node, zero-padded to ``page_size``."""
        packer = Packer(capacity=page_size)
        packer.u8(self.kind)
        packer.u16(len(self.keys))
        if self.is_leaf:
            if len(self.keys) != len(self.values):
                raise CorruptMetadata("leaf keys/values length mismatch")
            for key, value in zip(self.keys, self.values):
                packer.u16(len(key))
                packer.u16(len(value))
                packer.raw(key)
                packer.raw(value)
        else:
            if len(self.children) != len(self.keys) + 1:
                raise CorruptMetadata("internal children/keys length mismatch")
            packer.u32(self.children[0])
            for key, child in zip(self.keys, self.children[1:]):
                packer.u16(len(key))
                packer.u32(child)
                packer.raw(key)
        return packer.bytes(pad_to=page_size)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Node":
        reader = Unpacker(data)
        kind = reader.u8()
        if kind not in (LEAF, INTERNAL):
            raise CorruptMetadata(f"bad node kind byte {kind}")
        count = reader.u16()
        node = cls(kind=kind)
        if kind == LEAF:
            for _ in range(count):
                klen = reader.u16()
                vlen = reader.u16()
                node.keys.append(reader.raw(klen))
                node.values.append(reader.raw(vlen))
        else:
            node.children.append(reader.u32())
            for _ in range(count):
                klen = reader.u16()
                child = reader.u32()
                node.keys.append(reader.raw(klen))
                node.children.append(child)
        return node


def max_entry_bytes(page_size: int) -> int:
    """Largest key+value a leaf can hold two of (split feasibility)."""
    return (page_size - _NODE_HEADER_BYTES) // 2 - _LEAF_ENTRY_OVERHEAD
