"""Page storage interface for the B-tree.

The same B-tree implementation backs both file name tables in the
reproduction; only the pager differs:

* CFS uses a write-through pager over multi-sector pages written in
  place (non-atomically — the corruption source the paper fixes),
* FSD uses a pager over the logged, double-written page cache, whose
  writeback is submitted to the volume's I/O scheduler
  (:mod:`repro.disk.sched`) rather than written in place — queued
  pages land elevator-sorted behind the log records that cover them.

``MemoryPager`` exists for unit and property tests.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import CorruptMetadata, DegradedVolumeError
from repro.obs import NULL_OBS


class Pager(Protocol):
    """What the B-tree needs from its page store.

    Page 0 is reserved for the tree's meta page.  ``allocate`` never
    returns 0.
    """

    page_size: int

    def read(self, page_no: int) -> bytes:
        """Return the page (zeroes for a never-written meta page).

        May raise :class:`~repro.errors.CorruptMetadata` — including
        its :class:`~repro.errors.DegradedVolumeError` subclass when a
        backing store's read-escalation ladder (retry, duplicate-copy
        repair, mirror fallback) is exhausted.  The B-tree propagates
        it; it never partially applies a mutation whose page reads
        failed.
        """
        ...

    def write(self, page_no: int, data: bytes) -> None:
        """Store the page, padded to the page size."""
        ...

    def allocate(self) -> int:
        """Hand out an unused page number (never 0)."""
        ...

    def free(self, page_no: int) -> None:
        """Recycle a page for later allocation."""
        ...


class MemoryPager:
    """In-memory pager for tests; enforces the page-size contract."""

    def __init__(self, page_size: int = 512, page_limit: int | None = None):
        self.page_size = page_size
        self.page_limit = page_limit
        self._pages: dict[int, bytes] = {}
        self._free: list[int] = []
        self._next = 1  # page 0 is the meta page
        self.reads = 0
        self.writes = 0
        self._poisoned: set[int] = set()
        #: observability attach point (no-op unless a test attaches one).
        self.obs = NULL_OBS

    def poison(self, page_no: int) -> None:
        """Make ``page_no`` unreadable (tests: a page whose backing
        store exhausted the escalation ladder)."""
        self._poisoned.add(page_no)

    def read(self, page_no: int) -> bytes:
        """Return the page; raises for never-allocated non-meta pages."""
        self.reads += 1
        self.obs.count("btree.page_reads")
        if page_no in self._poisoned:
            raise DegradedVolumeError(f"memory pager page {page_no} dead")
        if page_no != 0 and page_no not in self._pages:
            raise CorruptMetadata(f"read of unallocated page {page_no}")
        return self._pages.get(page_no, b"\x00" * self.page_size)

    def write(self, page_no: int, data: bytes) -> None:
        """Store the page, padded to the page size."""
        if len(data) > self.page_size:
            raise CorruptMetadata(
                f"page write of {len(data)} bytes > page size {self.page_size}"
            )
        self.writes += 1
        self.obs.count("btree.page_writes")
        self._pages[page_no] = data.ljust(self.page_size, b"\x00")

    def allocate(self) -> int:
        """Hand out an unused page number (never 0)."""
        if self._free:
            page_no = self._free.pop()
        else:
            page_no = self._next
            self._next += 1
        if self.page_limit is not None and page_no >= self.page_limit:
            raise CorruptMetadata("pager out of pages")
        self._pages[page_no] = b"\x00" * self.page_size
        return page_no

    def free(self, page_no: int) -> None:
        """Recycle a page for later allocation."""
        if page_no == 0:
            raise CorruptMetadata("cannot free the meta page")
        self._pages.pop(page_no, None)
        self._free.append(page_no)

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)
