"""Page-based B-tree with variable-length keys and values.

Both file name tables in the reproduction (CFS' and FSD's) are this
tree over different pagers.  The tree is a classic B+-tree variant:
values live only in leaves, internal nodes hold separator keys, splits
are size-based (entries are variable length), and deletion rebalances
by merging or evenly redistributing siblings.

The tree never caches node *pages* itself: every node touch is a
``pager.read``/``pager.write``, so the owning file system sees and
accounts for every page access (FSD's pager is its logged cache, CFS'
pager is write-through to disk).  What it does keep is a host-side
parse memo keyed by page bytes: re-reading an unchanged page skips the
byte-level parse, but never the pager call, so simulated accounting is
untouched.
"""

from __future__ import annotations

import bisect
import struct
from typing import Iterator

from repro.btree.node import INTERNAL, LEAF, Node, max_entry_bytes
from repro.btree.pager import Pager
from repro.errors import CorruptMetadata
from repro.serial import Unpacker

_META_MAGIC = 0x42543031  # "BT01"
#: meta page layout: magic u32, root u32, height u32, count u64.
_META = struct.Struct("<IIIQ")

#: parsed-node memo entries kept before wholesale eviction; sized to
#: cover a working set of hot pages without growing unboundedly on
#: scan-heavy workloads.
_PARSE_MEMO_LIMIT = 512

#: per-page identity memo entries kept before wholesale eviction.
_PAGE_MEMO_LIMIT = 2048


class BTree:
    """A B-tree rooted in ``pager`` page 0 (the meta page)."""

    def __init__(self, pager: Pager):
        self.pager = pager
        self._root = 0
        self._height = 0
        self._count = 0
        self._min_node_bytes = pager.page_size // 4
        self._max_entry = max_entry_bytes(pager.page_size)
        #: bytes -> parsed Node template.  Keyed by page *value* (two
        #: pages with identical bytes share one template, which is why
        #: :meth:`_read_node` always hands out a copy — callers mutate
        #: nodes in place before writing them back).
        self._parse_memo: dict[bytes, Node] = {}
        #: page_no -> (bytes object, template).  First-level cache in
        #: front of :attr:`_parse_memo`: while the pager keeps handing
        #: back the *same* bytes object for a page, the template is
        #: reused on an ``is`` check alone — no 512-byte hash, no
        #: re-parse.  A write (or cache eviction + re-read) yields a
        #: fresh bytes object, so identity misses are exactly the
        #: pages whose content may have changed.
        self._page_memo: dict[int, tuple[bytes, Node]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, pager: Pager) -> "BTree":
        """Format a fresh tree: empty root leaf + meta page."""
        tree = cls(pager)
        root = pager.allocate()
        tree._root = root
        tree._height = 1
        tree._count = 0
        tree._write_node(root, Node(kind=LEAF))
        tree._write_meta()
        return tree

    @classmethod
    def open(cls, pager: Pager) -> "BTree":
        """Open an existing tree by reading its meta page."""
        tree = cls(pager)
        tree._read_meta()
        return tree

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key`` or ``None``."""
        # Point lookups dominate name-table traffic; the descent binds
        # the pager read once and inlines the template identity-hit
        # check (keep in sync with ``_load_template``).
        read = self.pager.read
        page_memo = self._page_memo
        page_no = self._root
        while True:
            data = read(page_no)
            entry = page_memo.get(page_no)
            if entry is not None and entry[0] is data:
                node = entry[1]
            else:
                node = self._template_for(page_no, data)
            if node.kind == LEAF:
                break
            page_no = node.children[bisect.bisect_right(node.keys, key)]
        keys = node.keys
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return node.values[index]
        return None

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert or replace; returns True if the key was new."""
        if len(key) + len(value) > self._max_entry:
            raise ValueError(
                f"entry of {len(key) + len(value)} bytes exceeds the "
                f"{self._max_entry}-byte limit for {self.pager.page_size}-byte pages"
            )
        was_new, split = self._insert(self._root, key, value)
        if split is not None:
            separator, right_page = split
            new_root = self.pager.allocate()
            self._write_node(
                new_root,
                Node(
                    kind=INTERNAL,
                    keys=[separator],
                    children=[self._root, right_page],
                ),
            )
            self._root = new_root
            self._height += 1
        if was_new:
            self._count += 1
        if was_new or split is not None:
            self._write_meta()
        return was_new

    def delete(self, key: bytes) -> bool:
        """Delete ``key``; returns True if it existed."""
        deleted = self._delete(self._root, key)
        if not deleted:
            return False
        root = self._load_template(self._root)
        if root.kind != LEAF and not root.keys:
            # The root collapsed to a single child; shrink the tree.
            old_root = self._root
            self._root = root.children[0]
            self._height -= 1
            self.pager.free(old_root)
        self._count -= 1
        self._write_meta()
        return True

    def scan(self, start: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries in key order, beginning at ``start``."""
        # Return the inner iterator directly: a ``yield from`` wrapper
        # would add one generator resume per yielded entry.
        return self._scan(self._root, start)

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries whose key begins with ``prefix``."""
        for key, value in self._scan(self._root, prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # meta page
    # ------------------------------------------------------------------
    def _write_meta(self) -> None:
        data = _META.pack(_META_MAGIC, self._root, self._height, self._count)
        self.pager.write(0, data.ljust(self.pager.page_size, b"\x00"))

    def _read_meta(self) -> None:
        reader = Unpacker(self.pager.read(0))
        magic = reader.u32()
        if magic != _META_MAGIC:
            raise CorruptMetadata(f"bad B-tree meta magic {magic:#x}")
        self._root = reader.u32()
        self._height = reader.u32()
        self._count = reader.u64()

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def _load_template(self, page_no: int) -> Node:
        """Shared parse-memo template for a page (never mutate it)."""
        data = self.pager.read(page_no)
        entry = self._page_memo.get(page_no)
        if entry is not None and entry[0] is data:
            return entry[1]
        return self._template_for(page_no, data)

    def _template_for(self, page_no: int, data: bytes) -> Node:
        """Memo-miss half of :meth:`_load_template`: derive the template
        from already-read page bytes and refresh both memo layers.  The
        hot descent loops inline the read + identity-hit check and fall
        back here, so keep this in sync with ``_load_template``."""
        memo = self._parse_memo
        template = memo.get(data)
        if template is None:
            if len(memo) >= _PARSE_MEMO_LIMIT:
                memo.clear()
            template = Node.from_bytes(data)
            memo[data] = template
        page_memo = self._page_memo
        if len(page_memo) >= _PAGE_MEMO_LIMIT:
            page_memo.clear()
        page_memo[page_no] = (data, template)
        return template

    def _read_node(self, page_no: int) -> Node:
        template = self._load_template(page_no)
        return Node(
            template.kind,
            template.keys.copy(),
            template.values.copy(),
            template.children.copy(),
        )

    def _read_node_ro(self, page_no: int) -> Node:
        """Read a node for read-only traversal: returns the shared
        parse-memo template directly, skipping the per-call list
        copies.  Callers must never mutate the result — mutation paths
        (insert/delete/rebalance) go through :meth:`_read_node`."""
        return self._load_template(page_no)

    def _write_node(self, page_no: int, node: Node) -> None:
        # Drop the identity entry: the page's bytes are changing, so
        # the next read must re-derive its template (usually via the
        # content memo, or a fresh parse).
        self._page_memo.pop(page_no, None)
        self.pager.write(page_no, node.to_bytes(self.pager.page_size))

    # ------------------------------------------------------------------
    # descent helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _child_index(node: Node, key: bytes) -> int:
        """Index of the child subtree that may contain ``key``."""
        return bisect.bisect_right(node.keys, key)

    def _child_for(self, node: Node, key: bytes) -> int:
        return node.children[self._child_index(node, key)]

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def _insert(
        self, page_no: int, key: bytes, value: bytes
    ) -> tuple[bool, tuple[bytes, int] | None]:
        # Descend on the shared template; materialise a mutable copy
        # only at the level that actually changes (leaves always do,
        # internal nodes only when a split bubbles up).
        template = self._load_template(page_no)
        if template.kind == LEAF:
            node = Node(
                LEAF, template.keys.copy(), template.values.copy(), []
            )
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                was_new = False
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                was_new = True
        else:
            child_index = bisect.bisect_right(template.keys, key)
            was_new, split = self._insert(
                template.children[child_index], key, value
            )
            if split is None:
                return was_new, None
            # The recursion only wrote descendant pages, so the
            # template still matches this page's bytes; copy it now.
            node = Node(
                INTERNAL,
                template.keys.copy(),
                [],
                template.children.copy(),
            )
            separator, right_page = split
            node.keys.insert(child_index, separator)
            node.children.insert(child_index + 1, right_page)

        if node.fits(self.pager.page_size):
            self._write_node(page_no, node)
            return was_new, None
        return was_new, self._split_and_write(page_no, node)

    def _split_and_write(self, page_no: int, node: Node) -> tuple[bytes, int]:
        """Split an oversized node in two; returns (separator, right page)."""
        left, separator, right = _split_node(node)
        right_page = self.pager.allocate()
        self._write_node(page_no, left)
        self._write_node(right_page, right)
        return separator, right_page

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def _delete(self, page_no: int, key: bytes) -> bool:
        # Same copy-on-write shape as _insert: mutable copies are built
        # only for levels that change (the leaf, and the parent once
        # the child delete succeeded and may need rebalancing).
        template = self._load_template(page_no)
        keys = template.keys
        if template.kind == LEAF:
            index = bisect.bisect_left(keys, key)
            if index >= len(keys) or keys[index] != key:
                return False
            node = Node(LEAF, keys.copy(), template.values.copy(), [])
            del node.keys[index]
            del node.values[index]
            self._write_node(page_no, node)
            return True

        child_index = bisect.bisect_right(keys, key)
        if not self._delete(template.children[child_index], key):
            return False
        node = Node(INTERNAL, keys.copy(), [], template.children.copy())
        if self._fix_child(node, child_index):
            self._write_node(page_no, node)
        return True

    def _fix_child(self, parent: Node, child_index: int) -> bool:
        """Rebalance ``parent.children[child_index]`` if underfull.

        Returns True when the parent itself was modified.  Merges the
        child with a sibling when the combination fits in one page,
        otherwise redistributes entries evenly between the two.
        """
        child_page = parent.children[child_index]
        # Templates suffice throughout: the rebalance builds fresh
        # nodes (_merge_nodes / _split_node never mutate their inputs),
        # so nothing here needs a mutable copy except ``parent``,
        # which the caller already materialised.
        child = self._load_template(child_page)
        if child.serialized_size() >= self._min_node_bytes and child.keys:
            return False
        if len(parent.children) == 1:
            return False  # nothing to balance against (root's only child)

        if child_index + 1 < len(parent.children):
            left_index = child_index
        else:
            left_index = child_index - 1
        left_page = parent.children[left_index]
        right_page = parent.children[left_index + 1]
        left = child if left_page == child_page else self._load_template(left_page)
        right = child if right_page == child_page else self._load_template(right_page)
        separator = parent.keys[left_index]

        merged = _merge_nodes(left, separator, right)
        if merged.fits(self.pager.page_size):
            self._write_node(left_page, merged)
            self.pager.free(right_page)
            del parent.keys[left_index]
            del parent.children[left_index + 1]
            return True

        new_left, new_separator, new_right = _split_node(merged)
        self._write_node(left_page, new_left)
        self._write_node(right_page, new_right)
        parent.keys[left_index] = new_separator
        return True

    # ------------------------------------------------------------------
    # scan
    # ------------------------------------------------------------------
    def scan_leaves(
        self, start: bytes | None = None
    ) -> Iterator[tuple[list[bytes], list[bytes]]]:
        """Yield (keys, values) per leaf, in key order.

        Batch counterpart of :meth:`scan` for bulk readers (the name
        table's ``enumerate``): one generator resume per *leaf* instead
        of per entry.  The yielded lists belong to the shared parse
        templates — callers must never mutate them.
        """
        stack: list[tuple[int, bytes | None]] = [(self._root, start)]
        read = self.pager.read
        page_memo = self._page_memo
        while stack:
            page_no, start = stack.pop()
            # _load_template inlined (identity-hit path); keep in sync.
            data = read(page_no)
            entry = page_memo.get(page_no)
            if entry is not None and entry[0] is data:
                node = entry[1]
            else:
                node = self._template_for(page_no, data)
            keys = node.keys
            if node.kind == LEAF:
                if start is None:
                    yield keys, node.values
                else:
                    first = bisect.bisect_left(keys, start)
                    yield keys[first:], node.values[first:]
                continue
            first = 0 if start is None else bisect.bisect_right(keys, start)
            children = node.children
            for index in range(len(children) - 1, first, -1):
                stack.append((children[index], None))
            stack.append((children[first], start))

    def _scan(
        self, page_no: int, start: bytes | None
    ) -> Iterator[tuple[bytes, bytes]]:
        # Iterative depth-first walk (explicit stack, leftmost subtree
        # on top): same node-read order as the recursive form, without
        # a generator frame per level per item.
        stack: list[tuple[int, bytes | None]] = [(page_no, start)]
        read = self.pager.read
        page_memo = self._page_memo
        while stack:
            page_no, start = stack.pop()
            # _load_template inlined (identity-hit path); keep in sync.
            data = read(page_no)
            entry = page_memo.get(page_no)
            if entry is not None and entry[0] is data:
                node = entry[1]
            else:
                node = self._template_for(page_no, data)
            keys = node.keys
            if node.kind == LEAF:
                if start is None:
                    yield from zip(keys, node.values)
                else:
                    first = bisect.bisect_left(keys, start)
                    yield from zip(keys[first:], node.values[first:])
                continue
            first = 0 if start is None else bisect.bisect_right(keys, start)
            children = node.children
            for index in range(len(children) - 1, first, -1):
                stack.append((children[index], None))
            stack.append((children[first], start))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify structural invariants; raises CorruptMetadata on any
        violation.  Used by tests and by FSD's software cross-checks."""
        count = self._check(self._root, None, None, depth=1)
        if count != self._count:
            raise CorruptMetadata(
                f"meta count {self._count} != actual entries {count}"
            )

    def _check(
        self, page_no: int, low: bytes | None, high: bytes | None, depth: int
    ) -> int:
        node = self._read_node(page_no)
        if not node.fits(self.pager.page_size):
            raise CorruptMetadata(f"page {page_no} oversized")
        if node.keys != sorted(node.keys):
            raise CorruptMetadata(f"page {page_no} keys out of order")
        if len(set(node.keys)) != len(node.keys):
            raise CorruptMetadata(f"page {page_no} duplicate keys")
        for key in node.keys:
            if low is not None and key < low:
                raise CorruptMetadata(f"page {page_no} key below bound")
            if high is not None and key >= high:
                raise CorruptMetadata(f"page {page_no} key above bound")
        if node.is_leaf:
            if depth != self._height:
                raise CorruptMetadata(
                    f"leaf {page_no} at depth {depth}, height {self._height}"
                )
            return len(node.keys)
        if not node.keys and page_no == self._root:
            raise CorruptMetadata("internal root with no keys")
        total = 0
        bounds = [low, *node.keys, high]
        for index, child in enumerate(node.children):
            total += self._check(
                child, bounds[index], bounds[index + 1], depth + 1
            )
        return total

    def depth(self) -> int:
        """Current tree height (1 = a single leaf)."""
        return self._height


# ----------------------------------------------------------------------
# node surgery shared by split and rebalance
# ----------------------------------------------------------------------
def _split_node(node: Node) -> tuple[Node, bytes, Node]:
    """Split ``node`` into two of roughly equal serialized size.

    Returns (left, separator, right).  For leaves the separator is the
    first right key (and stays in the leaf); for internal nodes the
    separator is promoted out.
    """
    if node.is_leaf:
        split = _even_split_index(
            [4 + len(k) + len(v) for k, v in zip(node.keys, node.values)]
        )
        left = Node(
            kind=LEAF, keys=node.keys[:split], values=node.values[:split]
        )
        right = Node(
            kind=LEAF, keys=node.keys[split:], values=node.values[split:]
        )
        return left, right.keys[0], right

    split = _even_split_index([6 + len(k) for k in node.keys])
    # Promote keys[split]; it must leave at least one key on each side.
    split = min(max(split, 1), len(node.keys) - 1)
    left = Node(
        kind=INTERNAL,
        keys=node.keys[:split],
        children=node.children[: split + 1],
    )
    right = Node(
        kind=INTERNAL,
        keys=node.keys[split + 1 :],
        children=node.children[split + 1 :],
    )
    return left, node.keys[split], right


def _merge_nodes(left: Node, separator: bytes, right: Node) -> Node:
    """Combine two siblings (with their parent separator, for internal
    nodes) into a single possibly-oversized node."""
    if left.kind != right.kind:
        raise CorruptMetadata("sibling kind mismatch")
    if left.is_leaf:
        return Node(
            kind=LEAF,
            keys=left.keys + right.keys,
            values=left.values + right.values,
        )
    return Node(
        kind=INTERNAL,
        keys=left.keys + [separator] + right.keys,
        children=left.children + right.children,
    )


def _even_split_index(entry_sizes: list[int]) -> int:
    """Index splitting ``entry_sizes`` into halves of similar total size;
    both halves are guaranteed non-empty."""
    if len(entry_sizes) < 2:
        raise CorruptMetadata("cannot split a node with fewer than 2 entries")
    total = sum(entry_sizes)
    running = 0
    for index, size in enumerate(entry_sizes):
        running += size
        if running >= total / 2:
            split = index + 1
            break
    return min(max(split, 1), len(entry_sizes) - 1)
