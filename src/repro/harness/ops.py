"""Table 2 operation measurements, shared by the wall-clock benchmark
and the §6 model-validation benchmark.

Methodology mirrors the paper: "All creates, opens, and deletes are
for different files in the same directory."  Latencies are averages
over K operations on a volume populated like a working Cedar disk
(hundreds of small files plus some large, fragmented ones, so seeks
and name-table cache misses are realistic).  Think time separates
operations; any group-commit work the daemon does during think time is
charged back into the per-operation average, exactly as a wall-clock
loop would see it.  An unmeasured "far" operation between measured
ones positions the head the way a mixed workload would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.cfs.scavenger import scavenge
from repro.core.fsd import FSD
from repro.harness.runner import drain_clock, measure
from repro.harness.scenarios import (
    Scale,
    SMALL,
    cfs_volume,
    fsd_volume,
    populate_recovery_volume,
)
from repro.workloads.generators import payload

#: operations averaged per measurement.
K_OPS = 40
#: bytes in a "large" file (paper-era large: ~2 MB).
LARGE_BYTES = 2 * 1024 * 1024
#: virtual think time between benchmark operations.
THINK_MS = 30.0


@dataclass
class Table2Result:
    """Average virtual milliseconds per operation."""

    ms: dict[str, float]
    recovery_ms: float
    recovery_note: str


def _avg_ops(
    disk,
    fn: Callable[[int], object],
    count: int,
    before: Callable[[int], object] | None = None,
    think_ms: float = THINK_MS,
) -> float:
    """Average elapsed ms of ``fn(i)`` over ``count`` calls.

    ``before(i)`` runs unmeasured first (e.g. to position the head the
    way the paper's benchmark sequence would).  Think time between
    operations is idle, but any disk/CPU work the commit daemon does
    during it is added back to the average — a wall-clock benchmark
    loop pays for the log forces it triggers.
    """
    total = 0.0
    for index in range(count):
        if before is not None:
            before(index)
        total += measure(disk, lambda: fn(index)).elapsed_ms
        background = measure(disk, lambda: drain_clock(disk.clock, think_ms))
        total += background.disk_ms + background.cpu_ms
    return total / count


def _scramble_cache(fs_open, names: list[str], count: int, seed: int) -> None:
    """Touch random files so a later phase sees realistic cache state
    instead of entries left hot by the previous phase."""
    rng = random.Random(seed)
    for _ in range(count):
        fs_open(rng.choice(names))


def _measure_table2_ops(
    prefix: str, disk, fs, adapter, scale: Scale
) -> dict[str, float]:
    """The common Table 2 phase sequence (both file systems share the
    create/open/read/delete surface)."""
    rng = random.Random(11)
    names = populate_recovery_volume(adapter, scale)
    small_names = [n for n in names if n.startswith("aged/")]
    drain_clock(disk.clock, 1_000)

    ms: dict[str, float] = {}
    ms[f"{prefix} small create"] = _avg_ops(
        disk, lambda i: fs.create(f"dir/new-{i:04d}", b"x"), K_OPS
    )
    # Fill out the benchmark directory (unmeasured), per the paper's
    # "different files in the same directory" methodology.
    for index in range(K_OPS, 3 * K_OPS):
        fs.create(f"dir/new-{index:04d}", payload(700, index))

    ms[f"{prefix} large create"] = _avg_ops(
        disk,
        lambda i: fs.create(f"big/large-{i}", payload(LARGE_BYTES, i)),
        2,
    )

    # Opens target one directory-local working set of aged files whose
    # name-table pages have long since been written home and evicted.
    quarter = len(small_names) // 4
    open_set = small_names[quarter : quarter + 40]
    scramble_set = small_names[: -K_OPS]
    _scramble_cache(fs.open, scramble_set, 250, seed=19)

    big = fs.open("big/large-0")
    pages = big.byte_size // 512

    def far(i: int) -> None:
        # Unmeasured head displacement: the paper's workstation did
        # other work (here: a page of a large file far from the
        # metadata) between benchmarked operations.
        fs.read(big, rng.randrange(pages) * 512, 512)

    ms[f"{prefix} open"] = _avg_ops(
        disk, lambda i: fs.open(rng.choice(open_set)), K_OPS, before=far
    )

    def open_read(i: int) -> None:
        handle = fs.open(rng.choice(open_set))
        fs.read(handle, 0, min(512, handle.byte_size))

    ms[f"{prefix} open+read"] = _avg_ops(disk, open_read, K_OPS, before=far)

    aged_handles = [fs.open(name) for name in open_set[:15]]

    def away(i: int) -> None:
        handle = aged_handles[i % len(aged_handles)]
        fs.read(handle, 0, min(512, handle.byte_size))

    def read_page(i: int) -> None:
        fs.read(big, rng.randrange(pages) * 512, 512)

    ms[f"{prefix} read page"] = _avg_ops(disk, read_page, K_OPS, before=away)

    delete_set = small_names[-K_OPS:]
    _scramble_cache(fs.open, scramble_set, 250, seed=23)
    ms[f"{prefix} small delete"] = _avg_ops(
        disk, lambda i: fs.delete(delete_set[i]), K_OPS, before=far
    )
    ms[f"{prefix} large delete"] = _avg_ops(
        disk, lambda i: fs.delete(f"big/large-{i}"), 2
    )
    return ms


def measure_fsd_table2(
    scale: Scale = SMALL, include_recovery: bool = True
) -> Table2Result:
    """Run the full Table 2 sequence on a fresh FSD volume."""
    disk, fs, adapter = fsd_volume(scale)
    ms = _measure_table2_ops("fsd", disk, fs, adapter, scale)

    recovery_ms, note = 0.0, "skipped"
    if include_recovery:
        # Reuse this volume: make it dirty, crash, measure the mount.
        for index in range(30):
            fs.create(f"dirty/f-{index:03d}", payload(900, index))
        fs.force()
        fs.create("dirty/uncommitted", b"lost")
        fs.crash()
        took = measure(disk, lambda: FSD.mount(disk))
        recovered: FSD = took.result  # type: ignore[assignment]
        report = recovered.mount_report
        note = (
            f"{report.log_records_replayed} records, "
            f"{report.pages_replayed} pages, VAM "
            + ("loaded" if report.vam_loaded else "rebuilt")
        )
        recovery_ms = took.elapsed_ms
    return Table2Result(ms=ms, recovery_ms=recovery_ms, recovery_note=note)


def measure_cfs_table2(
    scale: Scale = SMALL, include_recovery: bool = True
) -> Table2Result:
    """Run the full Table 2 sequence on a fresh CFS volume."""
    disk, fs, adapter = cfs_volume(scale)
    ms = _measure_table2_ops("cfs", disk, fs, adapter, scale)

    recovery_ms, note = 0.0, "skipped"
    if include_recovery:
        fs.crash()
        took = measure(disk, lambda: scavenge(disk, scale.cfs_params))
        _, report = took.result  # type: ignore[misc]
        note = (
            f"{report.files_recovered} files from "
            f"{report.sectors_scanned} labels"
        )
        recovery_ms = took.elapsed_ms
    return Table2Result(ms=ms, recovery_ms=recovery_ms, recovery_note=note)


def measure_fsd_recovery(scale: Scale = SMALL) -> tuple[float, str]:
    """Standalone FSD crash-recovery measurement."""
    result = measure_fsd_table2(scale, include_recovery=True)
    return result.recovery_ms, result.recovery_note


def measure_cfs_recovery(scale: Scale = SMALL) -> tuple[float, str]:
    """Standalone CFS scavenge measurement."""
    result = measure_cfs_table2(scale, include_recovery=True)
    return result.recovery_ms, result.recovery_note
