"""Bit-identity fingerprints of a simulated run.

The raw-speed work (extent-batched I/O, precomputed timing tables,
cache bookkeeping) is only allowed to change *wall-clock* time: the
simulated clock, the bytes on the platter, the label fields, the disk
op counters, and every obs metric must come out bit-identical on the
same seed.  A fingerprint collapses all of that into a few stable
hashes so a before/after comparison is one string compare instead of
an eyeball diff.

``repro profile`` commits the wall-clock numbers; this module commits
the *correctness* side of the same bargain.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def disk_digest(disk) -> str:
    """SHA-256 over every stored sector and label, address-ordered.

    Reads the storage dicts directly (like :mod:`repro.disk.image`),
    so the digest is independent of how sectors were written.
    Unwritten sectors are implicit zeros on the simulated drive and do
    not contribute; a refactor that materialises explicit zero sectors
    would change the digest, so storage must stay sparse.
    """
    h = hashlib.sha256()
    for address in sorted(disk._data):
        h.update(address.to_bytes(4, "big"))
        h.update(disk._data[address])
    h.update(b"|labels|")
    for address in sorted(disk._labels):
        h.update(address.to_bytes(4, "big"))
        h.update(disk._labels[address])
    return h.hexdigest()


def stats_digest(stats) -> str:
    """Stable rendering of every DiskStats field."""
    fields = sorted(vars(stats).items())
    return ";".join(f"{name}={value!r}" for name, value in fields)


def metrics_digest(obs) -> str:
    """SHA-256 over the sorted counter/gauge snapshot of ``obs``.

    Histograms are included via their counts and sums; the null
    observer hashes to a fixed empty string.
    """
    snap = obs.snapshot()
    h = hashlib.sha256()
    for name in sorted(snap.counters):
        h.update(f"c:{name}={snap.counters[name]!r};".encode())
    for name in sorted(snap.gauges):
        h.update(f"g:{name}={snap.gauges[name]!r};".encode())
    for name in sorted(snap.histograms):
        hist = snap.histograms[name]
        h.update(
            f"h:{name}={hist.total!r}/{tuple(hist.counts)};".encode()
        )
    return h.hexdigest()


@dataclass(frozen=True)
class RunFingerprint:
    """Everything a speed refactor must hold constant."""

    sim_now_ms: float
    cpu_busy_ms: float
    disk_busy_ms: float
    disk_sha256: str
    stats: str
    metrics_sha256: str

    def as_dict(self) -> dict:
        """JSON-friendly rendering, stable key order."""
        return {
            "sim_now_ms": self.sim_now_ms,
            "cpu_busy_ms": self.cpu_busy_ms,
            "disk_busy_ms": self.disk_busy_ms,
            "disk_sha256": self.disk_sha256,
            "stats": self.stats,
            "metrics_sha256": self.metrics_sha256,
        }


def fingerprint(disk, obs=None) -> RunFingerprint:
    """Fingerprint a finished run on ``disk`` (obs optional)."""
    from repro.obs import NULL_OBS

    return RunFingerprint(
        sim_now_ms=disk.clock.now_ms,
        cpu_busy_ms=disk.clock.cpu_busy_ms,
        disk_busy_ms=disk.clock.disk_busy_ms,
        disk_sha256=disk_digest(disk),
        stats=stats_digest(disk.stats),
        metrics_sha256=metrics_digest(obs if obs is not None else NULL_OBS),
    )


def makedo_fingerprint(scale=None, modules: int = 60) -> RunFingerprint:
    """Run the makedo workload on a fresh volume and fingerprint it.

    The canonical bit-identity probe: FULL scale ("t300") with an
    :class:`~repro.obs.Observer` attached, so simulated time, platter
    bytes, op counters and metrics are all covered by one call.
    """
    from repro.core.fsd import FSD
    from repro.disk.disk import SimDisk
    from repro.harness.adapters import FsdAdapter
    from repro.harness.scenarios import FULL
    from repro.obs import Observer
    from repro.workloads.makedo import MakeDoWorkload

    if scale is None:
        scale = FULL
    disk = SimDisk(geometry=scale.geometry)
    FSD.format(disk, scale.fsd_params)
    obs = Observer(disk.clock)
    fs = FSD.mount(disk, obs=obs)
    adapter = FsdAdapter(fs)
    workload = MakeDoWorkload(modules=modules)
    workload.setup(adapter)
    workload.run(adapter)
    fs.unmount()
    return fingerprint(disk, obs)
