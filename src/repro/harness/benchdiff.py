"""Compare two ``BENCH_*.json`` documents: ``repro bench diff``.

Every benchmark in this tree writes a JSON document of nested numeric
results.  This module flattens two such documents to dotted paths
(``rows.1.latency.p95_ms``), pairs them up, and classifies each metric
change as a **regression**, an **improvement**, or noise, using a
direction heuristic on the metric name: latencies, elapsed times,
waits, misses and error counts are better *lower*; throughputs,
batching factors, hit ratios and accuracies are better *higher*;
anything unrecognized is reported neutrally (a change, not a verdict).

The CLI prints a highlighted table of everything that moved more than
``--threshold`` and exits non-zero only when ``--fail-over`` is given
and a regression exceeds it — so CI can run it informationally on
every PR and gate only where a committed baseline warrants it.
"""

from __future__ import annotations

import json
from pathlib import Path

#: name fragments marking metrics that are better when they go down.
LOWER_IS_BETTER = (
    "_ms", "_s", "elapsed", "time", "lateness", "misses", "errors",
    "waits", "evictions", "seeks", "stall",
)
#: name fragments marking metrics that are better when they go up.
HIGHER_IS_BETTER = (
    "throughput", "batching", "hit_ratio", "accuracy", "ops_per",
    "absorbed", "share",
)
#: fragments that are identity/config, not performance — never judged.
NEUTRAL = (
    "seed", "schema_version", "clients", "count", "version", "calls",
)


def flatten(document: dict, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of ``document`` keyed by its dotted path
    (bools excluded: they are verdicts, not measurements)."""
    out: dict[str, float] = {}
    for key, value in document.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, dict):
            out.update(flatten(value, path))
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, dict):
                    out.update(flatten(item, f"{path}.{index}"))
    return out


def direction(path: str) -> str:
    """``lower`` / ``higher`` / ``neutral`` — which way is better for
    the metric at ``path`` (last component decides; identity fields
    are always neutral)."""
    leaf = path.rsplit(".", 1)[-1].lower()
    if any(fragment in leaf for fragment in NEUTRAL):
        return "neutral"
    if any(fragment in leaf for fragment in HIGHER_IS_BETTER):
        return "higher"
    if any(fragment in leaf for fragment in LOWER_IS_BETTER):
        return "lower"
    return "neutral"


def diff(
    before: dict, after: dict, threshold: float = 0.02
) -> list[dict]:
    """Classified changes between two benchmark documents.

    Returns one row per metric present in both documents whose
    relative change exceeds ``threshold`` (plus every metric that
    appeared or vanished), sorted worst regression first.
    """
    flat_before = flatten(before)
    flat_after = flatten(after)
    rows: list[dict] = []
    for path in sorted(set(flat_before) | set(flat_after)):
        old = flat_before.get(path)
        new = flat_after.get(path)
        if old is None or new is None:
            rows.append({
                "metric": path,
                "before": old,
                "after": new,
                "change": None,
                "verdict": "added" if old is None else "removed",
            })
            continue
        if old == new:
            continue
        change = (new - old) / abs(old) if old else float("inf")
        if abs(change) <= threshold:
            continue
        sense = direction(path)
        if sense == "neutral":
            verdict = "changed"
        elif (sense == "lower") == (new < old):
            verdict = "improved"
        else:
            verdict = "regressed"
        rows.append({
            "metric": path,
            "before": old,
            "after": new,
            "change": change,
            "verdict": verdict,
        })

    def severity(row: dict) -> tuple:
        order = {"regressed": 0, "changed": 1, "added": 2,
                 "removed": 2, "improved": 3}
        magnitude = abs(row["change"]) if row["change"] is not None else 0.0
        return (order[row["verdict"]], -magnitude)

    rows.sort(key=severity)
    return rows


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def diff_lines(rows: list[dict], threshold: float) -> list[str]:
    """The highlighted comparison table."""
    if not rows:
        return [f"no metric moved more than {threshold:.1%}"]
    width = max(len(row["metric"]) for row in rows)
    marks = {"regressed": "!!", "improved": "ok", "changed": "~",
             "added": "+", "removed": "-"}
    lines = [
        f"{'':2} {'metric':<{width}} {'before':>12} {'after':>12} "
        f"{'change':>8}"
    ]
    for row in rows:
        change = (
            f"{row['change']:+.1%}" if row["change"] is not None else ""
        )
        lines.append(
            f"{marks[row['verdict']]:>2} {row['metric']:<{width}} "
            f"{_fmt(row['before']):>12} {_fmt(row['after']):>12} "
            f"{change:>8}"
        )
    regressions = sum(1 for r in rows if r["verdict"] == "regressed")
    improvements = sum(1 for r in rows if r["verdict"] == "improved")
    lines.append(
        f"{len(rows)} metrics moved > {threshold:.1%}: "
        f"{regressions} regressed (!!), {improvements} improved (ok)"
    )
    return lines


def cmd_bench_diff(args) -> int:
    """The ``repro bench diff`` subcommand."""
    before = json.loads(Path(args.before).read_text())
    after = json.loads(Path(args.after).read_text())
    rows = diff(before, after, threshold=args.threshold)
    print(f"bench diff: {args.before} -> {args.after}")
    for line in diff_lines(rows, args.threshold):
        print(line)
    if args.fail_over is not None:
        worst = max(
            (abs(r["change"]) for r in rows
             if r["verdict"] == "regressed" and r["change"] is not None),
            default=0.0,
        )
        if worst > args.fail_over:
            print(
                f"FAIL: worst regression {worst:.1%} exceeds "
                f"--fail-over {args.fail_over:.1%}"
            )
            return 1
    return 0


def add_subparser(sub) -> None:
    """Register ``bench`` (with its ``diff`` action) on the parser."""
    p = sub.add_parser(
        "bench",
        help="benchmark tooling (bench diff: compare two "
             "BENCH_*.json documents)",
    )
    actions = p.add_subparsers(dest="bench_command", required=True)
    d = actions.add_parser(
        "diff", help="compare two BENCH_*.json files"
    )
    d.add_argument("before", help="baseline BENCH_*.json")
    d.add_argument("after", help="candidate BENCH_*.json")
    d.add_argument("--threshold", type=float, default=0.02,
                   help="relative change below this is noise "
                        "(default: 0.02)")
    d.add_argument("--fail-over", type=float, default=None,
                   metavar="FRAC",
                   help="exit 1 when a regression exceeds this "
                        "fraction (off by default)")
    d.set_defaults(fn=cmd_bench_diff)
