"""Uniform adapters so one workload runs on FSD, CFS and FFS.

The adapter surface is the least common denominator the paper's
benchmarks need: create-with-content, open, read, delete, list.
FSD/CFS have versions (a re-create makes the next version); FFS does
not, so its adapter emulates re-creation by unlink+create, and it
creates parent directories lazily.
"""

from __future__ import annotations

from repro.bsd.ffs import FFS, FfsFile
from repro.cfs.cfs import CFS, CfsFile
from repro.core.fsd import FSD, FsdFile
from repro.errors import FileExists, FileNotFound


class FsdAdapter:
    """Adapter over a mounted FSD volume."""

    name = "FSD"

    def __init__(self, fs: FSD):
        self.fs = fs

    def create(self, path: str, data: bytes = b"", keep: int = 2) -> FsdFile:
        """Create (the next version of) a file with content."""
        return self.fs.create(path, data, keep=keep)

    def open(self, path: str) -> FsdFile:
        """Open the newest version."""
        return self.fs.open(path)

    def read(self, handle: FsdFile) -> bytes:
        """Read the whole file."""
        return self.fs.read(handle)

    def read_at(self, handle: FsdFile, offset: int, length: int) -> bytes:
        """Read a byte range."""
        return self.fs.read(handle, offset, length)

    def write(self, handle: FsdFile, offset: int, data: bytes) -> None:
        """Write (and possibly extend) an open file — used by the
        traffic engine's update sessions."""
        self.fs.write(handle, offset, data)

    def delete(self, path: str) -> None:
        """Delete the newest version."""
        self.fs.delete(path)

    def list(self, prefix: str = "") -> int:
        """Number of files under ``prefix``."""
        return len(self.fs.list(prefix))

    def exists(self, path: str) -> bool:
        """True when the file exists."""
        return self.fs.exists(path)

    def settle(self) -> None:
        """Flush pending commits (so measurement windows are fair)."""
        self.fs.force()


class CfsAdapter:
    """Adapter over a mounted CFS volume."""

    name = "CFS"

    def __init__(self, fs: CFS):
        self.fs = fs

    def create(self, path: str, data: bytes = b"", keep: int = 2) -> CfsFile:
        """Create (the next version of) a file with content."""
        return self.fs.create(path, data, keep=keep)

    def open(self, path: str) -> CfsFile:
        """Open the newest version."""
        return self.fs.open(path)

    def read(self, handle: CfsFile) -> bytes:
        """Read the whole file."""
        return self.fs.read(handle)

    def read_at(self, handle: CfsFile, offset: int, length: int) -> bytes:
        """Read a byte range."""
        return self.fs.read(handle, offset, length)

    def delete(self, path: str) -> None:
        """Delete the newest version."""
        self.fs.delete(path)

    def list(self, prefix: str = "") -> int:
        """Number of files under ``prefix``."""
        return len(self.fs.list(prefix))

    def exists(self, path: str) -> bool:
        """True when the file exists."""
        return self.fs.exists(path)

    def settle(self) -> None:
        """CFS writes through; nothing to flush."""


class FfsAdapter:
    """Adapter over a mounted FFS volume: path-based, no versions."""

    name = "4.3BSD"

    def __init__(self, fs: FFS):
        self.fs = fs
        self._dirs: set[str] = set()

    def _ensure_parent(self, path: str) -> None:
        parts = path.split("/")[:-1]
        walked = ""
        for component in parts:
            walked = f"{walked}/{component}" if walked else component
            if walked in self._dirs:
                continue
            try:
                self.fs.mkdir(walked)
            except FileExists:
                pass
            self._dirs.add(walked)

    def create(self, path: str, data: bytes = b"", keep: int = 2) -> FfsFile:
        """Create a file (unlink+create emulates a new version)."""
        self._ensure_parent(path)
        try:
            return self.fs.create(path, data)
        except FileExists:
            # "New version": FFS overwrites by unlink + create.
            self.fs.delete(path)
            return self.fs.create(path, data)

    def open(self, path: str) -> FfsFile:
        """Open the file at ``path``."""
        return self.fs.open(path)

    def read(self, handle: FfsFile) -> bytes:
        """Read the whole file."""
        return self.fs.read(handle)

    def read_at(self, handle: FfsFile, offset: int, length: int) -> bytes:
        """Read a byte range."""
        return self.fs.read(handle, offset, length)

    def delete(self, path: str) -> None:
        """Unlink the file."""
        self.fs.delete(path)

    def list(self, prefix: str = "") -> int:
        """Number of entries in the directory ``prefix``."""
        directory = prefix.rstrip("/")
        try:
            return len(self.fs.list(directory))
        except FileNotFound:
            return 0

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        return self.fs.exists(path)

    def settle(self) -> None:
        """FFS metadata is synchronous; nothing to flush."""
