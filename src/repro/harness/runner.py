"""Measurement plumbing shared by every benchmark.

Benchmarks measure *virtual* milliseconds and disk I/O counts, the two
metrics the paper's tables report.  A :class:`Measurement` window
snapshots the clock and the disk counters around a callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.disk.clock import SimClock
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry, TRIDENT_T300
from repro.disk.stats import DiskStats
from repro.disk.timing import DiskTiming


@dataclass
class Measurement:
    elapsed_ms: float
    cpu_ms: float
    disk_ms: float
    io: DiskStats
    result: object = None
    #: obs metrics delta over the window (when ``measure`` got an
    #: observer); layer totals via ``report.layer_breakdown``.
    obs_delta: object = None

    @property
    def total_ios(self) -> int:
        return self.io.total_ios

    def per(self, count: int) -> "Measurement":
        """Scale to a per-operation average."""
        if count <= 0:
            raise ValueError("count must be positive")
        return Measurement(
            elapsed_ms=self.elapsed_ms / count,
            cpu_ms=self.cpu_ms / count,
            disk_ms=self.disk_ms / count,
            io=self.io,
            result=self.result,
            obs_delta=self.obs_delta,
        )


def build_disk(
    geometry: DiskGeometry | None = None,
    timing: DiskTiming | None = None,
) -> SimDisk:
    """A fresh simulated drive (default: the ~306 MB Trident-class)."""
    return SimDisk(geometry=geometry or TRIDENT_T300, timing=timing)


def small_disk() -> SimDisk:
    """A ~38 MB drive for fast unit-style benches."""
    return SimDisk(geometry=DiskGeometry(cylinders=200, heads=8, sectors_per_track=48))


def measure(
    disk: SimDisk, fn: Callable[[], object], obs=None
) -> Measurement:
    """Run ``fn`` and capture elapsed virtual time and I/O deltas.

    With an :class:`~repro.obs.Observer` in ``obs``, the measurement
    also carries the metrics delta over the window (the obs analogue of
    the ``DiskStats`` subtraction happening next to it).
    """
    clock = disk.clock
    start = clock.snapshot()
    io_start = disk.stats.copy()
    obs_start = obs.snapshot() if obs is not None else None
    result = fn()
    end = clock.snapshot()
    return Measurement(
        elapsed_ms=end["now_ms"] - start["now_ms"],
        cpu_ms=end["cpu_busy_ms"] - start["cpu_busy_ms"],
        disk_ms=end["disk_busy_ms"] - start["disk_busy_ms"],
        io=disk.stats - io_start,
        result=result,
        obs_delta=(
            obs.snapshot() - obs_start if obs_start is not None else None
        ),
    )


def drain_clock(clock: SimClock, ms: float, step_ms: float = 100.0) -> None:
    """Advance virtual time in idle steps, firing due timers — lets the
    group-commit daemon run between measured phases.  Thin wrapper over
    :meth:`SimClock.drain`, kept for the existing harness call sites."""
    clock.drain(ms, step_ms=step_ms)
