"""Experiment harness: adapters, measurement, scenarios, reporting."""

from repro.harness.adapters import CfsAdapter, FfsAdapter, FsdAdapter
from repro.harness.report import Row, Table, ratio, shape_holds
from repro.harness.runner import (
    Measurement,
    build_disk,
    drain_clock,
    measure,
    small_disk,
)
from repro.harness.scenarios import (
    FULL,
    SMALL,
    Scale,
    cfs_volume,
    ffs_volume,
    fsd_volume,
    populate,
    populate_recovery_volume,
)

__all__ = [
    "CfsAdapter",
    "FULL",
    "FfsAdapter",
    "FsdAdapter",
    "Measurement",
    "Row",
    "SMALL",
    "Scale",
    "Table",
    "build_disk",
    "cfs_volume",
    "drain_clock",
    "ffs_volume",
    "fsd_volume",
    "measure",
    "populate",
    "populate_recovery_volume",
    "ratio",
    "shape_holds",
    "small_disk",
]
