"""Paper-vs-measured reporting.

Every benchmark emits rows through this module so the console output
and EXPERIMENTS.md use one format.  We reproduce *shape*, not absolute
1987 numbers, so each row carries both the paper's value and ours,
plus the ratio of ratios where the paper reports a speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Row:
    label: str
    paper: float | str
    measured: float | str
    unit: str = ""
    note: str = ""

    def formatted(self, widths: tuple[int, int, int]) -> str:
        """Render the row with the given column widths."""
        def fmt(value: float | str) -> str:
            if isinstance(value, float):
                return f"{value:,.1f}" if value < 1000 else f"{value:,.0f}"
            return str(value)

        label_w, paper_w, measured_w = widths
        return (
            f"  {self.label:<{label_w}} "
            f"{fmt(self.paper):>{paper_w}} "
            f"{fmt(self.measured):>{measured_w}}  "
            f"{self.unit:<6} {self.note}"
        )


@dataclass
class Table:
    title: str
    rows: list[Row] = field(default_factory=list)

    def add(
        self,
        label: str,
        paper: float | str,
        measured: float | str,
        unit: str = "",
        note: str = "",
    ) -> None:
        """Append a paper-vs-measured row."""
        self.rows.append(Row(label, paper, measured, unit, note))

    def render(self) -> str:
        """The whole table as aligned text."""
        label_w = max([len(r.label) for r in self.rows] + [len("operation")])
        paper_w = max(12, len("paper"))
        measured_w = max(12, len("measured"))
        header = (
            f"  {'operation':<{label_w}} {'paper':>{paper_w}} "
            f"{'measured':>{measured_w}}"
        )
        lines = [f"== {self.title} ==", header, "  " + "-" * (label_w + 30)]
        lines += [row.formatted((label_w, paper_w, measured_w)) for row in self.rows]
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table preceded by a blank line."""
        print()
        print(self.render())


def layer_breakdown(snapshot) -> str:
    """One-line per-layer counter totals from an obs ``Snapshot``.

    Duck-typed on ``snapshot.counters`` so benchmark scripts can pass
    either a full snapshot or a delta of two; histograms and gauges are
    levels/distributions rather than event totals and are left out.
    """
    totals: dict[str, float] = {}
    for name, value in snapshot.counters.items():
        layer = name.split(".", 1)[0]
        totals[layer] = totals.get(layer, 0.0) + value
    return " ".join(
        f"{layer}={totals[layer]:g}" for layer in sorted(totals)
    )


def ratio(numerator: float, denominator: float) -> float:
    """Safe speed-up ratio."""
    if denominator == 0:
        return float("inf")
    return numerator / denominator


def shape_holds(
    paper_ratio: float,
    measured_ratio: float,
    tolerance_factor: float = 3.0,
) -> bool:
    """True when the measured ratio preserves the paper's shape: same
    winner, and within ``tolerance_factor`` of the paper's factor."""
    if paper_ratio <= 0 or measured_ratio <= 0:
        return False
    if (paper_ratio >= 1.0) != (measured_ratio >= 1.0):
        # Different winner; allow near-unity ties.
        return abs(paper_ratio - measured_ratio) < 0.3
    larger = max(paper_ratio / measured_ratio, measured_ratio / paper_ratio)
    return larger <= tolerance_factor
