"""Canonical experiment setups shared by tests and benchmarks.

Two scales exist: ``SMALL`` (a ~38 MB drive, used by the test suite to
keep runtimes low) and ``FULL`` (the ~306 MB Trident-class drive of
the paper's evaluation, used by the benchmarks).  The *shape* of every
result holds at both scales; absolute seek distances and scan times
shrink on the small drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bsd.ffs import FFS
from repro.bsd.layout import FfsParams
from repro.cfs.cfs import CFS, CfsParams
from repro.core.data_cache import DEFAULT_READAHEAD_PAGES
from repro.core.fsd import FSD
from repro.core.layout import VolumeParams
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry, TRIDENT_T300
from repro.harness.adapters import CfsAdapter, FfsAdapter, FsdAdapter
from repro.workloads.generators import PaperFileSizes, payload


@dataclass(frozen=True)
class Scale:
    """One experiment scale: geometry plus per-FS parameters."""

    name: str
    geometry: DiskGeometry
    fsd_params: VolumeParams
    cfs_params: CfsParams
    ffs_params: FfsParams
    #: files pre-created before Table-2-style latency measurements.
    populate_files: int = 300
    #: files + big files for the "moderately full" recovery volumes.
    recovery_files: int = 400
    recovery_big_files: int = 4
    recovery_big_bytes: int = 2 * 1024 * 1024


SMALL = Scale(
    name="small",
    geometry=DiskGeometry(cylinders=200, heads=8, sectors_per_track=48),
    fsd_params=VolumeParams(
        nt_pages=1024, log_record_sectors=600, cache_pages=96
    ),
    cfs_params=CfsParams(nt_pages=512, cache_pages=48),
    ffs_params=FfsParams(
        cylinders_per_group=16, inodes_per_group=256, buffer_cache_blocks=64
    ),
    populate_files=150,
    recovery_files=150,
    recovery_big_files=2,
    recovery_big_bytes=1024 * 1024,
)

FULL = Scale(
    name="t300",
    geometry=TRIDENT_T300,
    fsd_params=VolumeParams(
        nt_pages=4096, log_record_sectors=768, cache_pages=96
    ),
    cfs_params=CfsParams(nt_pages=2048, cache_pages=64),
    ffs_params=FfsParams(
        cylinders_per_group=16, inodes_per_group=512, buffer_cache_blocks=64
    ),
    populate_files=600,
    recovery_files=1200,
    recovery_big_files=15,
    recovery_big_bytes=4 * 1024 * 1024,
)


# ----------------------------------------------------------------------
# volume factories
# ----------------------------------------------------------------------
def fsd_volume(
    scale: Scale = SMALL,
    sched: str = "fifo",
    data_cache_pages: int = 0,
    readahead_pages: int = DEFAULT_READAHEAD_PAGES,
) -> tuple[SimDisk, FSD, FsdAdapter]:
    """A freshly formatted, mounted FSD volume at ``scale``.

    ``sched`` selects the I/O scheduler policy for the mount
    (``fifo``/``scan``/``deadline``); ``data_cache_pages`` and
    ``readahead_pages`` size the data-page cache (0 pages disables it,
    the bit-compatible default).  Benchmarks use these to compare
    dispatch orders and cache policies on identical volumes.
    """
    disk = SimDisk(geometry=scale.geometry)
    FSD.format(disk, scale.fsd_params)
    fs = FSD.mount(
        disk,
        sched=sched,
        data_cache_pages=data_cache_pages,
        readahead_pages=readahead_pages,
    )
    return disk, fs, FsdAdapter(fs)


def cfs_volume(scale: Scale = SMALL) -> tuple[SimDisk, CFS, CfsAdapter]:
    """A freshly formatted, mounted CFS volume at ``scale``."""
    disk = SimDisk(geometry=scale.geometry)
    CFS.format(disk, scale.cfs_params)
    fs = CFS.mount(disk, scale.cfs_params)
    return disk, fs, CfsAdapter(fs)


def ffs_volume(scale: Scale = SMALL) -> tuple[SimDisk, FFS, FfsAdapter]:
    """A freshly formatted, mounted FFS volume at ``scale``."""
    disk = SimDisk(geometry=scale.geometry)
    FFS.format(disk, scale.ffs_params)
    fs = FFS.mount(disk, scale.ffs_params)
    return disk, fs, FfsAdapter(fs)


# ----------------------------------------------------------------------
# population
# ----------------------------------------------------------------------
def populate(
    adapter,
    count: int,
    directory: str = "aged",
    seed: int = 1987,
    max_bytes: int | None = 4_000,
) -> list[str]:
    """Pre-create ``count`` files so the name table has realistic depth.

    Small files by default (cheap to build, deep enough trees); pass
    ``max_bytes=None`` for the full paper distribution.
    """
    sizes = PaperFileSizes(seed=seed)
    names = []
    for index in range(count):
        size = sizes.sample()
        if max_bytes is not None:
            size = min(size, max_bytes)
        name = f"{directory}/file-{index:05d}"
        adapter.create(name, payload(size, index))
        names.append(name)
    adapter.settle()
    return names


def populate_recovery_volume(adapter, scale: Scale) -> list[str]:
    """The "moderately full" volume for the recovery and Table 2 runs.

    Besides the small files and large archives, the big-file area is
    *aged*: a band of medium files is created and every other one
    deleted, leaving holes, so subsequently created large files get the
    multi-run tables a volume in service would give them.
    """
    names = populate(adapter, scale.recovery_files, directory="aged")
    for index in range(scale.recovery_big_files):
        name = f"big/archive-{index:02d}"
        adapter.create(name, payload(scale.recovery_big_bytes, 7000 + index))
        names.append(name)
    hole_bytes = max(scale.recovery_big_bytes // 16, 64 * 1024)
    holes = 2 * scale.recovery_big_files
    for index in range(holes):
        adapter.create(f"frag/band-{index:02d}", payload(hole_bytes, index))
    for index in range(0, holes, 2):
        adapter.delete(f"frag/band-{index:02d}")
    adapter.settle()
    return names
