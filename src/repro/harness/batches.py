"""The batch workloads of Tables 3 and 4: 100 small creates, list 100
files, read 100 small files — "all for different files in the same
directory" — plus the MakeDo build, measured in disk I/Os."""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.runner import drain_clock, measure
from repro.workloads.generators import payload
from repro.workloads.makedo import MakeDoWorkload

#: files per batch, as in the paper.
BATCH_FILES = 100
#: a "small file": two sectors of data.
SMALL_BYTES = 900
#: virtual think time between operations (lets group commit batch the
#: way it would under a real client).
THINK_MS = 25.0


@dataclass
class BatchResult:
    """Disk I/Os (and elapsed virtual ms) per batch phase."""

    create_ios: int
    list_ios: int
    read_ios: int
    create_ms: float
    list_ms: float
    read_ms: float


def measure_batches(
    disk,
    adapter,
    directory: str = "bench",
    think_ms: float = THINK_MS,
    pollute: list[str] | None = None,
) -> BatchResult:
    """Create, list and read ``BATCH_FILES`` files in one directory,
    counting disk I/Os per phase (think time included in the window, so
    group-commit log writes are charged to the phase that caused them).

    ``pollute`` names files touched (unmeasured) between phases: the
    paper ran each phase as a separate program, so caches saw other
    traffic in between.
    """
    names = [f"{directory}/f-{i:03d}" for i in range(BATCH_FILES)]

    def create_phase() -> None:
        for index, name in enumerate(names):
            adapter.create(name, payload(SMALL_BYTES, index))
            drain_clock(disk.clock, think_ms)
        adapter.settle()

    creates = measure(disk, create_phase)

    def touch_others() -> None:
        for name in pollute or []:
            adapter.read(adapter.open(name))

    touch_others()
    listing = measure(disk, lambda: adapter.list(f"{directory}/"))
    touch_others()

    def read_phase() -> None:
        for name in names:
            handle = adapter.open(name)
            data = adapter.read(handle)
            assert len(data) == SMALL_BYTES
            drain_clock(disk.clock, think_ms)

    reads = measure(disk, read_phase)

    return BatchResult(
        create_ios=creates.io.total_ios,
        list_ios=listing.io.total_ios,
        read_ios=reads.io.total_ios,
        create_ms=creates.elapsed_ms,
        list_ms=listing.elapsed_ms,
        read_ms=reads.elapsed_ms,
    )


def measure_makedo(
    disk, adapter, modules: int = 30, think_ms: float = THINK_MS
) -> tuple[int, float]:
    """Run the MakeDo build (sources pre-created, unmeasured); returns
    (disk I/Os, elapsed virtual ms)."""
    workload = MakeDoWorkload(modules=modules)
    workload.setup(adapter)
    adapter.settle()
    drain_clock(disk.clock, 1_000)
    took = measure(disk, lambda: workload.run(adapter))
    adapter.settle()
    return took.io.total_ios, took.elapsed_ms
