"""The BSD buffer cache: block-granular, LRU, write-through here.

4.3 BSD's metadata writes are synchronous (the paper contrasts this
with logging in §5.3, citing Bach's discussion); data writes in this
simplified kernel are write-through as well, which matches how the
paper's Table 4 counts create I/Os (dirent + inode + data per create).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.bsd.layout import BLOCK_SECTORS
from repro.disk.disk import SimDisk


class BufferCache:
    """LRU cache of 4 KB blocks keyed by start sector address."""

    def __init__(self, disk: SimDisk, capacity_blocks: int):
        self.disk = disk
        self.capacity = capacity_blocks
        self._blocks: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _charge_serial(self, write: bool) -> None:
        cpu = self.disk.clock.cpu
        self.disk.clock.advance_cpu(
            cpu.bsd_write_serial_ms if write else cpu.bsd_block_serial_ms
        )

    def _charge_overlap(self, write: bool) -> None:
        cpu = self.disk.clock.cpu
        self.disk.clock.charge_overlapped_cpu(
            cpu.bsd_write_overlap_ms if write else cpu.bsd_read_overlap_ms
        )

    def read_block(self, address: int) -> bytes:
        """Read one block through the cache."""
        cached = self._blocks.get(address)
        if cached is not None:
            self.hits += 1
            self._blocks.move_to_end(address)
            return cached
        self.misses += 1
        self._charge_serial(write=False)
        self._charge_overlap(write=False)
        sectors = self.disk.read(address, BLOCK_SECTORS, cpu_overlap=True)
        data = b"".join(sectors)
        self._remember(address, data)
        return data

    def write_block(self, address: int, data: bytes) -> None:
        """Write one block through to disk (synchronous)."""
        data = data.ljust(BLOCK_SECTORS * 512, b"\x00")
        self._charge_serial(write=True)
        self._charge_overlap(write=True)
        sector_bytes = self.disk.geometry.sector_bytes
        sectors = [
            data[i : i + sector_bytes]
            for i in range(0, len(data), sector_bytes)
        ]
        self.disk.write(address, sectors, cpu_overlap=True)
        self._remember(address, data)

    def invalidate(self) -> None:
        """A crash: every buffered block vanishes."""
        self._blocks.clear()

    def forget(self, address: int) -> None:
        """Drop one block from the cache."""
        self._blocks.pop(address, None)

    def _remember(self, address: int, data: bytes) -> None:
        self._blocks[address] = data
        self._blocks.move_to_end(address)
        while len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
