"""Simplified 4.3 BSD FFS: the paper's Tables 4 and 5 comparison."""

from repro.bsd.buffer_cache import BufferCache
from repro.bsd.directory import decode_dir_block, encode_dir_block
from repro.bsd.ffs import FFS, FfsFile, FfsOpCounts, GroupBitmaps, ROOT_INO
from repro.bsd.fsck import FsckReport, fsck
from repro.bsd.inode import Inode, MODE_DIR, MODE_FILE, MODE_FREE
from repro.bsd.layout import (
    BLOCK_SECTORS,
    FfsLayout,
    FfsParams,
    INODE_BYTES,
    Superblock,
)

__all__ = [
    "BLOCK_SECTORS",
    "BufferCache",
    "FFS",
    "FfsFile",
    "FfsLayout",
    "FfsOpCounts",
    "FfsParams",
    "FsckReport",
    "GroupBitmaps",
    "INODE_BYTES",
    "Inode",
    "MODE_DIR",
    "MODE_FILE",
    "MODE_FREE",
    "ROOT_INO",
    "Superblock",
    "decode_dir_block",
    "encode_dir_block",
    "fsck",
]
