"""A simplified 4.3 BSD fast file system on the simulated disk.

This is the comparison system of the paper's Tables 4 and 5.  The
properties that matter for those tables are faithfully modelled:

* **synchronous metadata writes**: a create writes the directory block
  and the inode synchronously, in that order (the §5.3 contrast with
  logging: "a file create in UNIX writes the inode to disk before
  returning");
* **inode clustering**: inodes live in per-cylinder-group tables, so
  "a disk read fetches several inodes" — listing 100 files in one
  directory costs only a handful of I/Os (Table 4);
* **block-at-a-time data I/O** through a buffer cache, with big files
  laid out at a rotational-delay stride — the reason 4.2 BSD delivers
  about half the raw disk bandwidth in Table 5;
* **fsck recovery**: bitmaps are only persisted at clean unmount, so
  after a crash the volume must be checked end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bsd.buffer_cache import BufferCache
from repro.bsd.directory import (
    decode_dir_block,
    dir_block_fits,
    encode_dir_block,
    validate_component,
)
from repro.bsd.inode import (
    Inode,
    MODE_DIR,
    MODE_FILE,
    NDIRECT,
    PTRS_PER_INDIRECT,
    decode_indirect,
    encode_indirect,
)
from repro.bsd.layout import (
    BLOCK_SECTORS,
    FfsLayout,
    FfsParams,
    INODE_BYTES,
    Superblock,
)
from repro.disk.disk import SimDisk
from repro.errors import (
    CorruptMetadata,
    FileExists,
    FileNotFound,
    FsError,
    NotMounted,
    VolumeFull,
)
from repro.serial import Packer, Unpacker, checksum

_CG_MAGIC = 0x43473331  # "CG31"

_BLOCK_BYTES = BLOCK_SECTORS * 512

ROOT_INO = 2


@dataclass
class FfsFile:
    ino: int
    inode: Inode
    path: str

    @property
    def size(self) -> int:
        return self.inode.size


@dataclass
class FfsOpCounts:
    creates: int = 0
    opens: int = 0
    reads: int = 0
    writes: int = 0
    deletes: int = 0
    lists: int = 0
    namei_cache_hits: int = 0
    namei_dir_scans: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class GroupBitmaps:
    """Volatile per-group free maps (persisted only at clean unmount)."""

    def __init__(self, layout: FfsLayout):
        self.layout = layout
        self.data_blocks = [
            (layout.data_end(g) - layout.data_start(g)) // BLOCK_SECTORS
            for g in range(layout.group_count)
        ]
        self.block_used = [bytearray(n) for n in self.data_blocks]
        self.inode_used = [
            bytearray(layout.params.inodes_per_group)
            for _ in range(layout.group_count)
        ]
        self.block_cursor = [0] * layout.group_count

    # -- blocks ---------------------------------------------------------
    def block_addr(self, group: int, index: int) -> int:
        """Disk address of data block ``index`` in ``group``."""
        return self.layout.data_start(group) + index * BLOCK_SECTORS

    def index_of(self, address: int) -> tuple[int, int]:
        """(group, block index) for a data block address."""
        group = self.layout.group_of_sector(address)
        index = (address - self.layout.data_start(group)) // BLOCK_SECTORS
        if not (0 <= index < self.data_blocks[group]):
            raise CorruptMetadata(f"sector {address} is not a data block")
        return group, index

    def alloc_block(self, group: int, preferred: int | None = None) -> int:
        """Allocate a data block, preferring ``preferred`` (a block
        address) for rotational layout, then the group, then any group."""
        if preferred is not None:
            try:
                pref_group, index = self.index_of(preferred)
                if not self.block_used[pref_group][index]:
                    self.block_used[pref_group][index] = 1
                    return preferred
            except CorruptMetadata:
                pass
        order = [group] + [
            g for g in range(self.layout.group_count) if g != group
        ]
        for g in order:
            used = self.block_used[g]
            start = self.block_cursor[g]
            n = self.data_blocks[g]
            for probe in range(n):
                index = (start + probe) % n
                if not used[index]:
                    used[index] = 1
                    self.block_cursor[g] = index + 1
                    return self.block_addr(g, index)
        raise VolumeFull("FFS: no free blocks")

    def free_block(self, address: int) -> None:
        """Release a data block (double free raises)."""
        group, index = self.index_of(address)
        if not self.block_used[group][index]:
            raise CorruptMetadata(f"double free of block {address}")
        self.block_used[group][index] = 0

    # -- inodes -----------------------------------------------------------
    def alloc_inode(self, group: int) -> int:
        """Allocate a free inode, preferring ``group``."""
        order = [group] + [
            g for g in range(self.layout.group_count) if g != group
        ]
        per = self.layout.params.inodes_per_group
        for g in order:
            used = self.inode_used[g]
            for slot in range(per):
                ino = g * per + slot
                if ino in (0, 1):  # reserved, like the real FFS
                    continue
                if not used[slot]:
                    used[slot] = 1
                    return ino
        raise VolumeFull("FFS: no free inodes")

    def mark_inode(self, ino: int, used: bool) -> None:
        """Set an inode's bitmap state directly."""
        per = self.layout.params.inodes_per_group
        group, slot = divmod(ino, per)
        self.inode_used[group][slot] = 1 if used else 0

    # -- persistence (cg header blocks) -----------------------------------
    def encode_group(self, group: int) -> bytes:
        """Serialize the group's bitmaps into its cg header block."""
        body = Packer()
        body.u16(len(self.block_used[group]))
        body.raw(bytes(self.block_used[group]))
        body.raw(bytes(self.inode_used[group]))
        payload = body.bytes()
        out = Packer(capacity=_BLOCK_BYTES)
        out.u32(_CG_MAGIC)
        out.u32(checksum(payload))
        out.u32(len(payload))
        out.raw(payload)
        return out.bytes(pad_to=_BLOCK_BYTES)

    def decode_group(self, group: int, data: bytes) -> None:
        """Load the group's bitmaps from its cg header block."""
        reader = Unpacker(data)
        if reader.u32() != _CG_MAGIC:
            raise CorruptMetadata(f"bad cg header magic in group {group}")
        expect = reader.u32()
        payload = reader.raw(reader.u32())
        if checksum(payload) != expect:
            raise CorruptMetadata(f"cg header checksum in group {group}")
        body = Unpacker(payload)
        count = body.u16()
        if count != self.data_blocks[group]:
            raise CorruptMetadata(f"cg header geometry mismatch in {group}")
        self.block_used[group] = bytearray(body.raw(count))
        self.inode_used[group] = bytearray(
            body.raw(self.layout.params.inodes_per_group)
        )


class FFS:
    """One mounted FFS volume."""

    def __init__(
        self,
        disk: SimDisk,
        layout: FfsLayout,
        superblock: Superblock,
        bitmaps: GroupBitmaps,
    ):
        self.disk = disk
        self.clock = disk.clock
        self.layout = layout
        self.params = layout.params
        self.superblock = superblock
        self.bitmaps = bitmaps
        self.cache = BufferCache(disk, layout.params.buffer_cache_blocks)
        self.ops = FfsOpCounts()
        self._dnlc: dict[tuple[int, str], int] = {}  # name cache
        self._mounted = True

    # ==================================================================
    # lifecycle
    # ==================================================================
    @classmethod
    def format(cls, disk: SimDisk, params: FfsParams | None = None) -> None:
        params = params or FfsParams()
        layout = FfsLayout.compute(disk.geometry, params)
        bitmaps = GroupBitmaps(layout)
        cache = BufferCache(disk, params.buffer_cache_blocks)
        # Root directory inode.
        root = Inode(mode=MODE_DIR, nlink=2, size=0)
        address, offset = layout.inode_location(ROOT_INO)
        block = bytearray(cache.read_block(address))
        block[offset : offset + INODE_BYTES] = root.encode()
        cache.write_block(address, bytes(block))
        bitmaps.mark_inode(ROOT_INO, True)
        for group in range(layout.group_count):
            cache.write_block(
                layout.cg_header_addr(group), bitmaps.encode_group(group)
            )
        superblock = Superblock(
            params=params, total_sectors=disk.geometry.total_sectors, clean=True
        )
        disk.write(
            layout.superblock_addr,
            [superblock.encode(disk.geometry.sector_bytes)],
        )

    @classmethod
    def mount(cls, disk: SimDisk, params: FfsParams | None = None) -> "FFS":
        probe = FfsLayout.compute(disk.geometry, params or FfsParams())
        raw = disk.read(probe.superblock_addr, 1)[0]
        superblock = Superblock.decode(raw)
        if not superblock.clean:
            raise FsError("FFS volume is dirty: run fsck first")
        layout = FfsLayout.compute(disk.geometry, superblock.params)
        bitmaps = GroupBitmaps(layout)
        fs = cls(disk, layout, superblock, bitmaps)
        for group in range(layout.group_count):
            data = fs.cache.read_block(layout.cg_header_addr(group))
            bitmaps.decode_group(group, data)
        # Mark the volume dirty until a clean unmount.
        superblock.clean = False
        disk.write(
            layout.superblock_addr,
            [superblock.encode(disk.geometry.sector_bytes)],
        )
        return fs

    def unmount(self) -> None:
        """Clean shutdown: persist bitmaps and mark the superblock clean."""
        self._enter()
        for group in range(self.layout.group_count):
            self.cache.write_block(
                self.layout.cg_header_addr(group),
                self.bitmaps.encode_group(group),
            )
        self.superblock.clean = True
        self.disk.write(
            self.layout.superblock_addr,
            [self.superblock.encode(self.disk.geometry.sector_bytes)],
        )
        self._mounted = False

    def crash(self) -> None:
        """All volatile state (buffer cache, namei cache) vanishes."""
        self.cache.invalidate()
        self._dnlc.clear()
        self._mounted = False

    # ==================================================================
    # operations
    # ==================================================================
    def mkdir(self, path: str) -> int:
        """Create a directory; returns its inode number."""
        self._enter()
        parent_ino, name = self._split(path)
        parent = self._read_inode(parent_ino)
        if self._dir_lookup(parent_ino, parent, name) is not None:
            raise FileExists(path)
        ino = self.bitmaps.alloc_inode(self._group_of_inode(parent_ino))
        self._add_dirent(parent_ino, parent, name, ino)
        self._write_inode(ino, Inode(mode=MODE_DIR, nlink=2, size=0))
        return ino

    def create(self, path: str, data: bytes = b"") -> FfsFile:
        """creat()+write()+close(): synchronous dirent write, data block
        writes, then the synchronous inode write."""
        self._enter()
        self.ops.creates += 1
        parent_ino, name = self._split(path)
        parent = self._read_inode(parent_ino)
        if self._dir_lookup(parent_ino, parent, name) is not None:
            raise FileExists(path)
        group = self._group_of_inode(parent_ino)
        ino = self.bitmaps.alloc_inode(group)
        self._add_dirent(parent_ino, parent, name, ino)  # sync write #1
        inode = Inode(mode=MODE_FILE, nlink=1, mtime_ms=self.clock.now_ms)
        if data:
            self._write_file_data(ino, inode, data, group)
        self._write_inode(ino, inode)  # sync write #2 (close)
        return FfsFile(ino=ino, inode=inode, path=path)

    def open(self, path: str) -> FfsFile:
        """namei + inode read; returns an open-file handle."""
        self._enter()
        self.ops.opens += 1
        ino = self._namei(path)
        inode = self._read_inode(ino)
        if inode.is_free:
            raise CorruptMetadata(f"{path}: dirent points at a free inode")
        return FfsFile(ino=ino, inode=inode, path=path)

    def read(
        self, handle: FfsFile, offset: int = 0, length: int | None = None
    ) -> bytes:
        """Read file bytes block-at-a-time through the buffer cache."""
        self._enter()
        self.ops.reads += 1
        inode = handle.inode
        if length is None:
            length = inode.size - offset
        if offset < 0 or length < 0 or offset + length > inode.size:
            raise FsError("read outside file")
        if length == 0:
            return b""
        blocks = self._file_blocks(inode)
        first = offset // _BLOCK_BYTES
        last = (offset + length - 1) // _BLOCK_BYTES
        chunks = [
            self.cache.read_block(blocks[index])
            for index in range(first, last + 1)
        ]
        blob = b"".join(chunks)
        skip = offset - first * _BLOCK_BYTES
        return blob[skip : skip + length]

    def write(self, handle: FfsFile, offset: int, data: bytes) -> None:
        """Overwrite/extend an open file; rewrites the inode when it
        changes (synchronously, as 4.3 BSD does on close/sync)."""
        self._enter()
        self.ops.writes += 1
        if not data:
            return
        inode = handle.inode
        end = offset + len(data)
        blocks = self._file_blocks(inode)
        group = self._group_of_inode(handle.ino)
        needed = -(-end // _BLOCK_BYTES)
        grew = False
        while len(blocks) < needed:
            preferred = None
            if blocks and end >= self.params.big_file_threshold_bytes:
                preferred = blocks[-1] + self.params.rotdelay_stride_sectors
            blocks.append(self.bitmaps.alloc_block(group, preferred))
            grew = True
        first = offset // _BLOCK_BYTES
        last = (end - 1) // _BLOCK_BYTES
        for index in range(first, last + 1):
            block_start = index * _BLOCK_BYTES
            lo = max(offset, block_start) - block_start
            hi = min(end, block_start + _BLOCK_BYTES) - block_start
            if lo == 0 and hi == _BLOCK_BYTES:
                payload = data[block_start - offset : block_start - offset + _BLOCK_BYTES]
            else:
                base = (
                    bytearray(self.cache.read_block(blocks[index]))
                    if block_start < inode.size
                    else bytearray(_BLOCK_BYTES)
                )
                base[lo:hi] = data[
                    block_start + lo - offset : block_start + hi - offset
                ]
                payload = bytes(base)
            self.cache.write_block(blocks[index], payload)
        if grew or end > inode.size:
            inode.size = max(inode.size, end)
            inode.mtime_ms = self.clock.now_ms
            self._store_block_list(inode, blocks)
            self._write_inode(handle.ino, inode)

    def delete(self, path: str) -> None:
        """unlink(): rewrite the directory block and free the inode,
        both synchronously."""
        self._enter()
        self.ops.deletes += 1
        parent_ino, name = self._split(path)
        parent = self._read_inode(parent_ino)
        ino = self._dir_lookup(parent_ino, parent, name)
        if ino is None:
            raise FileNotFound(path)
        inode = self._read_inode(ino)
        self._remove_dirent(parent_ino, parent, name)  # sync write #1
        for address in self._file_blocks(inode):
            self.bitmaps.free_block(address)
        if inode.indirect:
            self.bitmaps.free_block(inode.indirect)
        self.bitmaps.mark_inode(ino, False)
        self._write_inode(ino, Inode())  # sync write #2
        self._dnlc.pop((parent_ino, name), None)

    def list(self, path: str = "") -> list[tuple[str, int, float]]:
        """ls -l: scan the directory, then read every entry's inode
        (several per inode-table block)."""
        self._enter()
        self.ops.lists += 1
        dir_ino = self._namei(path) if path else ROOT_INO
        dir_inode = self._read_inode(dir_ino)
        out = []
        for name, ino in self._dir_entries(dir_ino, dir_inode):
            inode = self._read_inode(ino)
            out.append((name, inode.size, inode.mtime_ms))
        return out

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        self._enter()
        try:
            self._namei(path)
            return True
        except FileNotFound:
            return False

    # ==================================================================
    # internals
    # ==================================================================
    def _enter(self) -> None:
        if not self._mounted:
            raise NotMounted("FFS volume is not mounted")
        self.clock.tick()

    def _group_of_inode(self, ino: int) -> int:
        return ino // self.params.inodes_per_group

    # -- inodes ----------------------------------------------------------
    def _read_inode(self, ino: int) -> Inode:
        address, offset = self.layout.inode_location(ino)
        block = self.cache.read_block(address)
        return Inode.decode(block[offset : offset + INODE_BYTES])

    def _write_inode(self, ino: int, inode: Inode) -> None:
        address, offset = self.layout.inode_location(ino)
        block = bytearray(self.cache.read_block(address))
        block[offset : offset + INODE_BYTES] = inode.encode()
        self.cache.write_block(address, bytes(block))

    # -- block lists -------------------------------------------------------
    def _file_blocks(self, inode: Inode) -> list[int]:
        blocks = [a for a in inode.direct if a]
        if inode.indirect:
            pointers = decode_indirect(self.cache.read_block(inode.indirect))
            blocks.extend(a for a in pointers if a)
        return blocks[: inode.block_count()] if inode.size else blocks

    def _store_block_list(self, inode: Inode, blocks: list[int]) -> None:
        inode.direct = (blocks[:NDIRECT] + [0] * NDIRECT)[:NDIRECT]
        rest = blocks[NDIRECT:]
        if rest:
            if len(rest) > PTRS_PER_INDIRECT:
                raise FsError("file exceeds single-indirect capacity")
            if not inode.indirect:
                group = self.bitmaps.index_of(blocks[0])[0]
                inode.indirect = self.bitmaps.alloc_block(group)
            self.cache.write_block(
                inode.indirect,
                encode_indirect(rest + [0] * (PTRS_PER_INDIRECT - len(rest))),
            )
        elif inode.indirect:
            self.bitmaps.free_block(inode.indirect)
            inode.indirect = 0

    def _write_file_data(
        self, ino: int, inode: Inode, data: bytes, group: int
    ) -> None:
        """Initial data write for a create: allocate and write block by
        block (big files at the rotdelay stride)."""
        needed = -(-len(data) // _BLOCK_BYTES)
        big = len(data) >= self.params.big_file_threshold_bytes
        blocks: list[int] = []
        for _ in range(needed):
            preferred = (
                blocks[-1] + self.params.rotdelay_stride_sectors
                if blocks and big
                else None
            )
            blocks.append(self.bitmaps.alloc_block(group, preferred))
        for index, address in enumerate(blocks):
            chunk = data[index * _BLOCK_BYTES : (index + 1) * _BLOCK_BYTES]
            self.cache.write_block(address, chunk)
        inode.size = len(data)
        self._store_block_list(inode, blocks)

    # -- directories --------------------------------------------------------
    def _split(self, path: str) -> tuple[int, str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise FsError("empty path")
        name = validate_component(parts[-1])
        parent_ino = ROOT_INO
        for component in parts[:-1]:
            parent_ino = self._lookup_component(parent_ino, component)
        return parent_ino, name

    def _namei(self, path: str) -> int:
        parts = [p for p in path.split("/") if p]
        ino = ROOT_INO
        for component in parts:
            ino = self._lookup_component(ino, validate_component(component))
        return ino

    def _lookup_component(self, dir_ino: int, name: str) -> int:
        cached = self._dnlc.get((dir_ino, name))
        if cached is not None:
            self.ops.namei_cache_hits += 1
            return cached
        self.ops.namei_dir_scans += 1
        dir_inode = self._read_inode(dir_ino)
        found = self._dir_lookup(dir_ino, dir_inode, name)
        if found is None:
            raise FileNotFound(name)
        return found

    def _dir_blocks(self, dir_inode: Inode) -> list[int]:
        return self._file_blocks(dir_inode)

    def _dir_entries(
        self, dir_ino: int, dir_inode: Inode
    ) -> list[tuple[str, int]]:
        entries: list[tuple[str, int]] = []
        for address in self._dir_blocks(dir_inode):
            entries.extend(decode_dir_block(self.cache.read_block(address)))
        return entries

    def _dir_lookup(
        self, dir_ino: int, dir_inode: Inode, name: str
    ) -> int | None:
        for address in self._dir_blocks(dir_inode):
            for entry_name, ino in decode_dir_block(
                self.cache.read_block(address)
            ):
                self._dnlc[(dir_ino, entry_name)] = ino
                if entry_name == name:
                    return ino
        return None

    def _add_dirent(
        self, dir_ino: int, dir_inode: Inode, name: str, ino: int
    ) -> None:
        blocks = self._dir_blocks(dir_inode)
        if blocks:
            last = blocks[-1]
            entries = decode_dir_block(self.cache.read_block(last))
            if dir_block_fits(entries + [(name, ino)]):
                entries.append((name, ino))
                self.cache.write_block(last, encode_dir_block(entries))
                self._dnlc[(dir_ino, name)] = ino
                return
        group = self._group_of_inode(dir_ino)
        address = self.bitmaps.alloc_block(group)
        self.cache.write_block(address, encode_dir_block([(name, ino)]))
        blocks.append(address)
        dir_inode.size = len(blocks) * _BLOCK_BYTES
        self._store_block_list(dir_inode, blocks)
        self._write_inode(dir_ino, dir_inode)
        self._dnlc[(dir_ino, name)] = ino

    def _remove_dirent(
        self, dir_ino: int, dir_inode: Inode, name: str
    ) -> None:
        for address in self._dir_blocks(dir_inode):
            entries = decode_dir_block(self.cache.read_block(address))
            kept = [(n, i) for n, i in entries if n != name]
            if len(kept) != len(entries):
                self.cache.write_block(address, encode_dir_block(kept))
                return
        raise FileNotFound(name)

    @property
    def mounted(self) -> bool:
        return self._mounted
