"""FFS directories: files whose blocks hold variable-length dirents."""

from __future__ import annotations

from repro.bsd.layout import BLOCK_SECTORS
from repro.errors import CorruptMetadata
from repro.serial import Packer, Unpacker

_DIR_BLOCK_BYTES = BLOCK_SECTORS * 512


def encode_dir_block(entries: list[tuple[str, int]]) -> bytes:
    """Serialize one directory block: (name, ino) pairs."""
    packer = Packer(capacity=_DIR_BLOCK_BYTES)
    packer.u16(len(entries))
    for name, ino in entries:
        packer.u32(ino)
        packer.string(name)
    return packer.bytes(pad_to=_DIR_BLOCK_BYTES)


def decode_dir_block(data: bytes) -> list[tuple[str, int]]:
    """Parse one directory block into (name, ino) pairs."""
    reader = Unpacker(data)
    count = reader.u16()
    entries = []
    for _ in range(count):
        ino = reader.u32()
        name = reader.string()
        entries.append((name, ino))
    return entries


def dir_block_fits(entries: list[tuple[str, int]]) -> bool:
    """True when the entries serialize within one block."""
    try:
        encode_dir_block(entries)
        return True
    except ValueError:
        return False


def validate_component(name: str) -> str:
    """Check a single path component; returns it unchanged."""
    if not name or "/" in name or "\x00" in name:
        raise CorruptMetadata(f"bad path component {name!r}")
    if len(name.encode("utf-8")) > 255:
        raise CorruptMetadata("path component too long")
    return name
