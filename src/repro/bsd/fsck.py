"""fsck for the simplified FFS.

The paper §7: "PARC's VAX-11/785 recovers in about seven minutes
(using fsck) while FSD takes 1 to 25 seconds.  Both systems have 300
megabyte file systems that are moderately full."

The check mirrors the real fsck's expensive passes: read every inode
table block on the volume and validate every inode (pass 1: block
pointers, sizes, duplicate blocks), walk every directory (pass 2:
dirent → inode references), then rebuild the free bitmaps and rewrite
the cg headers and a clean superblock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bsd.buffer_cache import BufferCache
from repro.bsd.directory import decode_dir_block
from repro.bsd.ffs import GroupBitmaps, ROOT_INO
from repro.bsd.inode import Inode, decode_indirect
from repro.bsd.layout import (
    BLOCK_SECTORS,
    FfsLayout,
    FfsParams,
    INODE_BYTES,
    Superblock,
)
from repro.disk.disk import SimDisk
from repro.errors import CorruptMetadata


@dataclass
class FsckReport:
    inodes_checked: int = 0
    files_found: int = 0
    directories_found: int = 0
    blocks_claimed: int = 0
    duplicate_blocks: int = 0
    orphan_inodes: int = 0
    bad_dirents: int = 0
    elapsed_ms: float = 0.0


def fsck(disk: SimDisk, params: FfsParams | None = None) -> FsckReport:
    """Check and repair the volume; leaves it clean and mountable."""
    clock = disk.clock
    report = FsckReport()
    start_ms = clock.now_ms
    probe = FfsLayout.compute(disk.geometry, params or FfsParams())
    superblock = Superblock.decode(disk.read(probe.superblock_addr, 1)[0])
    layout = FfsLayout.compute(disk.geometry, superblock.params)
    cache = BufferCache(disk, superblock.params.buffer_cache_blocks)
    bitmaps = GroupBitmaps(layout)

    # ------------------------------------------------------------------
    # pass 1: every inode on the volume
    # ------------------------------------------------------------------
    per_block = BLOCK_SECTORS * 512 // INODE_BYTES
    inodes: dict[int, Inode] = {}
    claimed: dict[int, int] = {}  # block address -> ino
    for group in range(layout.group_count):
        table = layout.inode_table_addr(group)
        for block_index in range(layout.params.inode_blocks_per_group):
            address = table + block_index * BLOCK_SECTORS
            data = cache.read_block(address)
            for slot in range(per_block):
                ino = (
                    group * layout.params.inodes_per_group
                    + block_index * per_block
                    + slot
                )
                if ino >= (group + 1) * layout.params.inodes_per_group:
                    break
                report.inodes_checked += 1
                clock.advance_cpu(clock.cpu.fsck_inode_ms)
                try:
                    inode = Inode.decode(
                        data[slot * INODE_BYTES : (slot + 1) * INODE_BYTES]
                    )
                except CorruptMetadata:
                    continue
                if inode.is_free:
                    continue
                inodes[ino] = inode
                if inode.is_dir:
                    report.directories_found += 1
                else:
                    report.files_found += 1
                blocks = [a for a in inode.direct if a]
                if inode.indirect:
                    blocks.append(inode.indirect)
                    pointers = decode_indirect(
                        cache.read_block(inode.indirect)
                    )
                    blocks.extend(a for a in pointers if a)
                for block in blocks:
                    report.blocks_claimed += 1
                    if block in claimed:
                        report.duplicate_blocks += 1
                    claimed[block] = ino

    # ------------------------------------------------------------------
    # pass 2: directory structure
    # ------------------------------------------------------------------
    referenced: set[int] = {ROOT_INO}
    stack = [ROOT_INO]
    seen_dirs: set[int] = set()
    while stack:
        dir_ino = stack.pop()
        if dir_ino in seen_dirs:
            continue
        seen_dirs.add(dir_ino)
        dir_inode = inodes.get(dir_ino)
        if dir_inode is None or not dir_inode.is_dir:
            continue
        for address in (a for a in dir_inode.direct if a):
            try:
                entries = decode_dir_block(cache.read_block(address))
            except CorruptMetadata:
                report.bad_dirents += 1
                continue
            for name, ino in entries:
                if ino not in inodes:
                    report.bad_dirents += 1
                    continue
                referenced.add(ino)
                if inodes[ino].is_dir:
                    stack.append(ino)

    report.orphan_inodes = len(set(inodes) - referenced)

    # ------------------------------------------------------------------
    # rebuild bitmaps and mark the volume clean
    # ------------------------------------------------------------------
    bitmaps.mark_inode(ROOT_INO, True)
    for ino in referenced:
        if ino in inodes:
            bitmaps.mark_inode(ino, True)
    for block, ino in claimed.items():
        if ino in referenced:
            try:
                group, index = bitmaps.index_of(block)
                bitmaps.block_used[group][index] = 1
            except CorruptMetadata:
                pass
    for group in range(layout.group_count):
        cache.write_block(
            layout.cg_header_addr(group), bitmaps.encode_group(group)
        )
    superblock.clean = True
    disk.write(
        layout.superblock_addr,
        [superblock.encode(disk.geometry.sector_bytes)],
    )
    report.elapsed_ms = clock.now_ms - start_ms
    return report
