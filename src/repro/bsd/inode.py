"""FFS inodes: 128-byte on-disk records with 12 direct block pointers
and one single-indirect block (ample for the paper's workloads)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bsd.layout import BLOCK_SECTORS, INODE_BYTES
from repro.errors import CorruptMetadata
from repro.serial import Packer, Unpacker

MODE_FREE = 0
MODE_FILE = 1
MODE_DIR = 2

NDIRECT = 12
#: block addresses per 4 KB indirect block.
PTRS_PER_INDIRECT = BLOCK_SECTORS * 512 // 4


@dataclass
class Inode:
    mode: int = MODE_FREE
    nlink: int = 0
    size: int = 0
    mtime_ms: float = 0.0
    direct: list[int] = field(default_factory=lambda: [0] * NDIRECT)
    indirect: int = 0  # block address of the indirect block, 0 if none

    @property
    def is_free(self) -> bool:
        return self.mode == MODE_FREE

    @property
    def is_dir(self) -> bool:
        return self.mode == MODE_DIR

    def block_count(self) -> int:
        """Number of data blocks the size implies."""
        return -(-self.size // (BLOCK_SECTORS * 512))

    def encode(self) -> bytes:
        """Serialize to the 128-byte on-disk record."""
        packer = Packer(capacity=INODE_BYTES)
        packer.u8(self.mode)
        packer.u8(self.nlink)
        packer.u64(self.size)
        packer.f64(self.mtime_ms)
        for address in self.direct:
            packer.u32(address)
        packer.u32(self.indirect)
        return packer.bytes(pad_to=INODE_BYTES)

    @classmethod
    def decode(cls, data: bytes) -> "Inode":
        if len(data) < INODE_BYTES:
            raise CorruptMetadata("short inode record")
        reader = Unpacker(data)
        mode = reader.u8()
        if mode not in (MODE_FREE, MODE_FILE, MODE_DIR):
            raise CorruptMetadata(f"bad inode mode {mode}")
        nlink = reader.u8()
        size = reader.u64()
        mtime = reader.f64()
        direct = [reader.u32() for _ in range(NDIRECT)]
        indirect = reader.u32()
        return cls(
            mode=mode,
            nlink=nlink,
            size=size,
            mtime_ms=mtime,
            direct=direct,
            indirect=indirect,
        )


def encode_indirect(pointers: list[int]) -> bytes:
    """Serialize an indirect block of block addresses."""
    packer = Packer(capacity=BLOCK_SECTORS * 512)
    for address in pointers:
        packer.u32(address)
    return packer.bytes(pad_to=BLOCK_SECTORS * 512)


def decode_indirect(data: bytes) -> list[int]:
    """Parse an indirect block into its block addresses."""
    reader = Unpacker(data)
    return [reader.u32() for _ in range(PTRS_PER_INDIRECT)]
