"""FFS on-disk layout: superblock and cylinder groups.

A simplified 4.3 BSD fast file system (McKusick et al. 1984), the
comparison system of the paper's Tables 4 and 5: 4 KB blocks, inodes
clustered in per-cylinder-group tables, directories stored as files,
and synchronous metadata writes for consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry
from repro.errors import CorruptMetadata, FsError
from repro.serial import Packer, Unpacker, checksum

_SUPER_MAGIC = 0x46465331  # "FFS1"

#: sectors per 4 KB block.
BLOCK_SECTORS = 8


@dataclass(frozen=True)
class FfsParams:
    """Tunable FFS parameters."""

    cylinders_per_group: int = 16
    inodes_per_group: int = 512
    buffer_cache_blocks: int = 256
    #: sector stride between consecutive blocks of a big file: 8 data
    #: sectors plus a rotational-delay gap sized so the kernel can issue
    #: the next block's I/O before its first sector passes the head.
    rotdelay_stride_sectors: int = 20
    #: files at least this big allocate with the rotdelay stride.
    big_file_threshold_bytes: int = 64 * 1024

    @property
    def inode_blocks_per_group(self) -> int:
        return -(-self.inodes_per_group * INODE_BYTES // (BLOCK_SECTORS * 512))


#: bytes per on-disk inode.
INODE_BYTES = 128


@dataclass(frozen=True)
class FfsLayout:
    geometry: DiskGeometry
    params: FfsParams
    superblock_addr: int
    group_count: int
    sectors_per_group: int

    @classmethod
    def compute(cls, geometry: DiskGeometry, params: FfsParams) -> "FfsLayout":
        sectors_per_group = (
            params.cylinders_per_group * geometry.sectors_per_cylinder
        )
        group_count = geometry.total_sectors // sectors_per_group
        if group_count < 1:
            raise FsError("volume too small for one cylinder group")
        return cls(
            geometry=geometry,
            params=params,
            superblock_addr=BLOCK_SECTORS,  # block 1; block 0 is the boot block
            group_count=group_count,
            sectors_per_group=sectors_per_group,
        )

    # ------------------------------------------------------------------
    # cylinder-group geography
    # ------------------------------------------------------------------
    def group_start(self, group: int) -> int:
        """First sector of cylinder group ``group``."""
        if not (0 <= group < self.group_count):
            raise FsError(f"cylinder group {group} out of range")
        return group * self.sectors_per_group

    def group_of_sector(self, sector: int) -> int:
        """Cylinder group containing ``sector``."""
        return min(sector // self.sectors_per_group, self.group_count - 1)

    def cg_header_addr(self, group: int) -> int:
        """The cg header block (bitmaps live here between mounts)."""
        start = self.group_start(group)
        # Group 0 also hosts the boot block and superblock.
        return start + (2 * BLOCK_SECTORS if group == 0 else 0)

    def inode_table_addr(self, group: int) -> int:
        """First sector of the group's inode table."""
        return self.cg_header_addr(group) + BLOCK_SECTORS

    def data_start(self, group: int) -> int:
        """First data sector of the group."""
        return (
            self.inode_table_addr(group)
            + self.params.inode_blocks_per_group * BLOCK_SECTORS
        )

    def data_end(self, group: int) -> int:
        """One past the last sector of the group."""
        return self.group_start(group) + self.sectors_per_group

    # ------------------------------------------------------------------
    # inode addressing
    # ------------------------------------------------------------------
    @property
    def total_inodes(self) -> int:
        return self.group_count * self.params.inodes_per_group

    def inode_location(self, ino: int) -> tuple[int, int]:
        """(block address, byte offset) of inode ``ino``."""
        if not (0 <= ino < self.total_inodes):
            raise FsError(f"inode {ino} out of range")
        group, slot = divmod(ino, self.params.inodes_per_group)
        per_block = BLOCK_SECTORS * 512 // INODE_BYTES
        block_index, within = divmod(slot, per_block)
        address = self.inode_table_addr(group) + block_index * BLOCK_SECTORS
        return address, within * INODE_BYTES


@dataclass
class Superblock:
    params: FfsParams
    total_sectors: int
    clean: bool = True
    root_ino: int = 2

    def encode(self, sector_bytes: int) -> bytes:
        """Serialize the superblock to one sector."""
        body = Packer()
        body.u32(self.total_sectors)
        body.u8(1 if self.clean else 0)
        body.u32(self.root_ino)
        body.u16(self.params.cylinders_per_group)
        body.u16(self.params.inodes_per_group)
        body.u16(self.params.buffer_cache_blocks)
        body.u16(self.params.rotdelay_stride_sectors)
        body.u32(self.params.big_file_threshold_bytes)
        payload = body.bytes()
        out = Packer(capacity=sector_bytes)
        out.u32(_SUPER_MAGIC)
        out.u32(checksum(payload))
        out.u16(len(payload))
        out.raw(payload)
        return out.bytes(pad_to=sector_bytes)

    @classmethod
    def decode(cls, data: bytes) -> "Superblock":
        reader = Unpacker(data)
        if reader.u32() != _SUPER_MAGIC:
            raise CorruptMetadata("bad FFS superblock magic")
        expect = reader.u32()
        payload = reader.raw(reader.u16())
        if checksum(payload) != expect:
            raise CorruptMetadata("FFS superblock checksum mismatch")
        body = Unpacker(payload)
        total_sectors = body.u32()
        clean = body.u8() == 1
        root_ino = body.u32()
        params = FfsParams(
            cylinders_per_group=body.u16(),
            inodes_per_group=body.u16(),
            buffer_cache_blocks=body.u16(),
            rotdelay_stride_sectors=body.u16(),
            big_file_threshold_bytes=body.u32(),
        )
        return cls(
            params=params,
            total_sectors=total_sectors,
            clean=clean,
            root_ino=root_ino,
        )
