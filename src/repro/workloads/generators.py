"""Workload generators matching the paper's stated distributions.

§5.6: "A large fraction of files are small.  A measurement of one
system shows 50% of files are less than 4,000 bytes but use only 8% of
the sectors."  :class:`PaperFileSizes` reproduces both moments; a unit
test pins them.

§5.4: "Bulk updates are often done to the file name table.  These
updates are normally localized to a subdirectory" — the bulk-update
generator creates new versions of every file in one subdirectory,
repeatedly dirtying the same few name-table pages (the hot spot that
group commit absorbs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class PaperFileSizes:
    """Sampler for the paper's file-size distribution.

    Mixture: 50% small (256–4,000 bytes), 40% medium (4 KB–20 KB),
    10% large (20 KB–60 KB).  Small files are ~50% by count and ~8–10%
    by volume.
    """

    seed: int = 1987
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def sample(self) -> int:
        """One file size drawn from the paper's mixture."""
        roll = self.rng.random()
        if roll < 0.50:
            return self.rng.randint(256, 4_000)
        if roll < 0.90:
            return self.rng.randint(4_001, 20_000)
        return self.rng.randint(20_001, 60_000)

    def sample_many(self, count: int) -> list[int]:
        """A list of ``count`` samples."""
        return [self.sample() for _ in range(count)]


def small_fraction_stats(sizes: list[int]) -> tuple[float, float]:
    """(fraction of files < 4,000 bytes, fraction of bytes they hold)."""
    if not sizes:
        return 0.0, 0.0
    small = [size for size in sizes if size < 4_000]
    count_fraction = len(small) / len(sizes)
    byte_fraction = sum(small) / sum(sizes)
    return count_fraction, byte_fraction


@dataclass
class NameGenerator:
    """Deterministic hierarchical file names, Cedar-style."""

    prefix: str = "cedar"
    counter: int = 0

    def next(self, directory: str | None = None) -> str:
        """The next unique file name."""
        self.counter += 1
        directory = directory or self.prefix
        return f"{directory}/file-{self.counter:05d}"


def payload(size: int, seed: int = 0) -> bytes:
    """Deterministic file contents of ``size`` bytes (cheap, repeating
    pattern keyed by seed so reads can be verified)."""
    if size == 0:
        return b""
    stamp = f"<{seed:08x}>".encode()
    reps = -(-size // len(stamp))
    return (stamp * reps)[:size]


@dataclass
class BulkUpdateWorkload:
    """The §5.4 hot spot: re-release every file in one subdirectory.

    Each round creates a new (small) version of each file with
    ``keep=2``, so the old-old version is deleted as well — three
    name-table updates per file, all landing on the same few pages.
    """

    directory: str = "bulk"
    files: int = 40
    rounds: int = 3
    size_bytes: int = 1_500

    def setup(self, adapter) -> None:
        """Create the subdirectory's initial file versions."""
        for index in range(self.files):
            adapter.create(
                f"{self.directory}/module-{index:03d}",
                payload(self.size_bytes, index),
            )

    def run(self, adapter) -> int:
        """Run the bulk update; returns number of operations issued."""
        operations = 0
        for round_index in range(1, self.rounds + 1):
            for index in range(self.files):
                adapter.create(
                    f"{self.directory}/module-{index:03d}",
                    payload(self.size_bytes, index * 31 + round_index),
                )
                operations += 1
        return operations


@dataclass
class OperationMix:
    """A randomized open/read/create/delete mix for soak tests."""

    seed: int = 7
    create_weight: float = 0.3
    open_weight: float = 0.4
    delete_weight: float = 0.1
    read_weight: float = 0.2

    def run(self, adapter, names: list[str], operations: int) -> dict[str, int]:
        """Run the mix; returns per-kind operation counts."""
        rng = random.Random(self.seed)
        sizes = PaperFileSizes(seed=self.seed)
        live = list(names)
        counts = {"create": 0, "open": 0, "delete": 0, "read": 0}
        serial = 0
        total = (
            self.create_weight
            + self.open_weight
            + self.delete_weight
            + self.read_weight
        )
        for _ in range(operations):
            roll = rng.random() * total
            if roll < self.create_weight or not live:
                serial += 1
                name = f"mix/gen-{serial:05d}"
                adapter.create(name, payload(sizes.sample(), serial))
                live.append(name)
                counts["create"] += 1
            elif roll < self.create_weight + self.open_weight:
                adapter.open(rng.choice(live))
                counts["open"] += 1
            elif roll < self.create_weight + self.open_weight + self.delete_weight:
                victim = live.pop(rng.randrange(len(live)))
                adapter.delete(victim)
                counts["delete"] += 1
            else:
                handle = adapter.open(rng.choice(live))
                adapter.read(handle)
                counts["read"] += 1
        return counts
