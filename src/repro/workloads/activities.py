"""Interleaved workstation activities (paper §5.4).

"Where databases group the updates of independent users, FSD groups
some updates of the workstation owner."  A Cedar workstation ran an
editor, a compiler, a mailer and background fetches concurrently; one
log force carries whatever any of them dirtied in the last half
second.

:class:`InterleavedActivities` drives several activity scripts
round-robin against one file system, modelling exactly that: each
activity is a generator yielding ``(operation, think_ms)`` steps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.harness.runner import drain_clock
from repro.workloads.generators import payload

#: an activity yields (callable-to-run, think-time-after-it).
Step = tuple[Callable[[], object], float]


def editor_activity(fs, seed: int = 1) -> Iterator[Step]:
    """An editor: periodically saves new versions of a few documents."""
    rng = random.Random(seed)
    serial = 0
    while True:
        serial += 1
        name = f"editor/doc-{rng.randrange(4)}.tioga"
        data = payload(rng.randrange(800, 6_000), serial)
        yield (lambda n=name, d=data: fs.create(n, d, keep=2), 900.0)


def compiler_activity(fs, seed: int = 2) -> Iterator[Step]:
    """A compiler: reads a source, writes an object, drops a scratch."""
    rng = random.Random(seed)
    sources = [f"compiler/src-{index}.mesa" for index in range(6)]
    for index, name in enumerate(sources):
        fs.create(name, payload(4_000, index), keep=1)
    serial = 0
    while True:
        serial += 1
        source = rng.choice(sources)
        yield (lambda s=source: fs.read(fs.open(s)), 120.0)
        obj = source.replace("src", "obj").replace(".mesa", ".bcd")
        yield (
            lambda o=obj, s=serial: fs.create(o, payload(7_000, s), keep=1),
            200.0,
        )
        scratch = f"compiler/tmp-{serial % 3}"
        yield (lambda t=scratch, s=serial: fs.create(t, payload(500, s), keep=1), 80.0)


def mailer_activity(fs, seed: int = 3) -> Iterator[Step]:
    """A mailer: appends small messages and lists the inbox."""
    rng = random.Random(seed)
    serial = 0
    while True:
        serial += 1
        yield (
            lambda s=serial: fs.create(
                f"mail/msg-{s:04d}", payload(rng.randrange(200, 1_500), s)
            ),
            1_500.0,
        )
        if serial % 4 == 0:
            yield (lambda: fs.list("mail/"), 300.0)


@dataclass
class InterleavedActivities:
    """Round-robin scheduler over several activity generators."""

    fs: object
    activities: list[Iterator[Step]] = field(default_factory=list)
    steps_run: int = 0

    @classmethod
    def workstation(cls, fs) -> "InterleavedActivities":
        """The canonical editor+compiler+mailer mix."""
        return cls(
            fs=fs,
            activities=[
                editor_activity(fs),
                compiler_activity(fs),
                mailer_activity(fs),
            ],
        )

    def run(self, steps: int) -> int:
        """Run ``steps`` interleaved steps; returns operations issued."""
        clock = self.fs.clock
        operations = 0
        for index in range(steps):
            activity = self.activities[index % len(self.activities)]
            fn, think_ms = next(activity)
            fn()
            operations += 1
            drain_clock(clock, think_ms)
            self.steps_run += 1
        return operations
