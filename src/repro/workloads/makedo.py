"""A MakeDo-like build workload (paper Table 3).

"The MakeDo program used as a benchmark is typical of clients that
intensively use the file system."  MakeDo was Cedar's make: it stats
many files, reads sources, and writes derived objects.  The synthetic
version compiles ``modules`` translation units:

for each module: list the directory occasionally, read the source,
create a scratch file, write the object (a new version), delete the
scratch.  Data I/O is identical across file systems; the metadata
traffic is where CFS and FSD differ (paper: 1975 vs 1299 I/Os).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.generators import payload


@dataclass
class MakeDoWorkload:
    modules: int = 30
    source_bytes: int = 12_000
    object_bytes: int = 20_000
    scratch_bytes: int = 2_000
    list_every: int = 10
    #: the Cedar compiler streamed files a page at a time through the
    #: File Package; reads therefore cost one I/O per page on *both*
    #: systems, which is why the paper's overall MakeDo ratio is only
    #: 1.52 even though the metadata traffic drops much more.
    read_page_bytes: int = 512
    seed: int = 42

    def setup(self, adapter) -> None:
        """Create the source tree (excluded from the measurement)."""
        for index in range(self.modules):
            adapter.create(
                f"src/mod-{index:03d}.mesa",
                payload(self.source_bytes, index),
            )

    def run(self, adapter) -> dict[str, int]:
        """The measured build; returns operation counts."""
        rng = random.Random(self.seed)
        counts = {"pages_read": 0, "creates": 0, "deletes": 0, "lists": 0}
        for index in range(self.modules):
            if index % self.list_every == 0:
                adapter.list("src/")
                counts["lists"] += 1
            source = adapter.open(f"src/mod-{index:03d}.mesa")
            for offset in range(0, self.source_bytes, self.read_page_bytes):
                length = min(self.read_page_bytes, self.source_bytes - offset)
                adapter.read_at(source, offset, length)
                counts["pages_read"] += 1
            scratch = f"tmp/scratch-{index:03d}"
            adapter.create(
                scratch, payload(self.scratch_bytes, rng.randrange(1 << 16))
            )
            counts["creates"] += 1
            adapter.create(
                f"obj/mod-{index:03d}.bcd",
                payload(self.object_bytes, index * 7 + 1),
            )
            counts["creates"] += 1
            adapter.delete(scratch)
            counts["deletes"] += 1
        return counts
