"""Simulated-time multi-client traffic engine for FSD.

The paper's group commit only pays off under *concurrent* load: "if
the system is busy, then many updates are done per log force" (§5.4).
Every workload in this tree so far was a single serial client, so the
batching factor never rose above what one client's bulk updates could
supply.  This module drives a mounted FSD volume with thousands of
interleaved client sessions on the shared simulated clock and measures
what the paper measured: per-operation latency and how many client
updates each log force absorbs.

The simulation is single threaded and operation bodies are atomic, so
"concurrency" here means what it meant on the Dorado: clients overlap
in the *waiting* — for log-space admission, for a group commit to
complete, and in the think/processing gaps between their operations.
The engine is an event loop over :class:`~repro.disk.clock.SimClock`:

* each client runs a pre-generated **activity script** (create, write,
  streamed read, delete, list) with think times drawn from a Poisson,
  bursty, or uniform arrival process;
* every mutating operation runs inside a ``begin_op``/``end_op``
  bracket (:class:`~repro.core.txn.TxnManager`); the bracket is held
  open for ``hold_ms`` of simulated client processing, which is what
  creates real multi-client windows (``outstanding > 1``) and forces
  the deferred-commit drain path;
* a client refused admission parks; the commit that frees log space
  wakes every parked client at once — the amortization the paper
  describes;
* ``sync_fraction`` of mutations wait for durability: the client's
  latency runs to the completion of the covering group commit.

Activity *content* (op kinds, names, sizes, payload seeds) is drawn
from a per-client RNG keyed only by ``(seed, client)``, while *timing*
comes from a separate RNG keyed by ``(seed, client, arrival)``.  Two
runs with the same seed but different arrival processes therefore
perform the same operations in different interleavings — the property
the convergence tests rely on.

With one client the engine never blocks and never defers a commit, and
:meth:`TrafficEngine.run_serial` executes the same script as a plain
adapter loop; the integration tests pin that both produce bit-identical
disks and clocks.

The engine also carries the **client error contract** the chaos
campaigns (:mod:`repro.workloads.chaos`) exercise: every operation
failure is classified (:func:`repro.errors.classify_error` —
``retryable`` / ``fatal`` / ``degraded``), retryable failures are
retried with capped exponential backoff and deterministic jitter on
the simulated clock (``max_retries``, ``retry_base_ms``,
``retry_cap_ms``, ``retry_jitter``), an optional per-op
``deadline_ms`` bounds the total attempt budget (exceeding it resolves
the op as a typed ``timeout``), and a volume degraded to read-only
rejects mutations *fast* — before entering a bracket — so writers
never park against a log that will refuse them.  With the knobs at
their defaults (``max_retries=0``, no deadline) the contract is inert
and runs are bit-identical to earlier versions.
"""

from __future__ import annotations

import heapq
import json
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    DegradedVolumeError,
    DiskError,
    FsError,
    classify_error,
)
from repro.harness.adapters import FsdAdapter
from repro.obs.attribution import build_report, report_lines
from repro.obs.metrics import percentile
from repro.workloads.generators import payload

__all__ = [
    "ClientOp",
    "TrafficConfig",
    "TrafficEngine",
    "TrafficReport",
    "ZipfSampler",
    "cache_thrash_config",
    "percentile",
    "TRAFFIC_MS_BUCKETS",
    "TRAFFIC_SCHEMA_VERSION",
]

#: bumped whenever the shape of ``TrafficReport.as_dict()`` changes,
#: so downstream tooling (bench diff, dashboards) can detect format
#: drift.  1 = PR 6 shape; 2 = adds ``schema_version`` itself and the
#: optional ``attribution`` section; 3 = adds the ``wal`` section
#: (commit-path stall from the third-entry protocol); 4 = adds the
#: optional ``availability`` section (error taxonomy, retries, and —
#: for chaos runs — the fault/recovery timeline).
TRAFFIC_SCHEMA_VERSION = 4

#: latency histogram bounds (ms) for ``traffic.op_ms``.
TRAFFIC_MS_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                      200.0, 500.0, 1000.0, 2000.0)

ARRIVALS = ("poisson", "bursty", "uniform")

#: operation kinds that mutate the volume (and therefore bracket).
MUTATING = frozenset({"create", "write", "delete"})

#: default operation mix (fractions; normalized by the sampler).
DEFAULT_WEIGHTS = {
    "create": 0.25,
    "write": 0.30,
    "read": 0.30,
    "delete": 0.10,
    "list": 0.05,
}


@dataclass(frozen=True)
class ClientOp:
    """One scripted client operation.  ``think_ms`` is the idle gap
    *before* the operation is issued."""

    kind: str
    name: str
    think_ms: float
    size: int = 0
    seed: int = 0
    sync: bool = False


@dataclass
class TrafficConfig:
    """Knobs of one traffic run.  Everything is deterministic given
    ``seed`` (content) and ``seed``+``arrival`` (timing)."""

    clients: int = 10
    ops_per_client: int = 40
    seed: int = 1987
    arrival: str = "poisson"        # poisson | bursty | uniform
    mean_think_ms: float = 200.0
    burst_size: int = 8             # bursty: ops per burst
    burst_gap_ms: float = 2_000.0   # bursty: idle gap between bursts
    zipf_theta: float = 0.8         # popularity skew over shared files
    population: int = 40            # shared files created before the run
    shared_fraction: float = 0.5    # reads/writes aimed at shared files
    hold_ms: float = 1.0            # client processing inside the bracket
    sync_fraction: float = 0.0      # mutations that wait for durability
    read_chunk_bytes: int = 4096    # streamed-read granularity
    chunk_think_ms: float = 1.0     # gap between streamed chunks
    max_file_bytes: int = 60_000
    settle: bool = True             # force once when the run ends
    weights: dict[str, float] | None = None
    slo_ms: float | None = None     # per-op latency SLO (attribution)
    # --- client error contract (all inert at the defaults) ---
    max_retries: int = 0            # retry budget per op (0: no retries)
    retry_base_ms: float = 5.0      # first backoff; doubles per attempt
    retry_cap_ms: float = 200.0     # backoff ceiling
    retry_jitter: float = 0.5       # backoff spread: factor in [1-j, 1]
    deadline_ms: float | None = None  # per-op budget issue -> resolution

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise FsError("traffic needs at least one client")
        if self.ops_per_client < 1:
            raise FsError("traffic needs at least one op per client")
        if self.arrival not in ARRIVALS:
            raise FsError(f"unknown arrival process: {self.arrival!r}")
        if self.burst_size < 1:
            raise FsError("burst_size must be positive")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise FsError("shared_fraction must be in [0, 1]")
        if not 0.0 <= self.sync_fraction <= 1.0:
            raise FsError("sync_fraction must be in [0, 1]")
        if self.read_chunk_bytes < 1:
            raise FsError("read_chunk_bytes must be positive")
        if self.max_retries < 0:
            raise FsError("max_retries must be >= 0")
        if self.retry_base_ms <= 0.0 or self.retry_cap_ms <= 0.0:
            raise FsError("retry backoff bounds must be positive")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise FsError("retry_jitter must be in [0, 1]")
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise FsError("deadline_ms must be positive")

    @property
    def contract_active(self) -> bool:
        """True when any error-contract knob departs from the inert
        defaults (retries or deadlines are in play)."""
        return self.max_retries > 0 or self.deadline_ms is not None


def cache_thrash_config(
    data_cache_pages: int,
    *,
    seed: int = 4242,
    clients: int = 8,
    ops_per_client: int = 25,
    page_bytes: int = 512,
) -> TrafficConfig:
    """An adversarial mix for the data-page cache: a *uniform* shared
    working set sized just past ``data_cache_pages``, read-dominated
    with small chunks, so every page is re-requested soon but LRU can
    never hold them all.  The robustness claim under test is not speed
    — it is that a thrashing cache stays correct and every operation
    still completes."""
    if data_cache_pages < 1:
        raise FsError("cache_thrash_config needs a positive cache size")
    # Mean generated file size under a 1000-byte cap is ~650 bytes
    # (~2 pages with the leader); aim the population's footprint at
    # ~1.25x the cache so eviction never stops.
    target_bytes = int(1.25 * data_cache_pages * page_bytes)
    population = max(8, target_bytes // 650)
    return TrafficConfig(
        clients=clients,
        ops_per_client=ops_per_client,
        seed=seed,
        population=population,
        shared_fraction=1.0,
        zipf_theta=0.0,
        # Zeros matter: weights merge over the default mix, and churn
        # (create/delete) would let the working set drift off-plan.
        weights={"create": 0.0, "write": 0.15, "read": 0.85,
                 "delete": 0.0, "list": 0.0},
        max_file_bytes=1_000,
        mean_think_ms=5.0,
        hold_ms=0.5,
        read_chunk_bytes=page_bytes,
        chunk_think_ms=0.5,
    )


class ZipfSampler:
    """Zipf-like popularity over ``population`` ranks: rank ``r`` has
    weight ``1 / (r + 1) ** theta``.  ``theta == 0`` is uniform."""

    def __init__(self, population: int, theta: float):
        if population < 1:
            raise FsError("zipf needs a non-empty population")
        self._cum: list[float] = []
        total = 0.0
        for rank in range(population):
            total += 1.0 / float(rank + 1) ** theta
            self._cum.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """One rank in ``[0, population)``."""
        return bisect_left(self._cum, rng.random() * self._total)


def _latency_summary(values: list[float]) -> dict[str, float]:
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean_ms": round(sum(values) / len(values), 3),
        "p50_ms": round(percentile(values, 0.50), 3),
        "p95_ms": round(percentile(values, 0.95), 3),
        "p99_ms": round(percentile(values, 0.99), 3),
        "max_ms": round(max(values), 3),
    }


@dataclass
class TrafficReport:
    """What one traffic run measured."""

    clients: int
    arrival: str
    seed: int
    ops_issued: int
    ops_completed: int
    errors: int
    elapsed_ms: float
    throughput_ops_per_s: float
    ops_by_kind: dict[str, int]
    latency: dict[str, float]
    latency_by_kind: dict[str, dict[str, float]]
    sync_latency: dict[str, float]
    forces: int
    empty_forces: int
    pressure_forces: int
    deferred_forces: int
    updates_absorbed: int
    batching_factor: float
    admission_waits: int
    commit_waits: int
    #: simulated ms commits spent blocked in the synchronous
    #: third-entry write-home, and how many entries the run crossed
    #: (0 ms in steady state with the background checkpointer).
    wal_stall_ms: float = 0.0
    wal_third_entries: int = 0
    clock: dict[str, float] = field(default_factory=dict)
    #: per-phase latency attribution (``repro traffic --attrib``);
    #: ``None`` when the run was not attributed.
    attribution: dict | None = None
    #: error-contract and (for chaos runs) fault/recovery availability
    #: section; ``None`` when the contract was inert.
    availability: dict | None = None
    schema_version: int = TRAFFIC_SCHEMA_VERSION

    def as_dict(self) -> dict:
        """JSON-ready dict with stable key order across runs."""
        return {
            "schema_version": self.schema_version,
            "clients": self.clients,
            "arrival": self.arrival,
            "seed": self.seed,
            "ops_issued": self.ops_issued,
            "ops_completed": self.ops_completed,
            "errors": self.errors,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "throughput_ops_per_s": round(self.throughput_ops_per_s, 3),
            "ops_by_kind": dict(sorted(self.ops_by_kind.items())),
            "latency": self.latency,
            "latency_by_kind": {
                kind: self.latency_by_kind[kind]
                for kind in sorted(self.latency_by_kind)
            },
            "sync_latency": self.sync_latency,
            "commit": {
                "forces": self.forces,
                "empty_forces": self.empty_forces,
                "pressure_forces": self.pressure_forces,
                "deferred_forces": self.deferred_forces,
                "updates_absorbed": self.updates_absorbed,
                "batching_factor": round(self.batching_factor, 3),
            },
            "wal": {
                "stall_ms": round(self.wal_stall_ms, 3),
                "third_entries": self.wal_third_entries,
            },
            "txn": {
                "admission_waits": self.admission_waits,
                "commit_waits": self.commit_waits,
            },
            "clock": {k: round(v, 3) for k, v in self.clock.items()},
            "attribution": self.attribution,
            "availability": self.availability,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficReport":
        """Rebuild a report from :meth:`as_dict` output (the
        round-trip the ``--json``/``--save`` consumers rely on)."""
        version = data.get("schema_version", 1)
        if version > TRAFFIC_SCHEMA_VERSION:
            raise FsError(
                f"traffic report schema {version} is newer than this "
                f"reader ({TRAFFIC_SCHEMA_VERSION})"
            )
        commit = data["commit"]
        txn = data["txn"]
        return cls(
            clients=data["clients"],
            arrival=data["arrival"],
            seed=data["seed"],
            ops_issued=data["ops_issued"],
            ops_completed=data["ops_completed"],
            errors=data["errors"],
            elapsed_ms=data["elapsed_ms"],
            throughput_ops_per_s=data["throughput_ops_per_s"],
            ops_by_kind=dict(data["ops_by_kind"]),
            latency=dict(data["latency"]),
            latency_by_kind={
                kind: dict(summary)
                for kind, summary in data["latency_by_kind"].items()
            },
            sync_latency=dict(data["sync_latency"]),
            forces=commit["forces"],
            empty_forces=commit["empty_forces"],
            pressure_forces=commit["pressure_forces"],
            deferred_forces=commit["deferred_forces"],
            updates_absorbed=commit["updates_absorbed"],
            batching_factor=commit["batching_factor"],
            admission_waits=txn["admission_waits"],
            commit_waits=txn["commit_waits"],
            wal_stall_ms=data.get("wal", {}).get("stall_ms", 0.0),
            wal_third_entries=data.get("wal", {}).get("third_entries", 0),
            clock=dict(data.get("clock", {})),
            attribution=data.get("attribution"),
            availability=data.get("availability"),
            schema_version=version,
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`as_dict` as JSON."""
        return json.dumps(self.as_dict(), indent=indent)

    def summary_lines(self) -> list[str]:
        """Human-readable summary for the CLI."""
        lat = self.latency
        lines = [
            f"clients {self.clients}  arrival {self.arrival}  "
            f"seed {self.seed}",
            f"ops {self.ops_completed}/{self.ops_issued} completed, "
            f"{self.errors} errors in {self.elapsed_ms:.0f} ms sim "
            f"({self.throughput_ops_per_s:.1f} ops/s)",
            f"latency ms: p50 {lat.get('p50_ms', 0.0):.2f}  "
            f"p95 {lat.get('p95_ms', 0.0):.2f}  "
            f"p99 {lat.get('p99_ms', 0.0):.2f}  "
            f"mean {lat.get('mean_ms', 0.0):.2f}",
            f"commit: {self.forces} forces "
            f"({self.pressure_forces} pressure, "
            f"{self.deferred_forces} deferred), "
            f"batching factor {self.batching_factor:.2f}",
            f"txn: {self.admission_waits} admission waits, "
            f"{self.commit_waits} commit waits",
            f"log stall: {self.wal_stall_ms:.2f} ms write-home across "
            f"{self.wal_third_entries} third entries",
        ]
        if self.sync_latency.get("count"):
            sync = self.sync_latency
            lines.append(
                f"sync durable ms: p50 {sync.get('p50_ms', 0.0):.2f}  "
                f"p95 {sync.get('p95_ms', 0.0):.2f}  "
                f"count {sync['count']}"
            )
        if self.attribution is not None:
            lines.extend(report_lines(self.attribution))
        if self.availability is not None:
            avail = self.availability
            failed = avail.get("ops_failed", {})
            failed_parts = ", ".join(
                f"{cls} x{count}" for cls, count in sorted(failed.items())
            ) or "none"
            lines.append(
                f"availability: {avail.get('ops_ok', 0)} ok ops, "
                f"failures: {failed_parts}; "
                f"{avail.get('retries', 0)} retries "
                f"(amplification {avail.get('retry_amplification', 1.0):.3f})"
            )
            for recovery in avail.get("recoveries", []):
                ttr = recovery.get("time_to_restored_slo_ms")
                ttr_text = (f"{ttr:.0f} ms" if ttr is not None
                            else "not restored")
                lines.append(
                    f"  recovery at {recovery['at_ms']:.0f} ms: "
                    f"SLO restored in {ttr_text}"
                )
        return lines


class _Client:
    """Run state of one scripted client inside the event loop."""

    __slots__ = ("cid", "ops", "index", "issue_ms", "trace",
                 "attempts", "failed", "inflight", "token")

    def __init__(self, cid: int, ops: list[ClientOp]):
        self.cid = cid
        self.ops = ops
        self.index = 0
        self.issue_ms = 0.0
        self.trace = None       # OpTrace of the op in flight (attrib)
        self.attempts = 1       # attempts made on the op in flight
        self.failed = None      # error class when the op resolved failed
        self.inflight = False   # an op is issued and unresolved
        self.token = 0          # invalidates stale continuations (chaos)


class TrafficEngine:
    """Drives one mounted FSD volume with ``config.clients``
    interleaved activity scripts.  FSD-specific: the engine holds the
    volume's transaction brackets open across simulated time, which
    only :class:`~repro.core.fsd.FSD` exposes."""

    def __init__(self, fs, config: TrafficConfig | None = None):
        self.fs = fs
        self.config = config or TrafficConfig()
        self.adapter = FsdAdapter(fs)
        self.obs = fs.obs
        #: latency-attribution recorder, when one is attached to the
        #: observer (``repro traffic --attrib``); ``None`` otherwise.
        self.recorder = getattr(self.obs, "attribution", None)
        if self.recorder is not None and self.recorder.clock is None:
            self.recorder.bind(fs)
        self._trace_start = 0
        mix = dict(DEFAULT_WEIGHTS)
        if self.config.weights:
            mix.update(self.config.weights)
        self._kinds = [k for k in
                       ("create", "write", "read", "delete", "list")
                       if mix.get(k, 0.0) > 0.0]
        if not self._kinds:
            raise FsError("operation mix has no positive weight")
        cum: list[float] = []
        total = 0.0
        for kind in self._kinds:
            total += mix[kind]
            cum.append(total)
        self._mix_cum = cum
        self._zipf = (
            ZipfSampler(self.config.population, self.config.zipf_theta)
            if self.config.population > 0
            else None
        )
        self.scripts = [self._generate(cid)
                        for cid in range(self.config.clients)]
        self._prepared = False
        # event loop state
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._eventseq = 0
        self._parked = 0
        self.clients: list[_Client] = []
        # measurements
        self._lat_all: list[float] = []
        self._lat_by_kind: dict[str, list[float]] = {}
        self._sync_lat: list[float] = []
        self._ops_by_kind: dict[str, int] = {}
        self._completed = 0
        self._errors = 0
        # error-contract bookkeeping
        self._errors_by_class: dict[str, int] = {}
        self._retries = 0
        #: every resolved op: (finish_ms, kind, "ok" | error class,
        #: latency_ms) — the availability timeline's raw material.
        self._outcomes: list[tuple[float, str, str, float]] = []

    # ------------------------------------------------------------------
    # script generation (content rng only — arrival-independent)
    # ------------------------------------------------------------------
    def _pop_name(self, rank: int) -> str:
        return f"pop/f{rank:04d}"

    def _client_dir(self, cid: int) -> str:
        return f"c{cid:04d}"

    def _sample_kind(self, crng: random.Random) -> str:
        roll = crng.random() * self._mix_cum[-1]
        return self._kinds[bisect_left(self._mix_cum, roll)]

    def _sample_size(self, crng: random.Random) -> int:
        # The paper's size mixture (§5.6), capped for dense runs.
        roll = crng.random()
        if roll < 0.50:
            size = crng.randint(256, 4_000)
        elif roll < 0.90:
            size = crng.randint(4_001, 20_000)
        else:
            size = crng.randint(20_001, 60_000)
        return min(size, self.config.max_file_bytes)

    def _think(self, trng: random.Random, index: int) -> float:
        cfg = self.config
        if cfg.mean_think_ms <= 0.0:
            return 0.0
        if cfg.arrival == "uniform":
            return trng.uniform(0.0, 2.0 * cfg.mean_think_ms)
        if cfg.arrival == "bursty":
            if index % cfg.burst_size == 0:
                return cfg.burst_gap_ms * trng.uniform(0.5, 1.5)
            return trng.uniform(0.5, 2.0)
        return trng.expovariate(1.0 / cfg.mean_think_ms)

    def _generate(self, cid: int) -> list[ClientOp]:
        """One client's script.  Content draws depend only on
        ``(seed, cid)``; think times also on the arrival process."""
        cfg = self.config
        crng = random.Random(f"{cfg.seed}:{cid}:content")
        trng = random.Random(f"{cfg.seed}:{cid}:think:{cfg.arrival}")
        live: list[str] = []       # this client's private files
        created = 0
        ops: list[ClientOp] = []
        for index in range(cfg.ops_per_client):
            think = self._think(trng, index)
            kind = self._sample_kind(crng)
            shared_roll = crng.random()
            use_shared = (
                self._zipf is not None
                and shared_roll < cfg.shared_fraction
            )
            if kind in ("read", "write") and not use_shared and not live:
                kind = "create"     # nothing private to touch yet
            if kind == "delete" and not live:
                kind = "create"
            sync = (
                kind in MUTATING
                and crng.random() < cfg.sync_fraction
            )
            if kind == "create":
                name = f"{self._client_dir(cid)}/f{created:05d}"
                created += 1
                live.append(name)
                ops.append(ClientOp(
                    kind, name, think,
                    size=self._sample_size(crng),
                    seed=crng.randrange(1 << 30),
                    sync=sync,
                ))
            elif kind == "write":
                name = (self._pop_name(self._zipf.sample(crng))
                        if use_shared
                        else live[crng.randrange(len(live))])
                ops.append(ClientOp(
                    kind, name, think,
                    size=min(crng.randint(256, 4_000),
                             cfg.max_file_bytes),
                    seed=crng.randrange(1 << 30),
                    sync=sync,
                ))
            elif kind == "read":
                name = (self._pop_name(self._zipf.sample(crng))
                        if use_shared
                        else live[crng.randrange(len(live))])
                ops.append(ClientOp(kind, name, think))
            elif kind == "delete":
                victim = live.pop(crng.randrange(len(live)))
                ops.append(ClientOp(kind, victim, think, sync=sync))
            else:  # list
                prefix = ("pop/" if use_shared
                          else self._client_dir(cid) + "/")
                ops.append(ClientOp(kind, prefix, think))
        return ops

    # ------------------------------------------------------------------
    # shared-population setup
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Create the shared population (idempotent) and settle."""
        if self._prepared or self.config.population == 0:
            self._prepared = True
            return
        rng = random.Random(f"{self.config.seed}:population")
        for rank in range(self.config.population):
            self.adapter.create(
                self._pop_name(rank),
                payload(self._sample_size(rng), seed=rank),
            )
        self.adapter.settle()
        self._prepared = True

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _schedule(self, due_ms: float, fn: Callable[[], None]) -> None:
        self._eventseq += 1
        heapq.heappush(self._heap, (due_ms, self._eventseq, fn))

    def _client_event(self, client: _Client, due_ms: float,
                      fn: Callable[[], None]) -> None:
        """Schedule a continuation belonging to ``client``.  The base
        engine schedules directly; the chaos engine overrides this to
        token-guard the callback so continuations of a pre-crash mount
        (a stale bracket close, a read chunk against a dead handle)
        never fire after a crash/recover cycle."""
        self._schedule(due_ms, fn)

    def run(self) -> TrafficReport:
        """Interleave every client script to completion."""
        cfg = self.config
        clock = self.fs.clock
        self.prepare()
        if self.recorder is not None:
            self._trace_start = len(self.recorder.traces)
        start = self._counter_snapshot()
        start_ms = clock.now_ms
        issued = cfg.clients * cfg.ops_per_client
        self.obs.gauge("traffic.clients", cfg.clients)
        self.clients = [_Client(cid, self.scripts[cid])
                        for cid in range(cfg.clients)]
        for client in self.clients:
            self._client_event(
                client,
                start_ms + client.ops[0].think_ms,
                lambda c=client: self._arrive(c),
            )
        self._loop()
        if self.fs.txn.outstanding or self.fs.txn.waiting:
            raise FsError("traffic run ended with brackets outstanding")
        if cfg.settle:
            self.adapter.settle()
        return self._report(start, start_ms, issued)

    def _loop(self) -> None:
        """Drain the event heap (the chaos engine overrides this to
        catch :class:`~repro.errors.SimulatedCrash` and recover)."""
        while self._heap:
            self._pump()

    def _pump(self) -> None:
        """Pop one event, advance idle to its due time, run it, and
        walk parked clients forward when it drained the heap."""
        clock = self.fs.clock
        due_ms, _, fn = heapq.heappop(self._heap)
        if due_ms > clock.now_ms:
            clock.advance_idle(due_ms - clock.now_ms)
        fn()
        if not self._heap and self._parked:
            self._drain_parked()

    def run_serial(self) -> TrafficReport:
        """Execute client 0's script as a plain serial adapter loop —
        no brackets held, no events.  The reference the one-client
        engine must match bit for bit."""
        if self.config.clients != 1:
            raise FsError("run_serial is defined for exactly one client")
        cfg = self.config
        clock = self.fs.clock
        self.prepare()
        start = self._counter_snapshot()
        start_ms = clock.now_ms
        for op in self.scripts[0]:
            clock.advance_idle(op.think_ms)
            issue_ms = clock.now_ms
            try:
                if op.kind == "read":
                    self._serial_read(op)
                else:
                    self._body(op)
            except (FsError, DiskError) as exc:
                cls = classify_error(exc)
                self._errors += 1
                self._errors_by_class[cls] = (
                    self._errors_by_class.get(cls, 0) + 1
                )
                self.obs.count("traffic.errors")
                self.obs.count(f"traffic.errors.{cls}")
            self._record(op, clock.now_ms - issue_ms)
        if cfg.settle:
            self.adapter.settle()
        return self._report(start, start_ms, cfg.ops_per_client)

    def _serial_read(self, op: ClientOp) -> None:
        handle = self.adapter.open(op.name)
        chunk = self.config.read_chunk_bytes
        offset = 0
        while offset < handle.byte_size:
            if offset:
                self.fs.clock.advance_idle(self.config.chunk_think_ms)
            length = min(chunk, handle.byte_size - offset)
            self.adapter.read_at(handle, offset, length)
            offset += length

    def _drain_parked(self) -> None:
        """The heap is empty but clients are parked on a commit: walk
        simulated time to the commit daemon's next wake-up (or force
        directly when no timer exists) until somebody is runnable."""
        clock = self.fs.clock
        guard = 0
        while not self._heap and self._parked:
            guard += 1
            if guard > 100_000:
                raise FsError("traffic engine stalled waking parked "
                              "clients")
            due = clock.next_timer_due_ms()
            if due is None:
                self.fs.coordinator.force()
                if not self._heap and self._parked:
                    raise FsError("no timer and a force freed no "
                                  "parked client")
                continue
            clock.advance_to(due)

    # ------------------------------------------------------------------
    # per-operation flow
    # ------------------------------------------------------------------
    def _arrive(self, client: _Client) -> None:
        client.issue_ms = self.fs.clock.now_ms
        client.attempts = 1
        client.failed = None
        client.inflight = True
        if self.recorder is not None:
            client.trace = self.recorder.op_issued(
                client.cid, client.ops[client.index], client.issue_ms
            )
        self._attempt(client)

    def _attempt(self, client: _Client) -> None:
        op = client.ops[client.index]
        clock = self.fs.clock
        # The pre-step every FSD entry point performs; running it here
        # keeps daemon forces at their serial times even while this
        # client is about to block in admission.
        clock.tick()
        self.fs.coordinator.check_pressure()
        if op.kind in MUTATING:
            if self.fs.degraded_reason is not None:
                # Degraded-mode contract: the volume is read-only and
                # says so — reject the write *before* it parks on
                # admission or holds a bracket open.
                error = DegradedVolumeError(
                    self.fs.degraded_reason,
                    fault_site=self.fs.degraded_site,
                )
                if not self._op_failed(client, op, error):
                    self._finish(client, op,
                                 clock.now_ms - client.issue_ms)
                return
            self._attempt_mutation(client, op)
        elif op.kind == "read":
            self._start_read(client, op)
        else:
            trace = client.trace
            if trace is not None:
                self.recorder.op_admitted(trace, clock.now_ms)
            try:
                if trace is not None:
                    with self.recorder.measure(trace):
                        self.adapter.list(op.name)
                else:
                    self.adapter.list(op.name)
            except (FsError, DiskError) as exc:
                if self._op_failed(client, op, exc):
                    return
            self._finish(client, op, clock.now_ms - client.issue_ms)

    def _attempt_mutation(self, client: _Client, op: ClientOp) -> None:
        txn = self.fs.txn
        clock = self.fs.clock
        if self.config.clients > 1:
            def waiter() -> None:
                self._parked -= 1
                self._client_event(client, self.fs.clock.now_ms,
                                   lambda: self._attempt(client))
        else:
            # Uncontended: nobody else can free log space for us, so
            # blocking is meaningless — take the serial no-wait path.
            waiter = None
        trace = client.trace
        if not txn.begin_op(waiter):
            if trace is not None:
                self.recorder.op_blocked(trace, txn.block_reason())
            self._parked += 1
            return
        if trace is not None:
            self.recorder.op_admitted(trace, clock.now_ms)
        try:
            if trace is not None:
                with txn.passthrough(), self.recorder.measure(trace):
                    self._body(op)
            else:
                with txn.passthrough():
                    self._body(op)
        except (FsError, DiskError) as exc:
            if self._op_failed(client, op, exc, in_bracket=True):
                return
        latency = clock.now_ms - client.issue_ms
        if self.config.hold_ms > 0.0:
            self._client_event(
                client,
                clock.now_ms + self.config.hold_ms,
                lambda: self._close_bracket(client, op, latency),
            )
        else:
            self._close_bracket(client, op, latency)

    def _close_bracket(
        self, client: _Client, op: ClientOp, latency: float
    ) -> None:
        coord = self.fs.coordinator
        trace = client.trace
        forces_before = coord.forces + coord.empty_forces
        if trace is not None:
            self.recorder.op_end(trace, self.fs.clock.now_ms)
        self.fs.txn.end_op()
        if op.sync:
            if coord.forces + coord.empty_forces > forces_before:
                # Our own end_op ran the deferred force, so the update
                # is already durable — no need to wait for the next one.
                now_ms = self.fs.clock.now_ms
                if trace is not None:
                    self.recorder.op_durable(trace, now_ms)
                self._sync_lat.append(now_ms - client.issue_ms)
                self.obs.observe(
                    "traffic.sync_ms",
                    now_ms - client.issue_ms,
                    TRAFFIC_MS_BUCKETS,
                )
                self._finish(client, op, now_ms - client.issue_ms)
                return
            self._parked += 1

            def durable(now_ms: float) -> None:
                self._parked -= 1
                if trace is not None:
                    self.recorder.op_durable(trace, now_ms)
                self._sync_lat.append(now_ms - client.issue_ms)
                self.obs.observe(
                    "traffic.sync_ms",
                    now_ms - client.issue_ms,
                    TRAFFIC_MS_BUCKETS,
                )
                self._finish(client, op, now_ms - client.issue_ms)

            self.fs.txn.await_commit(durable)
            return
        self._finish(client, op, latency)

    def _body(self, op: ClientOp) -> None:
        if op.kind == "create":
            self.adapter.create(op.name, payload(op.size, op.seed))
        elif op.kind == "write":
            handle = self.adapter.open(op.name)
            self.adapter.write(handle, 0, payload(op.size, op.seed))
        elif op.kind == "delete":
            self.adapter.delete(op.name)
        elif op.kind == "list":
            self.adapter.list(op.name)
        else:
            raise FsError(f"no inline body for op kind {op.kind!r}")

    def _start_read(self, client: _Client, op: ClientOp) -> None:
        trace = client.trace
        if trace is not None:
            self.recorder.op_admitted(trace, self.fs.clock.now_ms)
        try:
            if trace is not None:
                with self.recorder.measure(trace):
                    handle = self.adapter.open(op.name)
            else:
                handle = self.adapter.open(op.name)
        except (FsError, DiskError) as exc:
            if self._op_failed(client, op, exc):
                return
            self._finish(client, op,
                         self.fs.clock.now_ms - client.issue_ms)
            return
        self._read_chunk(client, op, handle, 0)

    def _read_chunk(self, client: _Client, op: ClientOp, handle,
                    offset: int) -> None:
        clock = self.fs.clock
        trace = client.trace
        total = handle.byte_size
        if offset >= total:
            self._finish(client, op, clock.now_ms - client.issue_ms)
            return
        length = min(self.config.read_chunk_bytes, total - offset)
        try:
            if trace is not None:
                with self.recorder.measure(trace):
                    self.adapter.read_at(handle, offset, length)
            else:
                self.adapter.read_at(handle, offset, length)
        except (FsError, DiskError) as exc:
            # A concurrent delete/recreate can invalidate the handle
            # mid-stream (like a Cedar client whose remote file
            # vanished), and under fault injection the media itself
            # can fail the read; a retry restarts the whole op from
            # open, never reusing the stale handle.
            if self._op_failed(client, op, exc):
                return
            self._finish(client, op, clock.now_ms - client.issue_ms)
            return
        offset += length
        if offset >= total:
            self._finish(client, op, clock.now_ms - client.issue_ms)
            return
        self._client_event(
            client,
            clock.now_ms + self.config.chunk_think_ms,
            lambda: self._read_chunk(client, op, handle, offset),
        )

    # ------------------------------------------------------------------
    # the error contract: classification, backoff, retries
    # ------------------------------------------------------------------
    def _op_failed(self, client: _Client, op: ClientOp, error: Exception,
                   in_bracket: bool = False) -> bool:
        """One attempt of ``client``'s current op failed with ``error``.

        Returns True when the contract scheduled another attempt (the
        caller must not finish the op); False when the failure is final
        — the error class is recorded on the client and the caller
        resolves the op through its normal path (for a bracketed
        mutation that means the usual hold/close flow, so async and
        sync semantics stay identical to a successful op's).
        """
        cfg = self.config
        cls = classify_error(error)
        if cls == "retryable" and cfg.max_retries > 0:
            if client.attempts <= cfg.max_retries:
                delay = self._backoff_ms(client)
                resume = self.fs.clock.now_ms + delay
                budget_ok = (
                    cfg.deadline_ms is None
                    or resume - client.issue_ms <= cfg.deadline_ms
                )
                if budget_ok:
                    if in_bracket:
                        # Leave the bracket before backing off: a
                        # failed attempt must not sit on the log's
                        # admission budget while it sleeps.
                        self.fs.txn.end_op()
                    client.attempts += 1
                    self._retries += 1
                    self.obs.count("retry.attempts")
                    self.obs.count(f"retry.attempts.{op.kind}")
                    self.obs.observe("retry.backoff_ms", delay,
                                     TRAFFIC_MS_BUCKETS)
                    self._client_event(
                        client, resume,
                        lambda: self._retry_fire(client),
                    )
                    return True
                cls = "timeout"
            else:
                self.obs.count("retry.exhausted")
        client.failed = cls
        self._errors += 1
        self._errors_by_class[cls] = self._errors_by_class.get(cls, 0) + 1
        self.obs.count("traffic.errors")
        self.obs.count(f"traffic.errors.{cls}")
        if client.trace is not None:
            self.recorder.op_error(client.trace, error_class=cls)
        return False

    def _backoff_ms(self, client: _Client) -> float:
        """Capped exponential backoff with deterministic jitter: the
        RNG is keyed by (seed, client, op index, attempt), so the same
        seed replays the same waits regardless of interleaving."""
        cfg = self.config
        backoff = min(
            cfg.retry_cap_ms,
            cfg.retry_base_ms * (2.0 ** (client.attempts - 1)),
        )
        rng = random.Random(
            f"{cfg.seed}:{client.cid}:retry:{client.index}:"
            f"{client.attempts}"
        )
        return backoff * (1.0 - cfg.retry_jitter * rng.random())

    def _retry_fire(self, client: _Client) -> None:
        """The backoff elapsed: start the next attempt from scratch
        (reopen by name — never reuse a pre-failure handle)."""
        if client.trace is not None:
            self.recorder.op_retry(client.trace, self.fs.clock.now_ms)
        self._attempt(client)

    def _finish(self, client: _Client, op: ClientOp,
                latency: float) -> None:
        if client.trace is not None:
            self.recorder.op_finished(client.trace, latency)
            client.trace = None
        self._outcomes.append(
            (self.fs.clock.now_ms, op.kind, client.failed or "ok",
             latency)
        )
        client.failed = None
        client.attempts = 1
        client.inflight = False
        self._record(op, latency)
        client.index += 1
        if client.index >= len(client.ops):
            return
        next_op = client.ops[client.index]
        self._client_event(
            client,
            self.fs.clock.now_ms + next_op.think_ms,
            lambda: self._arrive(client),
        )

    def _record(self, op: ClientOp, latency: float) -> None:
        self._completed += 1
        self._lat_all.append(latency)
        self._lat_by_kind.setdefault(op.kind, []).append(latency)
        self._ops_by_kind[op.kind] = self._ops_by_kind.get(op.kind, 0) + 1
        if self.obs.enabled:
            self.obs.count("traffic.ops")
            self.obs.observe("traffic.op_ms", latency,
                             TRAFFIC_MS_BUCKETS)
            self.obs.observe(f"traffic.op_ms.{op.kind}", latency,
                             TRAFFIC_MS_BUCKETS)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _availability_section(self) -> dict | None:
        """The error-contract section of the report; ``None`` while the
        contract is inert (keeps pre-contract reports byte-identical).
        The chaos engine extends this with the fault/recovery
        timeline."""
        if not self.config.contract_active:
            return None
        return self._availability_body()

    def _availability_body(self) -> dict:
        """The error-contract numbers themselves, computed
        unconditionally (the chaos engine reports them even when the
        retry knobs are at their inert defaults)."""
        cfg = self.config
        ok_ops = sum(
            1 for _, _, outcome, _ in self._outcomes if outcome == "ok"
        )
        return {
            "contract": {
                "max_retries": cfg.max_retries,
                "retry_base_ms": cfg.retry_base_ms,
                "retry_cap_ms": cfg.retry_cap_ms,
                "deadline_ms": cfg.deadline_ms,
            },
            "ops_ok": ok_ops,
            "ops_failed": dict(sorted(self._errors_by_class.items())),
            "retries": self._retries,
            "retry_amplification": round(
                (self._completed + self._retries) / self._completed, 4
            ) if self._completed else 0.0,
        }

    def _counter_snapshot(self) -> dict[str, float]:
        coord = self.fs.coordinator
        txn = self.fs.txn
        wal = self.fs.wal
        return {
            "forces": coord.forces,
            "empty_forces": coord.empty_forces,
            "pressure_forces": coord.pressure_forces,
            "deferred_forces": coord.deferred_forces,
            "updates_absorbed": coord.updates_absorbed,
            "admission_waits": txn.admission_waits,
            "commit_waits": txn.commit_waits,
            "wal_stall_ms": wal.stall_ms,
            "wal_third_entries": wal.third_entries,
        }

    def _report(self, start: dict[str, int], start_ms: float,
                issued: int) -> TrafficReport:
        end = self._counter_snapshot()
        delta = {key: end[key] - start[key] for key in start}
        elapsed = self.fs.clock.now_ms - start_ms
        forces = delta["forces"]
        absorbed = delta["updates_absorbed"]
        batching = absorbed / forces if forces else 0.0
        throughput = (self._completed / (elapsed / 1000.0)
                      if elapsed > 0 else 0.0)
        attribution = None
        if self.recorder is not None:
            finished = [
                t for t in self.recorder.traces[self._trace_start:]
                if t.finish_ms is not None
            ]
            attribution = build_report(
                finished, slo_ms=self.config.slo_ms
            )
        return TrafficReport(
            clients=self.config.clients,
            arrival=self.config.arrival,
            seed=self.config.seed,
            ops_issued=issued,
            ops_completed=self._completed,
            errors=self._errors,
            elapsed_ms=elapsed,
            throughput_ops_per_s=throughput,
            ops_by_kind=dict(self._ops_by_kind),
            latency=_latency_summary(self._lat_all),
            latency_by_kind={
                kind: _latency_summary(values)
                for kind, values in self._lat_by_kind.items()
            },
            sync_latency=_latency_summary(self._sync_lat),
            forces=forces,
            empty_forces=delta["empty_forces"],
            pressure_forces=delta["pressure_forces"],
            deferred_forces=delta["deferred_forces"],
            updates_absorbed=absorbed,
            batching_factor=batching,
            admission_waits=delta["admission_waits"],
            commit_waits=delta["commit_waits"],
            wal_stall_ms=delta["wal_stall_ms"],
            wal_third_entries=int(delta["wal_third_entries"]),
            clock=self.fs.clock.snapshot(),
            attribution=attribution,
            availability=self._availability_section(),
        )
