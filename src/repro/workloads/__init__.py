"""Synthetic workloads with the paper's distributions and hot spots."""

from repro.workloads.activities import (
    InterleavedActivities,
    compiler_activity,
    editor_activity,
    mailer_activity,
)

from repro.workloads.generators import (
    BulkUpdateWorkload,
    NameGenerator,
    OperationMix,
    PaperFileSizes,
    payload,
    small_fraction_stats,
)
from repro.workloads.makedo import MakeDoWorkload
from repro.workloads.traffic import (
    TrafficConfig,
    TrafficEngine,
    TrafficReport,
    percentile,
)

__all__ = [
    "BulkUpdateWorkload",
    "InterleavedActivities",
    "compiler_activity",
    "editor_activity",
    "mailer_activity",
    "MakeDoWorkload",
    "NameGenerator",
    "OperationMix",
    "PaperFileSizes",
    "payload",
    "small_fraction_stats",
    "TrafficConfig",
    "TrafficEngine",
    "TrafficReport",
    "percentile",
]
