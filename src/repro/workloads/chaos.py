"""Chaos under load: fault injection inside the live traffic engine.

The soak campaign (:mod:`repro.crashcheck.soak`) mixes faults into a
*serial* workload; the crash-point explorer is exhaustive over single
crashes.  What neither answers is the paper's operational claim — that
a Cedar file server keeps *serving* through media decay and machine
crashes, clients see typed errors rather than hangs, and recovery is
"a minute or so" (§1) rather than a multi-hour scavenge.  The chaos
engine closes that gap: it drives the multi-client traffic engine
while a weighted fault mix (the soak campaign's own
:data:`~repro.crashcheck.soak.FAULT_KINDS`) lands on the platter
between operations, machine crashes fire *mid-I/O* via the armed
crash plan, and — on a mirrored volume — an entire shadow unit dies
and is later resilvered.

On top of the traffic engine's client error contract (typed error
classes, capped-backoff retries, deadlines, degraded fast-fail) the
chaos engine adds what only a crash needs:

* every scheduled client continuation is **token-guarded**, so a
  pre-crash hold timer, read chunk, or retry never fires against the
  post-crash mount;
* a :class:`~repro.errors.SimulatedCrash` unwinds to the event loop,
  which crashes the volume (discarding every parked waiter), truncates
  the oracle to the committed watermark, remounts, and re-drives each
  interrupted client through the ordinary retry path with a typed
  :class:`~repro.errors.NotMounted` failure;
* if the remount itself refuses (the volume is past mounting), the
  run flips to **volume-lost** mode: every remaining operation
  resolves immediately with a ``degraded`` error — clients never hang
  — and the campaign ends in the salvage oracle.

The oracle is the soak campaign's, extended for in-place writes: FSD
logs *metadata* only, so a file's data sectors are not crash-atomic.
Any name touched by an operation that failed with an explicit error,
was interrupted by a crash, or sat in the uncommitted oplog suffix
when a crash hit is marked **torn**: its content may honestly be a
blend, because the client was *told* the op did not cleanly succeed.
Everything else must read back exactly (or a historical value, or
fail with an explicit error).  Silent corruption — junk content or a
vanished file on a mount that claims health, with no explicit error
anywhere in its story — is the one verdict that fails a campaign.

Everything is deterministic: faults come from one seeded RNG, crashes
from deterministic I/O countdowns, backoff jitter from per-(client,
op, attempt) keyed RNGs.  The same seed replays the same campaign to
a bit-identical disk, metrics snapshot, and report.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace

from repro.core.fsd import FSD
from repro.core.layout import VolumeParams
from repro.core.salvage import salvage_volume
from repro.crashcheck.soak import inject_fault
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.disk.mirror import MirroredDisk
from repro.errors import (
    CorruptMetadata,
    DegradedVolumeError,
    DiskError,
    FileNotFound,
    FsError,
    NotMounted,
    SimulatedCrash,
)
from repro.harness.adapters import FsdAdapter
from repro.harness.fingerprint import fingerprint
from repro.obs import Observer
from repro.workloads.generators import payload
from repro.workloads.traffic import (
    MUTATING,
    TrafficConfig,
    TrafficEngine,
    TrafficReport,
)

__all__ = [
    "CHAOS_GEOMETRY",
    "CHAOS_PARAMS",
    "ChaosConfig",
    "ChaosEngine",
    "ChaosReport",
    "chaos_bench_doc",
    "run_chaos",
]

#: default volume scale for chaos campaigns: the CLI's SMALL drive
#: (enough data area for dozens of clients), with the crashcheck
#: scale's appetite for log wrap.
CHAOS_GEOMETRY = DiskGeometry(cylinders=200, heads=8, sectors_per_track=48)
CHAOS_PARAMS = VolumeParams(
    nt_pages=1024, log_record_sectors=600, cache_pages=96
)

#: report schema version for ``BENCH_chaos.json`` / ``--json`` output.
CHAOS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of the fault campaign riding on one traffic run."""

    faults: int = 60                 # total faults to inject
    fault_interval_ms: float = 120.0  # simulated ms between injections
    crash_cycles: int = 2            # mid-run crash/recover cycles
    crash_io_window: int = 40        # crash arms 1..window I/Os out
    mirror: bool = False             # run on a shadowed pair
    resilver_delay_ms: float = 2_500.0  # unit loss -> resilver start
    slo_ms: float = 50.0             # "restored" latency bar
    slo_window: int = 5              # consecutive ok ops under the bar

    def __post_init__(self) -> None:
        if self.faults < 0:
            raise FsError("faults must be >= 0")
        if self.fault_interval_ms <= 0.0:
            raise FsError("fault_interval_ms must be positive")
        if self.crash_cycles < 0:
            raise FsError("crash_cycles must be >= 0")
        if self.crash_io_window < 2:
            raise FsError("crash_io_window must be at least 2")
        if self.resilver_delay_ms < 0.0:
            raise FsError("resilver_delay_ms must be >= 0")
        if self.slo_ms <= 0.0 or self.slo_window < 1:
            raise FsError("slo_ms must be positive, slo_window >= 1")

    @property
    def crash_points(self) -> frozenset[int]:
        """Fault counts at which a crash is armed, spaced evenly."""
        if not self.crash_cycles or not self.faults:
            return frozenset()
        spacing = self.faults // (self.crash_cycles + 1)
        if spacing == 0:
            return frozenset()
        return frozenset(
            spacing * (cycle + 1) for cycle in range(self.crash_cycles)
        )

    @property
    def mirror_fail_point(self) -> int | None:
        """Fault count at which the shadow unit dies (mirror runs)."""
        if not self.mirror or not self.faults:
            return None
        return max(1, self.faults // 3)


class ChaosEngine(TrafficEngine):
    """The traffic engine with a fault campaign and crash recovery."""

    def __init__(
        self,
        disk: SimDisk,
        fs: FSD,
        config: TrafficConfig,
        chaos: ChaosConfig,
        mount_kwargs: dict | None = None,
    ):
        super().__init__(fs, config)
        self.disk = disk
        self.chaos = chaos
        #: kwargs every post-crash remount reuses, so recovery comes
        #: back with the same scheduler/cache/checkpoint posture.
        self.mount_kwargs = dict(mount_kwargs or {})
        self.mount_kwargs.setdefault("obs", self.obs)
        self._chaos_rng = random.Random(f"{config.seed}:chaos")
        # fault campaign state
        self._faults_injected = 0
        self._faults_by_kind: dict[str, int] = {}
        self._crashes = 0
        self._recoveries: list[dict] = []
        self._mirror_events: list[dict] = []
        self._volume_lost = False
        self._lost_reason: str | None = None
        self._run_start_ms = 0.0
        # the soak oracle, grown a torn-name set for in-place writes
        self.oplog: list[tuple[str, str, bytes]] = []
        self.history: dict[str, set[bytes]] = {}
        self.committed = 0
        self.honesty_flag = False
        self._torn: set[str] = set()
        self._content: dict[str, list[bytes]] = {}
        self._leader_addrs: dict[tuple[str, int], int] = {}
        fs.coordinator.add_commit_hook(self._commit_hook)

    # ------------------------------------------------------------------
    # oracle bookkeeping
    # ------------------------------------------------------------------
    def _commit_hook(self) -> None:
        # Operation bodies are atomic and a force runs between them, so
        # every oplog entry present when a commit returns is durable.
        self.committed = max(self.committed, len(self.oplog))

    def _replay_content(self) -> None:
        """Rebuild the live content model from the (truncated) oplog."""
        stacks: dict[str, list[bytes]] = {}
        for kind, name, data in self.oplog:
            if kind == "create":
                stack = stacks.setdefault(name, [])
                stack.append(data)
                del stack[: -FSD.DEFAULT_KEEP]
            elif kind == "write":
                if stacks.get(name):
                    stacks[name][-1] = data
            elif kind == "delete" and stacks.get(name):
                stacks[name].pop()
        self._content = stacks

    def expected_visible(self) -> dict[str, bytes]:
        """Replay the committed oplog prefix: name -> newest content."""
        saved = self.oplog
        try:
            self.oplog = saved[: self.committed]
            self._replay_content()
            return {
                name: stack[-1]
                for name, stack in self._content.items()
                if stack
            }
        finally:
            self.oplog = saved
            self._replay_content()

    def uncommitted_touches(self, name: str) -> bool:
        """True when ``name`` appears in the oplog's uncommitted
        suffix — its on-disk content was never acknowledged durable."""
        return any(
            entry[1] == name for entry in self.oplog[self.committed:]
        )

    def _oracle_create(self, name: str, data: bytes, handle) -> None:
        self.oplog.append(("create", name, data))
        stack = self._content.setdefault(name, [])
        stack.append(data)
        del stack[: -FSD.DEFAULT_KEEP]
        props = handle.props
        self._leader_addrs[(name, props.version)] = props.leader_addr
        # Versions past the keep limit were trimmed: their leaders are
        # free and must never be wild-write targets again.
        for key in [
            k
            for k in self._leader_addrs
            if k[0] == name and k[1] <= props.version - FSD.DEFAULT_KEEP
        ]:
            del self._leader_addrs[key]

    def _oracle_write(self, name: str, result: bytes) -> None:
        self.oplog.append(("write", name, result))
        if self._content.get(name):
            self._content[name][-1] = result

    def _oracle_delete(self, name: str) -> None:
        self.oplog.append(("delete", name, b""))
        if self._content.get(name):
            self._content[name].pop()
        live = [k for k in self._leader_addrs if k[0] == name]
        if live:
            del self._leader_addrs[max(live, key=lambda k: k[1])]

    # ------------------------------------------------------------------
    # population + bodies (oracle-recording variants)
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Create the shared population and record it as the oracle's
        committed baseline (same RNG draws as the base engine)."""
        if self._prepared or self.config.population == 0:
            self._prepared = True
            return
        rng = random.Random(f"{self.config.seed}:population")
        for rank in range(self.config.population):
            name = self._pop_name(rank)
            data = payload(self._sample_size(rng), seed=rank)
            self.history.setdefault(name, set()).add(data)
            handle = self.adapter.create(name, data)
            self._oracle_create(name, data, handle)
        self.adapter.settle()
        self.committed = len(self.oplog)
        self._prepared = True

    def _body(self, op) -> None:
        if op.kind == "create":
            data = payload(op.size, op.seed)
            # Record the payload *before* the call: a create that fails
            # after materializing is then still a known content.
            self.history.setdefault(op.name, set()).add(data)
            handle = self.adapter.create(op.name, data)
            self._oracle_create(op.name, data, handle)
        elif op.kind == "write":
            handle = self.adapter.open(op.name)
            data = payload(op.size, op.seed)
            old = (self._content.get(op.name) or [b""])[-1]
            result = data + old[len(data):]
            self.history.setdefault(op.name, set()).add(result)
            self.adapter.write(handle, 0, data)
            self._oracle_write(op.name, result)
        elif op.kind == "delete":
            self.adapter.delete(op.name)
            self._oracle_delete(op.name)
        else:
            super()._body(op)

    # ------------------------------------------------------------------
    # crash-safe event plumbing
    # ------------------------------------------------------------------
    def _client_event(self, client, due_ms, fn) -> None:
        token = client.token

        def guarded() -> None:
            if client.token == token:
                fn()

        self._schedule(due_ms, guarded)

    def _loop(self) -> None:
        while self._heap:
            try:
                self._pump()
            except SimulatedCrash:
                self._recover()

    def _attempt(self, client) -> None:
        if self._volume_lost:
            self._resolve_lost(client)
            return
        super()._attempt(client)

    def _op_failed(self, client, op, error, in_bracket=False) -> bool:
        if in_bracket and op.kind in MUTATING:
            # The body raised partway: FSD logs metadata, not data, so
            # this name's content is no longer pinned by the oracle.
            self._torn.add(op.name)
        return super()._op_failed(client, op, error, in_bracket=in_bracket)

    def _resolve_lost(self, client) -> None:
        op = client.ops[client.index]
        error = DegradedVolumeError(
            self._lost_reason or "volume lost under chaos"
        )
        if not self._op_failed(client, op, error):
            self._finish(
                client, op, self.fs.clock.now_ms - client.issue_ms
            )

    # ------------------------------------------------------------------
    # the fault campaign tick
    # ------------------------------------------------------------------
    def run(self) -> TrafficReport:
        self.prepare()
        self._run_start_ms = self.fs.clock.now_ms
        if self.chaos.faults:
            self._schedule(
                self._run_start_ms + self.chaos.fault_interval_ms,
                self._tick,
            )
        return super().run()

    def _tick(self) -> None:
        if self._volume_lost or self._faults_injected >= self.chaos.faults:
            return
        clock = self.fs.clock
        # Reschedule *before* injecting: a wild write can trip an armed
        # crash mid-tick, and the campaign must survive its own fault.
        if self._faults_injected + 1 < self.chaos.faults:
            self._schedule(
                clock.now_ms + self.chaos.fault_interval_ms, self._tick
            )
        clock.tick()
        kind = inject_fault(
            self.disk, self.fs.layout, self._leader_addrs,
            self._chaos_rng,
        )
        self._faults_injected += 1
        self._faults_by_kind[kind] = self._faults_by_kind.get(kind, 0) + 1
        self.obs.count("chaos.faults")
        self.obs.count(f"chaos.faults.{kind}")
        if (
            self._faults_injected in self.chaos.crash_points
            and self.disk.faults.crash_plan is None
        ):
            self.disk.faults.arm_crash(
                after_ios=self._chaos_rng.randrange(
                    1, self.chaos.crash_io_window
                )
            )
            self.obs.count("chaos.crashes_armed")
        if self._faults_injected == self.chaos.mirror_fail_point:
            self._fail_mirror()

    def _fail_mirror(self) -> None:
        if not isinstance(self.disk, MirroredDisk) or self.disk.degraded:
            return
        clock = self.fs.clock
        self.disk.massive_failure("b")
        self.obs.count("chaos.mirror_failures")
        self._mirror_events.append(
            {"event": "unit_b_lost", "at_ms": round(clock.now_ms, 3)}
        )
        self._schedule(
            clock.now_ms + self.chaos.resilver_delay_ms, self._resilver
        )

    def _resilver(self) -> None:
        if self._volume_lost or not isinstance(self.disk, MirroredDisk):
            return
        if not self.disk.degraded:
            return
        copied = self.disk.resilver()
        self.obs.count("chaos.resilvers")
        self._mirror_events.append(
            {
                "event": "resilvered",
                "at_ms": round(self.fs.clock.now_ms, 3),
                "sectors": copied,
            }
        )

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        clock = self.fs.clock
        at_ms = clock.now_ms
        self._crashes += 1
        self.obs.count("chaos.crashes")
        self.fs.crash()
        # The armed plan *was* this crash; it dies with the machine.
        self.disk.faults.disarm_crash()
        self._parked = 0
        # Ops past the committed watermark died with the crash — and
        # because data sectors are written in place outside the log,
        # their names' contents are torn, not merely rolled back.
        for _, name, _ in self.oplog[self.committed:]:
            self._torn.add(name)
        del self.oplog[self.committed:]
        self._replay_content()
        interrupted = [c for c in self.clients if c.inflight]
        for client in interrupted:
            client.token += 1
            op = client.ops[client.index]
            if op.kind in MUTATING:
                self._torn.add(op.name)
        try:
            fs = FSD.mount(self.disk, **self.mount_kwargs)
        except (DegradedVolumeError, CorruptMetadata) as error:
            self._volume_lost = True
            self._lost_reason = str(error)
            self.honesty_flag = True
            self.obs.count("chaos.volume_lost")
            self._recoveries.append(
                {
                    "at_ms": at_ms,
                    "recover_ms": clock.now_ms - at_ms,
                    "mounted": 0,
                    "records_replayed": 0,
                }
            )
            for client in interrupted:
                self._resolve_lost(client)
            return
        self._rebind(fs)
        self._recoveries.append(
            {
                "at_ms": at_ms,
                "recover_ms": clock.now_ms - at_ms,
                "mounted": 1,
                "records_replayed": fs.mount_report.log_records_replayed,
            }
        )
        try:
            self._leader_addrs = {
                (props.name, props.version): props.leader_addr
                for props in fs.list()
            }
        except (FsError, DiskError):
            self._leader_addrs = {}
        if isinstance(self.disk, MirroredDisk) and self.disk.degraded:
            self._schedule(
                clock.now_ms + self.chaos.resilver_delay_ms,
                self._resilver,
            )
        # Re-drive every interrupted client through the contract: the
        # crash is a retryable, *typed* failure, never a hang.
        for client in interrupted:
            op = client.ops[client.index]
            error = NotMounted("crash interrupted the operation")
            if not self._op_failed(client, op, error):
                self._finish(
                    client, op, clock.now_ms - client.issue_ms
                )

    def _rebind(self, fs: FSD) -> None:
        self.fs = fs
        self.adapter = FsdAdapter(fs)
        if self.recorder is not None:
            self.recorder.bind(fs)
        fs.coordinator.add_commit_hook(self._commit_hook)
        report = fs.mount_report
        if report.log_damage or report.log_records_lost or fs.degraded:
            self.honesty_flag = True

    # ------------------------------------------------------------------
    # availability reporting
    # ------------------------------------------------------------------
    def _availability_section(self) -> dict:
        section = self._availability_body()
        section["faults"] = {
            "injected": self._faults_injected,
            "by_kind": dict(sorted(self._faults_by_kind.items())),
            "injector": self.disk.faults.counters(),
        }
        section["crashes"] = self._crashes
        section["volume_lost"] = self._volume_lost
        section["recoveries"] = [
            {
                "at_ms": round(entry["at_ms"], 3),
                "recover_ms": round(entry["recover_ms"], 3),
                "mounted": entry["mounted"],
                "records_replayed": entry["records_replayed"],
                "time_to_restored_slo_ms": self._ttr_slo(entry["at_ms"]),
            }
            for entry in self._recoveries
        ]
        section["epochs"] = self._epochs()
        section["goodput"] = self._goodput_timeline()
        if self._mirror_events:
            section["mirror"] = list(self._mirror_events)
        return section

    def _ttr_slo(self, at_ms: float) -> float | None:
        """Simulated ms from a recovery until ``slo_window``
        consecutive ops finished ok under ``slo_ms``; None when the
        run ended before service was restored to SLO."""
        streak = 0
        for finish_ms, _, outcome, latency in self._outcomes:
            if finish_ms < at_ms:
                continue
            if outcome == "ok" and latency <= self.chaos.slo_ms:
                streak += 1
                if streak >= self.chaos.slo_window:
                    return round(finish_ms - at_ms, 3)
            else:
                streak = 0
        return None

    def _epochs(self) -> list[dict]:
        """Per-epoch (between crashes) op counts and failures."""
        bounds = (
            [self._run_start_ms]
            + [entry["at_ms"] for entry in self._recoveries]
            + [self.fs.clock.now_ms]
        )
        epochs = []
        for i in range(len(bounds) - 1):
            low, high = bounds[i], bounds[i + 1]
            last = i == len(bounds) - 2
            ops = [
                o for o in self._outcomes
                if low <= o[0] and (o[0] < high or last)
            ]
            failed = sum(1 for o in ops if o[2] != "ok")
            epochs.append(
                {
                    "start_ms": round(low, 3),
                    "end_ms": round(high, 3),
                    "ops": len(ops),
                    "failed": failed,
                }
            )
        return epochs

    def _goodput_timeline(self, buckets: int = 12) -> list[dict]:
        if not self._outcomes:
            return []
        start = self._run_start_ms
        end = max(o[0] for o in self._outcomes)
        span = max(end - start, 1e-9)
        rows = [
            {
                "t_ms": round(start + span * (i + 1) / buckets, 3),
                "ok": 0,
                "failed": 0,
            }
            for i in range(buckets)
        ]
        for finish_ms, _, outcome, _ in self._outcomes:
            index = min(
                buckets - 1, int((finish_ms - start) / span * buckets)
            )
            rows[index]["ok" if outcome == "ok" else "failed"] += 1
        return rows


# ----------------------------------------------------------------------
# campaign report
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """One chaos campaign: the traffic run, the fault story, and the
    oracle's verdict."""

    seed: int
    clients: int
    ops_issued: int
    ops_completed: int
    faults_injected: int
    faults_by_kind: dict[str, int]
    crashes: int
    volume_lost: bool
    verdict: str = ""  # "recovered" | "degraded" | "salvaged"
    files_expected: int = 0
    files_verified: int = 0
    files_honestly_lost: int = 0
    silent_corruptions: list[str] = field(default_factory=list)
    salvage_summary: str | None = None
    traffic: dict = field(default_factory=dict)
    fingerprint: dict = field(default_factory=dict)
    schema_version: int = CHAOS_SCHEMA_VERSION

    @property
    def hung_ops(self) -> int:
        """Issued ops that never resolved — the contract demands 0."""
        return self.ops_issued - self.ops_completed

    @property
    def ok(self) -> bool:
        return (
            not self.silent_corruptions
            and self.hung_ops == 0
            and self.verdict in ("recovered", "degraded", "salvaged")
        )

    def as_dict(self) -> dict:
        """The campaign as a JSON-ready document (``--json`` output)."""
        return {
            "schema_version": self.schema_version,
            "seed": self.seed,
            "clients": self.clients,
            "ops_issued": self.ops_issued,
            "ops_completed": self.ops_completed,
            "hung_ops": self.hung_ops,
            "faults_injected": self.faults_injected,
            "faults_by_kind": dict(sorted(self.faults_by_kind.items())),
            "crashes": self.crashes,
            "volume_lost": self.volume_lost,
            "verdict": self.verdict,
            "files_expected": self.files_expected,
            "files_verified": self.files_verified,
            "files_honestly_lost": self.files_honestly_lost,
            "silent_corruptions": list(self.silent_corruptions),
            "salvage": self.salvage_summary,
            "ok": self.ok,
            "traffic": self.traffic,
            "fingerprint": self.fingerprint,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`as_dict`; bit-identical for equal seeds."""
        return json.dumps(self.as_dict(), indent=indent)

    def summary_lines(self) -> list[str]:
        """Human-readable campaign summary (the CLI's default output)."""
        avail = self.traffic.get("availability") or {}
        failed = avail.get("ops_failed", {})
        failed_parts = ", ".join(
            f"{cls} x{count}" for cls, count in sorted(failed.items())
        ) or "none"
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"chaos seed={self.seed}: {self.clients} clients, "
            f"{self.faults_injected} faults, {self.crashes} crashes "
            f"— {status}",
            f"ops {self.ops_completed}/{self.ops_issued} resolved "
            f"({self.hung_ops} hung), failures: {failed_parts}, "
            f"{avail.get('retries', 0)} retries",
            f"verdict {self.verdict}: {self.files_verified}/"
            f"{self.files_expected} files verified, "
            f"{self.files_honestly_lost} honestly lost, "
            f"{len(self.silent_corruptions)} silent corruptions",
        ]
        for recovery in avail.get("recoveries", []):
            ttr = recovery.get("time_to_restored_slo_ms")
            ttr_text = f"{ttr:.0f} ms" if ttr is not None else "not restored"
            lines.append(
                f"  crash at {recovery['at_ms']:.0f} ms: recovered in "
                f"{recovery['recover_ms']:.1f} ms "
                f"({recovery['records_replayed']} records), "
                f"SLO back in {ttr_text}"
            )
        for event in (self.traffic.get("availability") or {}).get(
            "mirror", []
        ):
            lines.append(
                f"  mirror: {event['event']} at {event['at_ms']:.0f} ms"
            )
        if self.salvage_summary:
            lines.append(f"salvage: {self.salvage_summary}")
        for finding in self.silent_corruptions:
            lines.append(f"SILENT CORRUPTION: {finding}")
        return lines


# ----------------------------------------------------------------------
# final verification (the soak oracle, torn-aware)
# ----------------------------------------------------------------------
def _honest_absence(engine: ChaosEngine, name: str) -> bool:
    return (
        engine.honesty_flag
        or engine.uncommitted_touches(name)
        or name in engine._torn
    )


def _acceptable(engine: ChaosEngine, name: str, got: bytes,
                want: bytes) -> bool:
    # An op past the committed watermark died with the final power-off;
    # like a mid-run crash (the torn set) it leaves unlogged data
    # sectors half-applied, so the name's content is honestly
    # indeterminate — the client never saw that op acknowledged as
    # durable.
    return (
        got == want
        or got in engine.history.get(name, ())
        or name in engine._torn
        or engine.uncommitted_touches(name)
    )


def _verify_mounted(fs: FSD, engine: ChaosEngine,
                    report: ChaosReport) -> None:
    expected = engine.expected_visible()
    report.files_expected = len(expected)
    for name, want in sorted(expected.items()):
        try:
            handle = fs.open(name)
            got = fs.read(handle)
        except FileNotFound:
            if _honest_absence(engine, name):
                report.files_honestly_lost += 1
            else:
                report.silent_corruptions.append(
                    f"committed file {name} vanished from a mount that "
                    "claims to be healthy"
                )
            continue
        except (DiskError, CorruptMetadata):
            report.files_honestly_lost += 1
            continue
        if _acceptable(engine, name, got, want):
            report.files_verified += 1
        else:
            report.silent_corruptions.append(
                f"file {name} returned {len(got)} bytes that were "
                "never written to it"
            )


def _verify_salvage(disk: SimDisk, engine: ChaosEngine,
                    report: ChaosReport,
                    params: VolumeParams | None = None) -> None:
    # params_hint lets salvage locate the layout even when chaos has
    # destroyed both root-page copies (the worst allowed outcome).
    try:
        destination, salvage_report = salvage_volume(disk, params_hint=params)
    except (DegradedVolumeError, CorruptMetadata) as error:
        report.silent_corruptions.append(f"salvage failed: {error}")
        return
    report.salvage_summary = salvage_report.summary()
    fs = FSD.mount(destination)
    expected = engine.expected_visible()
    if not report.files_expected:
        report.files_expected = len(expected)
    for name, want in sorted(expected.items()):
        try:
            handle = fs.open(name)
            got = fs.read(handle)
        except (FileNotFound, DiskError, CorruptMetadata):
            report.files_honestly_lost += 1
            continue
        if _acceptable(engine, name, got, want):
            report.files_verified += 1
        else:
            report.silent_corruptions.append(
                f"salvaged file {name} returned {len(got)} bytes that "
                "were never written to it"
            )
    fs.crash()


def _classify(disk: SimDisk, engine: ChaosEngine,
              report: ChaosReport, mount_kwargs: dict) -> None:
    params = mount_kwargs.get("params")
    if engine._volume_lost:
        report.verdict = "salvaged"
        _verify_salvage(disk, engine, report, params)
        return
    try:
        fs = FSD.mount(disk, **mount_kwargs)
    except (DegradedVolumeError, CorruptMetadata):
        report.verdict = "salvaged"
        engine.honesty_flag = True
        _verify_salvage(disk, engine, report, params)
        return
    mount_report = fs.mount_report
    if mount_report.log_damage or mount_report.log_records_lost or fs.degraded:
        engine.honesty_flag = True
    report.verdict = "degraded" if fs.degraded else "recovered"
    _verify_mounted(fs, engine, report)
    fs.crash()
    if report.verdict == "degraded":
        _verify_salvage(disk, engine, report, params)


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
def run_chaos(
    traffic: TrafficConfig | None = None,
    chaos: ChaosConfig | None = None,
    *,
    geometry: DiskGeometry | None = None,
    params: VolumeParams | None = None,
    sched: str = "fifo",
    data_cache_pages: int = 0,
    checkpoint_interval_ms: float | None = None,
    observer=None,
) -> ChaosReport:
    """One seeded chaos campaign: traffic + faults + final oracle."""
    traffic = traffic or TrafficConfig(max_retries=4)
    chaos = chaos or ChaosConfig()
    if traffic.settle:
        # The engine must never force a volume that may be degraded or
        # lost; the final classification settles things its own way.
        traffic = replace(traffic, settle=False)
    geometry = geometry or CHAOS_GEOMETRY
    params = params or CHAOS_PARAMS
    disk_cls = MirroredDisk if chaos.mirror else SimDisk
    disk = disk_cls(geometry=geometry)
    FSD.format(disk, params)
    obs = observer if observer is not None else Observer()
    mount_kwargs = {
        "params": params,
        "obs": obs,
        "sched": sched,
        "data_cache_pages": data_cache_pages,
        "checkpoint_interval_ms": checkpoint_interval_ms,
    }
    fs = FSD.mount(disk, **mount_kwargs)
    engine = ChaosEngine(disk, fs, traffic, chaos, mount_kwargs)
    traffic_report = engine.run()
    if not engine._volume_lost:
        engine.fs.crash()
    # A still-armed crash died with the final power-off; the oracle's
    # classification mounts must not trip over it.
    disk.faults.disarm_crash()
    report = ChaosReport(
        seed=traffic.seed,
        clients=traffic.clients,
        ops_issued=traffic_report.ops_issued,
        ops_completed=traffic_report.ops_completed,
        faults_injected=engine._faults_injected,
        faults_by_kind=dict(engine._faults_by_kind),
        crashes=engine._crashes,
        volume_lost=engine._volume_lost,
        traffic=traffic_report.as_dict(),
    )
    _classify(disk, engine, report, mount_kwargs)
    report.fingerprint = fingerprint(disk, obs).as_dict()
    return report


def chaos_bench_doc(report: ChaosReport) -> dict:
    """Flat gating document for ``BENCH_chaos.json``.  Key names are
    chosen for the bench-diff direction table: ``goodput_ops_per_s``
    gates higher-is-better, ``*_ms`` and ``errors_per_1k_ops`` gate
    lower-is-better, counts stay neutral."""
    avail = report.traffic.get("availability") or {}
    elapsed_ms = report.traffic.get("elapsed_ms", 0.0)
    ok_ops = avail.get("ops_ok", report.ops_completed)
    goodput = (
        ok_ops / (elapsed_ms / 1000.0) if elapsed_ms > 0 else 0.0
    )
    failed = sum(avail.get("ops_failed", {}).values())
    errors_per_1k = (
        1000.0 * failed / report.ops_completed
        if report.ops_completed
        else 0.0
    )
    ttrs = [
        entry["time_to_restored_slo_ms"]
        for entry in avail.get("recoveries", [])
        if entry.get("time_to_restored_slo_ms") is not None
    ]
    return {
        "schema_version": CHAOS_SCHEMA_VERSION,
        "seed": report.seed,
        "clients": report.clients,
        "faults_injected": report.faults_injected,
        "crashes": report.crashes,
        "verdict": report.verdict,
        "goodput_ops_per_s": round(goodput, 3),
        "errors_per_1k_ops": round(errors_per_1k, 3),
        "retry_amplification": avail.get("retry_amplification", 1.0),
        "mean_time_to_restored_slo_ms": (
            round(sum(ttrs) / len(ttrs), 3) if ttrs else 0.0
        ),
        "files_verified_share": (
            round(report.files_verified / report.files_expected, 4)
            if report.files_expected
            else 0.0
        ),
    }
