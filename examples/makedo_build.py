#!/usr/bin/env python3
"""The MakeDo build benchmark on all three file systems.

Run:  python examples/makedo_build.py

"The MakeDo program used as a benchmark is typical of clients that
intensively use the file system" (paper §7, Table 3).  The synthetic
build compiles 30 modules — page-at-a-time source reads, scratch and
object file creates, scratch deletes — and reports disk I/Os and
simulated wall clock per file system.
"""

from repro.harness.batches import measure_makedo
from repro.harness.scenarios import (
    FULL,
    cfs_volume,
    ffs_volume,
    fsd_volume,
    populate,
)


def main() -> None:
    rows = []
    for name, factory in (
        ("FSD", fsd_volume),
        ("CFS", cfs_volume),
        ("4.3BSD", ffs_volume),
    ):
        disk, _, adapter = factory(FULL)
        populate(adapter, 100)
        ios, elapsed_ms = measure_makedo(disk, adapter, modules=30)
        rows.append((name, ios, elapsed_ms))

    print(f"{'system':>8} {'disk I/Os':>10} {'sim seconds':>12}")
    for name, ios, elapsed_ms in rows:
        print(f"{name:>8} {ios:>10} {elapsed_ms / 1000:>12.1f}")

    fsd_ios = rows[0][1]
    cfs_ios = rows[1][1]
    print(
        f"\nCFS/FSD I/O ratio: {cfs_ios / fsd_ios:.2f}x "
        f"(paper Table 3: 1975/1299 = 1.52x — data I/O dominates, the\n"
        f"metadata savings are the margin)"
    )


if __name__ == "__main__":
    main()
