#!/usr/bin/env python3
"""A tour of FSD's robustness claims under fault injection (§5.8).

Run:  python examples/fault_injection_tour.py

The paper claims FSD is robust against six error classes CFS was not.
This example injects each fault the simulator supports and shows the
defence that catches it:

1. a damaged name-table sector  -> repaired from the twin copy,
2. a damaged log sector         -> record recovered from its duplicate,
3. a torn multi-sector write    -> end-page check discards the record,
4. a wild write on a leader     -> leader verification raises,
5. a damaged boot page          -> root read falls back to the replica,
6. a lost VAM                   -> rebuilt from the name table.
"""

from repro import FSD, CorruptMetadata, SimDisk, SimulatedCrash
from repro.harness.scenarios import SMALL, fsd_volume
from repro.workloads.generators import payload


def main() -> None:
    disk, fs, _ = fsd_volume(SMALL)
    for index in range(40):
        fs.create(f"files/f-{index:02d}", payload(800 + index, index))
    fs.force()

    # 1. damaged name-table sector (one copy of a page).  Remount
    # first so the page really is read back from disk.
    fs.unmount()
    fs = FSD.mount(disk)
    victim = fs.layout.nt_a_start + fs.name_table.tree._root
    disk.faults.damage(victim)
    fs.list("files/")  # double read notices, repairs in place
    assert not disk.faults.is_damaged(victim)
    print(f"1. damaged NT sector {victim}: repaired from its twin copy")

    # 2. damaged log sector: recovery still replays the record
    fs.create("files/logged", b"survives")
    fs.force()
    log_area = fs.wal.area_start
    disk.faults.damage(log_area + max(fs.wal.write_offset - 4, 0))
    fs.crash()
    fs = FSD.mount(disk)
    assert fs.exists("files/logged")
    print("2. damaged log sector: record recovered from its duplicate pages")

    # 3. torn log write: the un-acknowledged record is discarded
    fs.create("files/torn", b"doomed")
    disk.faults.arm_crash(after_ios=0, surviving_sectors=2, damage_tail=2)
    try:
        fs.force()
    except SimulatedCrash:
        pass
    fs.crash()
    fs = FSD.mount(disk)
    assert not fs.exists("files/torn")
    assert fs.exists("files/logged")
    print("3. torn log write: end-page mismatch cleanly ends recovery scan")

    # 4. wild write (memory smash) on a leader page
    handle = fs.open("files/f-05")
    disk.poke(handle.props.leader_addr, b"\xde\xad\xbe\xef" * 32)
    try:
        fs.read(handle, 0, 100)
        print("4. FAILED: wild write on leader went unnoticed")
    except CorruptMetadata as error:
        print(f"4. wild write on leader caught: {error}")

    # 5. damaged boot page
    disk.faults.damage(fs.layout.root_a)
    fs.crash()
    fs = FSD.mount(disk)  # falls back to root copy B, repairs A
    print(f"5. damaged root page: mounted from replica (boot #{fs.boot_count})")

    # 6. lost VAM: rebuilt from the name table
    report = fs.mount_report
    print(
        f"6. VAM {'loaded' if report.vam_loaded else 'rebuilt from name table'}"
        f" in {report.vam_ms / 1000:.1f} simulated s"
    )
    files = fs.list("files/")
    print(f"\nvolume fully usable: {len(files)} files listed")


if __name__ == "__main__":
    main()
