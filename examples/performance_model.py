#!/usr/bin/env python3
"""Design with the paper's analytical model (§6).

Run:  python examples/performance_model.py

Reproduces the design process: script every alternative in terms of
seeks, latencies, revolutions and transfers; evaluate against the
drive's timing; discard the poorer alternatives.  Also prints the
paper's worked example — the CFS one-sector-file create script — step
by step, and shows how the predictions move on a hypothetical future
drive ("slow-seeking but high-transfer-rate disks", §5).
"""

from repro.disk.geometry import TRIDENT_T300
from repro.disk.timing import DiskTiming, TRIDENT_TIMING
from repro.model import (
    ModelAssumptions,
    all_scripts,
    design_alternatives,
    predict_all,
)
from repro.model.alternatives import OPERATIONS


def show_worked_example() -> None:
    print("--- the paper's worked example: CFS one-sector-file create ---")
    scripts = all_scripts()
    script = scripts["cfs small create"]
    for label, ms in script.breakdown(TRIDENT_TIMING, TRIDENT_T300):
        print(f"  {label:<28} {ms:8.2f} ms")
    total = script.evaluate(TRIDENT_TIMING, TRIDENT_T300)
    print(f"  {'TOTAL':<28} {total:8.2f} ms\n")


def rank_alternatives(timing: DiskTiming, title: str) -> None:
    print(f"--- design alternatives on {title} ---")
    assume = ModelAssumptions()
    rows = []
    for name, scripts in design_alternatives(assume).items():
        total = sum(
            scripts[op].evaluate(timing, TRIDENT_T300) for op in OPERATIONS
        )
        rows.append((total, name))
    for total, name in sorted(rows):
        marker = "  <== chosen" if "chosen" in name else ""
        print(f"  {total:8.1f} ms  {name}{marker}")
    print()


def main() -> None:
    show_worked_example()

    print("--- per-operation predictions (Trident-class drive) ---")
    for name, prediction in predict_all(
        all_scripts(), TRIDENT_TIMING, TRIDENT_T300
    ).items():
        print(f"  {prediction}")
    print()

    rank_alternatives(TRIDENT_TIMING, "the Trident-class drive")

    # §5: "scaled well to slow-seeking but high-transfer-rate disks"
    # (the optical-disk future the author worried about).
    future = DiskTiming(
        rotation_ms=16.67,
        seek_settle_ms=20.0,   # much slower positioning
        seek_coeff_ms=4.0,
        head_switch_ms=0.3,
    )
    rank_alternatives(future, "a slow-seek / fast-transfer future drive")
    print(
        "The chosen design wins on both drives: central placement and\n"
        "group commit matter even more when seeks are expensive."
    )


if __name__ == "__main__":
    main()
