#!/usr/bin/env python3
"""Crash-recovery shootout: FSD log redo vs CFS scavenge vs BSD fsck.

Run:  python examples/crash_recovery_demo.py [--small]

Builds a moderately full volume on each of the three file systems,
crashes it mid-flight (including a torn multi-sector write, per the
paper's weak-atomic failure model), then recovers:

* FSD replays its redo log and rebuilds the VAM from the name table —
  seconds (paper: 1–25 s).
* CFS must scavenge: read every label on the disk and rebuild the
  name table — the better part of an hour (paper: 3600+ s).
* 4.3 BSD runs fsck over every inode and directory (paper: ~7 min).

Also demonstrates the single-sector-failure robustness: a damaged
name-table sector is repaired transparently from its twin copy.
"""

import sys

from repro import FSD, SimulatedCrash, scavenge, fsck
from repro.harness import FULL, SMALL, measure
from repro.harness.scenarios import cfs_volume, ffs_volume, fsd_volume, populate
from repro.workloads.generators import payload


def fsd_demo(scale) -> None:
    print("=== FSD (logging + group commit) ===")
    disk, fs, adapter = fsd_volume(scale)
    populate(adapter, scale.recovery_files)
    for index in range(20):
        fs.create(f"work/f-{index:02d}", payload(1_200, index))
    fs.force()

    # Crash *inside* the very next multi-sector log write: the paper's
    # torn-write model persists a prefix and damages 1-2 sectors.
    fs.create("work/in-flight", b"doomed")
    disk.faults.arm_crash(after_ios=0, surviving_sectors=3, damage_tail=2)
    try:
        fs.force()
        raise AssertionError("the armed crash should have fired")
    except SimulatedCrash as crash:
        print(f"  crash: {crash}")
    fs.crash()

    took = measure(disk, lambda: FSD.mount(disk))
    fs = took.result
    report = fs.mount_report
    print(
        f"  recovered in {took.elapsed_ms / 1000:.1f} simulated s "
        f"({report.log_records_replayed} records, "
        f"{report.pages_replayed} pages replayed)"
    )
    assert fs.exists("work/f-19"), "committed work must survive"
    assert not fs.exists("work/in-flight"), "torn record must be discarded"
    print("  committed work intact; torn record correctly discarded")

    # Single-sector failure: damage one copy of a name-table page.
    victim = fs.layout.nt_a_start + 5
    disk.faults.damage(victim)
    files = fs.list("work/")
    print(f"  damaged NT sector repaired from twin; list sees {len(files)} files")


def cfs_demo(scale) -> None:
    print("=== CFS (labels, scavenger) ===")
    disk, fs, adapter = cfs_volume(scale)
    populate(adapter, scale.recovery_files)
    fs.crash()
    took = measure(disk, lambda: scavenge(disk, scale.cfs_params))
    _, report = took.result
    print(
        f"  scavenged in {took.elapsed_ms / 1000:.0f} simulated s "
        f"({report.sectors_scanned} labels read, "
        f"{report.files_recovered} files recovered)"
    )


def bsd_demo(scale) -> None:
    print("=== 4.3 BSD (fsck) ===")
    disk, fs, adapter = ffs_volume(scale)
    populate(adapter, scale.recovery_files)
    fs.crash()
    took = measure(disk, lambda: fsck(disk, scale.ffs_params))
    report = took.result
    print(
        f"  fsck in {took.elapsed_ms / 1000:.0f} simulated s "
        f"({report.inodes_checked} inodes checked)"
    )


def main() -> None:
    scale = SMALL if "--small" in sys.argv else FULL
    print(f"scale: {scale.name} ({scale.geometry.total_bytes // 2**20} MB)\n")
    fsd_demo(scale)
    print()
    cfs_demo(scale)
    print()
    bsd_demo(scale)


if __name__ == "__main__":
    main()
