#!/usr/bin/env python3
"""Cedar's remote-file caching over FSD (paper §4, Table 1, §5.4).

Run:  python examples/remote_caching.py

Most Cedar workstation files were cached copies of files on servers,
reached through symbolic links.  This example shows the three
name-table entry kinds working together, and the paper's group-commit
poster child: every cache hit updates the copy's last-used-time — a
one-page name-table change that costs no synchronous I/O because group
commit batches it.
"""

from repro import FSD, SimDisk
from repro.core.remote import CachingFS, RemoteFileServer
from repro.disk import StatsWindow
from repro.workloads.generators import payload


def main() -> None:
    disk = SimDisk()
    FSD.format(disk)
    fs = FSD.mount(disk)

    ivy = RemoteFileServer("ivy")
    ivy.store("cedar/BTree.mesa", payload(8_000, 1))
    ivy.store("cedar/Rope.mesa", payload(14_000, 2))
    caching = CachingFS(fs, {"ivy": ivy})

    # Symbolic links: the workstation's view of the server's tree.
    caching.make_link("BTree.mesa", "ivy:cedar/BTree.mesa")
    caching.make_link("Rope.mesa", "ivy:cedar/Rope.mesa")
    print("made links:", caching.read_link("BTree.mesa"))

    # First open: a network fetch populates the cache.
    handle = caching.open("BTree.mesa")
    print(
        f"first open fetched {handle.byte_size} bytes "
        f"(misses={caching.stats.misses}, server fetches={ivy.fetches})"
    )

    # Second open: pure cache hit — zero network, zero sync disk I/O.
    window = StatsWindow(disk.stats)
    handle = caching.open("BTree.mesa")
    delta = window.delta(disk.stats)
    print(
        f"second open: hits={caching.stats.hits}, "
        f"disk I/Os={delta.total_ios}, server fetches={ivy.fetches}"
    )
    print(
        "  (the hit updated last-used-time in the name table; group "
        "commit\n   will log it within half a second — §5.4's example)"
    )
    fs.force()

    # A new remote version is fetched alongside the immutable old one.
    ivy.store("cedar/BTree.mesa", payload(8_500, 3))
    handle = caching.open("BTree.mesa")
    print(
        f"new remote version fetched: {handle.byte_size} bytes; "
        f"{len(caching.cached_entries())} cached copies on disk"
    )

    # Space pressure: flush the least-recently-used copy (the stale v1).
    released = caching.flush(bytes_needed=5_000)
    fs.force()
    print(
        f"flushed {caching.stats.flushed_files} cop(ies) "
        f"({released} bytes) — old versions are immutable, but they "
        f"may be flushed"
    )

    # The cache state survives crashes like any other metadata.
    fs.crash()
    fs = FSD.mount(disk)
    caching = CachingFS(fs, {"ivy": ivy})
    print(
        f"after crash+recovery: {len(caching.cached_entries())} cached "
        f"cop(ies) still known"
    )
    fetches_before = ivy.fetches
    handle = caching.open("BTree.mesa")
    print(
        f"reopened: {handle.byte_size} bytes, "
        f"{'served from cache' if ivy.fetches == fetches_before else 'refetched'}"
    )


if __name__ == "__main__":
    main()
