#!/usr/bin/env python3
"""Trace a file-system operation the way the §6 model scripts it.

Run:  python examples/trace_analysis.py

The paper's §6 worked example scripts a CFS one-sector-file create as
seeks, latencies, revolutions and transfers.  Attach an IoTracer to
the simulated disk and you get the same decomposition from the *live*
system — first for CFS (compare with the paper's script), then for
FSD's one-write create.
"""

from repro import CFS, FSD, SimDisk
from repro.cfs.cfs import CfsParams
from repro.disk import IoTracer
from repro.disk.geometry import TRIDENT_T300


def show(title: str, tracer: IoTracer) -> None:
    print(f"--- {title} ---")
    for event in tracer.events:
        print(f"  {event}")
    totals = tracer.totals()
    print(
        f"  = {totals['events']:.0f} I/Os, "
        f"seek {totals['seek_ms']:.1f} ms, "
        f"rotation {totals['rotational_ms']:.1f} ms, "
        f"transfer {totals['transfer_ms']:.1f} ms"
    )
    print("  in the model's vocabulary:")
    for line in tracer.script():
        print(f"    {line}")
    print()


def main() -> None:
    # ----- CFS: the paper's worked example, live -------------------
    disk = SimDisk(geometry=TRIDENT_T300)
    CFS.format(disk, CfsParams())
    cfs = CFS.mount(disk, CfsParams())
    cfs.create("warm/up", b"w")  # fault in the name-table pages

    tracer = IoTracer()
    disk.tracer = tracer
    cfs.create("demo/one-byte", b"!")
    disk.tracer = None
    show("CFS one-sector-file create (paper §6's worked example)", tracer)
    print(
        "Compare with the paper: 1) verify free pages: seek, latency,\n"
        "3-page transfer; 2) write header labels after a revolution;\n"
        "3) write the data label; ... — the same steps, from the live\n"
        "system instead of a hand analysis.\n"
    )

    # ----- FSD: the one-write create ---------------------------------
    disk2 = SimDisk(geometry=TRIDENT_T300)
    FSD.format(disk2)
    fsd = FSD.mount(disk2)
    fsd.create("warm/up", b"w")

    tracer2 = IoTracer()
    disk2.tracer = tracer2
    fsd.create("demo/one-byte", b"!")
    fsd.force()  # make the (normally timer-driven) log write visible
    disk2.tracer = None
    show("FSD one-byte create + its group-commit log write", tracer2)
    print(
        "FSD's create is one combined leader+data write; the log record\n"
        "(here forced explicitly) is the only other I/O, and in normal\n"
        "operation it is shared by every update of the half-second window."
    )


if __name__ == "__main__":
    main()
