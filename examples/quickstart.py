#!/usr/bin/env python3
"""Quickstart: format an FSD volume, use it, crash it, recover it.

Run:  python examples/quickstart.py

This walks the paper's headline behaviours end to end:

1. a one-byte file create costs a single synchronous disk I/O,
2. open and list need no I/O (everything is in the name table),
3. committed metadata survives a crash via log redo,
4. work inside the last (un-forced) half second may be lost — the
   price of group commit the paper argues a workstation can pay.
"""

from repro import FSD, SimDisk
from repro.disk import StatsWindow


def main() -> None:
    disk = SimDisk()  # ~306 MB Trident-class simulated drive
    FSD.format(disk)
    fs = FSD.mount(disk)
    print(f"mounted FSD volume, boot #{fs.boot_count}")

    # --- 1. create a one-byte file, count the I/Os ------------------
    fs.create("demo/warmup", b"?")  # fault in the name-table pages
    window = StatsWindow(disk.stats)
    fs.create("demo/one-byte.txt", b"!")
    delta = window.delta(disk.stats)
    print(
        f"one-byte create: {delta.total_ios} synchronous disk I/O "
        f"(the combined leader+data write)"
    )

    # --- 2. opens and lists are free ---------------------------------
    for index in range(25):
        fs.create(f"demo/file-{index:02d}", b"cedar" * index)
    fs.force()  # group commit: everything above is now durable

    window = StatsWindow(disk.stats)
    names = [props.name for props in fs.list("demo/")]
    handle = fs.open("demo/file-07")
    delta = window.delta(disk.stats)
    print(f"list {len(names)} files + open: {delta.total_ios} disk I/Os")

    # --- 3. crash and recover ----------------------------------------
    fs.create("demo/never-forced", b"written in the last half second")
    fs.crash()  # volatile state (cache, VAM) vanishes
    print("crash!  remounting...")

    fs = FSD.mount(disk)
    report = fs.mount_report
    print(
        f"recovered in {report.total_ms / 1000:.1f} simulated seconds "
        f"({report.log_records_replayed} log records replayed, VAM "
        f"{'loaded' if report.vam_loaded else 'rebuilt'})"
    )
    survived = fs.exists("demo/file-07")
    lost = fs.exists("demo/never-forced")
    print(f"committed file survived: {survived}")
    print(f"un-forced file survived: {lost}  (<= 0.5 s of work at risk)")

    data = fs.read(fs.open("demo/file-07"))
    assert data == b"cedar" * 7
    print("data verified byte-for-byte after recovery")

    fs.unmount()
    print("clean unmount: VAM saved, next mount will be instant")


if __name__ == "__main__":
    main()
