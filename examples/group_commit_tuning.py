#!/usr/bin/env python3
"""Group-commit tuning: sweep the commit interval on a bulk workload.

Run:  python examples/group_commit_tuning.py

The paper forces the log every half second and notes the factors "may
be improved somewhat by using a bigger log and lengthening the time
between commits."  This example sweeps the interval over the §5.4
bulk-update hot spot and prints metadata I/Os, log traffic, and the
window of work at risk — the trade the paper describes.
"""

from repro import FSD, SimDisk, VolumeParams
from repro.disk.geometry import TRIDENT_T300
from repro.harness.runner import drain_clock, measure
from repro.workloads.generators import BulkUpdateWorkload, payload

INTERVALS_MS = [0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0]
THINK_MS = 150.0


def run_interval(interval_ms: float) -> dict[str, float]:
    disk = SimDisk(geometry=TRIDENT_T300)
    params = VolumeParams(
        commit_interval_ms=interval_ms or 500.0,  # 0 means force per op
    )
    FSD.format(disk, params)
    fs = FSD.mount(disk)
    workload = BulkUpdateWorkload(files=40, rounds=3)
    for index in range(workload.files):
        fs.create(
            f"{workload.directory}/module-{index:03d}",
            payload(workload.size_bytes, index),
        )
    fs.force()
    drain_clock(disk.clock, 1_000)

    operations = 0

    def body() -> None:
        nonlocal operations
        for round_index in range(1, workload.rounds + 1):
            for index in range(workload.files):
                fs.create(
                    f"{workload.directory}/module-{index:03d}",
                    payload(workload.size_bytes, index + round_index),
                )
                operations += 1
                if interval_ms == 0.0:
                    fs.force()
                else:
                    drain_clock(disk.clock, THINK_MS)
        fs.force()

    took = measure(disk, body)
    metadata_ios = took.io.total_ios - operations
    return {
        "interval": interval_ms,
        "metadata_ios": metadata_ios,
        "log_sectors": fs.wal.sectors_logged,
        "forces": fs.coordinator.forces,
        "elapsed_s": took.elapsed_ms / 1000.0,
    }


def main() -> None:
    print(
        f"{'interval':>10} {'metadata I/Os':>14} {'log sectors':>12} "
        f"{'forces':>7} {'work at risk':>13}"
    )
    for interval in INTERVALS_MS:
        row = run_interval(interval)
        label = "per-op" if interval == 0 else f"{interval:.0f} ms"
        at_risk = "none" if interval == 0 else f"<= {interval / 1000:.2f} s"
        print(
            f"{label:>10} {row['metadata_ios']:>14.0f} "
            f"{row['log_sectors']:>12.0f} {row['forces']:>7.0f} {at_risk:>13}"
        )
    print(
        "\nThe paper's choice (500 ms) sits where metadata I/O has "
        "collapsed\nbut the window of uncommitted work is still half a "
        "second."
    )


if __name__ == "__main__":
    main()
