"""Setuptools shim for environments that cannot do PEP 660 editable
installs (e.g. offline machines without the `wheel` package).

Use `pip install -e .` where possible; otherwise `python setup.py develop`.
"""
from setuptools import setup

setup()
