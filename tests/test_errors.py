"""Tests for the exception taxonomy."""

from __future__ import annotations

import pytest

from repro.errors import (
    CorruptMetadata,
    DamagedSectorError,
    DiskError,
    DiskRangeError,
    FileExists,
    FileNotFound,
    FsError,
    LabelCheckError,
    LogFull,
    NotMounted,
    ReproError,
    SimulatedCrash,
    VolumeFull,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            DiskError, DiskRangeError, DamagedSectorError, LabelCheckError,
            SimulatedCrash, FsError, FileNotFound, FileExists, VolumeFull,
            CorruptMetadata, LogFull, NotMounted,
        ],
    )
    def test_everything_is_a_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize(
        "exc", [DiskRangeError, DamagedSectorError, LabelCheckError]
    )
    def test_disk_errors(self, exc):
        assert issubclass(exc, DiskError)

    @pytest.mark.parametrize(
        "exc",
        [FileNotFound, FileExists, VolumeFull, CorruptMetadata, LogFull,
         NotMounted],
    )
    def test_fs_errors(self, exc):
        assert issubclass(exc, FsError)

    def test_simulated_crash_is_not_an_fs_error(self):
        """A crash must never be swallowed by FS-level error handling."""
        assert not issubclass(SimulatedCrash, FsError)
        assert not issubclass(SimulatedCrash, DiskError)


class TestPayloads:
    def test_damaged_sector_carries_address(self):
        error = DamagedSectorError(42)
        assert error.address == 42
        assert "42" in str(error)

    def test_label_check_carries_details(self):
        error = LabelCheckError(7, b"want", b"got!")
        assert error.address == 7
        assert error.expected == b"want"
        assert error.actual == b"got!"
        assert "mismatch" in str(error)
