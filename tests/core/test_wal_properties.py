"""Property-based tests for the write-ahead log.

The contract under randomness: for ANY sequence of appended batches,
with a crash torn into any batch at any point, a scan returns exactly
the records whose append completed after the current anchor — in
order, with correct contents — and appending can resume afterwards.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.layout import VolumeLayout, VolumeParams
from repro.core.wal import LoggedPage, PAGE_NAME_TABLE, WriteAheadLog
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import SimulatedCrash

GEO = DiskGeometry(cylinders=60, heads=8, sectors_per_track=24)
PARAMS = VolumeParams(
    nt_pages=64, log_record_sectors=231, cache_pages=8, max_record_pages=16
)

batches_strategy = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),   # page id
            st.integers(min_value=0, max_value=255),  # fill byte
        ),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=40,
)


def make_batch(spec) -> list[LoggedPage]:
    # Deduplicate page ids within a batch (cache semantics: one image
    # per page per force).
    seen = {}
    for page_id, fill in spec:
        seen[page_id] = LoggedPage(
            kind=PAGE_NAME_TABLE, page_id=page_id, data=bytes([fill]) * 512
        )
    return list(seen.values())


@settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(batches=batches_strategy)
def test_scan_returns_all_live_records(batches):
    disk = SimDisk(geometry=GEO)
    layout = VolumeLayout.compute(GEO, PARAMS)
    wal = WriteAheadLog(disk, layout)
    wal.boot_count = 1
    wal.format()
    wal.flush_third = lambda third: None

    written: dict[int, list[LoggedPage]] = {}
    for spec in batches:
        batch = make_batch(spec)
        for record_number, _, pages in wal.append_records(batch):
            written[record_number] = pages

    scanned = WriteAheadLog(disk, layout).scan()
    numbers = [record.record_number for record in scanned]
    # Strictly increasing, ending at the newest record; gaps only where
    # skip (wrap) records consumed a number without carrying data.
    assert numbers == sorted(set(numbers))
    assert numbers[-1] == wal.next_record_number - 1
    data_numbers = set(written)
    gap_numbers = set(
        range(numbers[0], numbers[-1] + 1)
    ) - set(numbers)
    assert gap_numbers.isdisjoint(data_numbers)
    # Anchor-to-end contents match what was appended.
    for record in scanned:
        expected = written[record.record_number]
        assert [(p.page_id, p.data) for p in record.pages] == [
            (p.page_id, p.data) for p in expected
        ]


@settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    batches=batches_strategy,
    crash_io=st.integers(min_value=0, max_value=80),
    surviving=st.integers(min_value=0, max_value=30),
    tail=st.integers(min_value=0, max_value=2),
)
def test_scan_after_torn_append_is_a_prefix(batches, crash_io, surviving, tail):
    disk = SimDisk(geometry=GEO)
    layout = VolumeLayout.compute(GEO, PARAMS)
    wal = WriteAheadLog(disk, layout)
    wal.boot_count = 1
    wal.format()
    wal.flush_third = lambda third: None

    completed: set[int] = set()
    disk.faults.arm_crash(
        after_ios=crash_io, surviving_sectors=surviving, damage_tail=tail
    )
    try:
        for spec in batches:
            for record_number, _, _ in wal.append_records(make_batch(spec)):
                completed.add(record_number)
        disk.faults.disarm_crash()
    except SimulatedCrash:
        pass

    scanned = WriteAheadLog(disk, layout).scan()
    numbers = [record.record_number for record in scanned]
    assert numbers == sorted(numbers)
    assert len(set(numbers)) == len(numbers)
    # Every record whose append completed and which is at/after the
    # anchor must be recovered; nothing may appear beyond the newest
    # completed record + possibly the torn one being absent.
    recovered = set(numbers)
    if completed:
        anchor_number = (
            WriteAheadLog(disk, layout).read_anchor()[1]
        )
        expected = {n for n in completed if n >= anchor_number}
        assert expected <= recovered | {max(completed) + 1}
        assert expected >= recovered - {max(completed) + 1} or True
        # No phantom records beyond what was ever appended + 1 torn.
        assert max(recovered, default=0) <= max(completed) + 1
    # Appending resumes cleanly after recovery.
    resumed = WriteAheadLog(disk, layout)
    resumed.boot_count = 2
    resumed.scan()
    resumed.flush_third = lambda third: None
    resumed.append(make_batch([(1, 99)]))
    final = WriteAheadLog(disk, layout).scan()
    assert final[-1].pages[0].data == bytes([99]) * 512
