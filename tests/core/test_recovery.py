"""Unit tests for the recovery paths: root replication, log replay,
VAM reconstruction."""

from __future__ import annotations

import pytest

from repro.core.fsd import FSD
from repro.core.layout import RootPage, VolumeLayout, VolumeParams
from repro.core.recovery import read_root, write_root
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import CorruptMetadata

GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
PARAMS = VolumeParams(nt_pages=512, log_record_sectors=300, cache_pages=48)


def formatted_disk() -> SimDisk:
    disk = SimDisk(geometry=GEO)
    FSD.format(disk, PARAMS)
    return disk


class TestRootReplication:
    def test_roundtrip(self):
        disk = SimDisk(geometry=GEO)
        layout = VolumeLayout.compute(GEO, PARAMS)
        root = RootPage(params=PARAMS, total_sectors=GEO.total_sectors, boot_count=9)
        write_root(disk, layout, root)
        assert read_root(disk, layout) == root

    def test_copy_a_damaged_falls_back_and_repairs(self):
        disk = formatted_disk()
        layout = VolumeLayout.compute(GEO, PARAMS)
        disk.faults.damage(layout.root_a)
        root = read_root(disk, layout)
        assert root.boot_count == 0
        assert not disk.faults.is_damaged(layout.root_a)  # repaired

    def test_copy_b_damaged(self):
        disk = formatted_disk()
        layout = VolumeLayout.compute(GEO, PARAMS)
        disk.faults.damage(layout.root_b)
        assert read_root(disk, layout).boot_count == 0

    def test_both_damaged_is_massive_failure(self):
        disk = formatted_disk()
        layout = VolumeLayout.compute(GEO, PARAMS)
        disk.faults.damage(layout.root_a)
        disk.faults.damage(layout.root_b)
        with pytest.raises(CorruptMetadata):
            read_root(disk, layout)

    def test_diverging_copies_prefer_newer(self):
        disk = SimDisk(geometry=GEO)
        layout = VolumeLayout.compute(GEO, PARAMS)
        old = RootPage(params=PARAMS, total_sectors=GEO.total_sectors, boot_count=1)
        new = RootPage(params=PARAMS, total_sectors=GEO.total_sectors, boot_count=2)
        disk.write(layout.root_b, [old.encode(512)])
        disk.write(layout.root_a, [new.encode(512)])
        assert read_root(disk, layout).boot_count == 2


class TestMountPaths:
    def test_boot_count_increments_per_mount(self):
        disk = formatted_disk()
        fs = FSD.mount(disk)
        assert fs.boot_count == 1
        fs.unmount()
        fs = FSD.mount(disk)
        assert fs.boot_count == 2

    def test_clean_mount_loads_vam(self):
        disk = formatted_disk()
        fs = FSD.mount(disk)
        fs.create("a", b"x")
        fs.unmount()
        fs = FSD.mount(disk)
        assert fs.mount_report.vam_loaded
        assert fs.mount_report.vam_rebuild_entries == 0

    def test_crash_mount_rebuilds_vam(self):
        disk = formatted_disk()
        fs = FSD.mount(disk)
        fs.create("a", b"x")
        fs.force()
        fs.crash()
        fs = FSD.mount(disk)
        assert not fs.mount_report.vam_loaded
        assert fs.mount_report.vam_rebuild_entries == 1

    def test_stale_vam_save_not_loaded_after_crash(self):
        """A clean save from boot N must not satisfy a crash in boot
        N+1 (the VAM is stale by then)."""
        disk = formatted_disk()
        fs = FSD.mount(disk)
        fs.unmount()  # saves VAM for boot 1
        fs = FSD.mount(disk)  # boot 2; marks vam_saved = False
        fs.create("b", b"y")
        fs.force()
        fs.crash()
        fs = FSD.mount(disk)
        assert not fs.mount_report.vam_loaded
        assert fs.exists("b")

    def test_rebuilt_vam_matches_live_vam(self):
        disk = formatted_disk()
        fs = FSD.mount(disk)
        for index in range(30):
            fs.create(f"d/f{index:02d}", b"z" * (index * 40 + 1))
        fs.delete("d/f03")
        fs.delete("d/f17")
        fs.force()
        live_bits = bytes(fs.vam._bits)
        live_free = fs.vam.free_count
        fs.crash()
        recovered = FSD.mount(disk)
        assert bytes(recovered.vam._bits) == live_bits
        assert recovered.vam.free_count == live_free

    def test_replay_is_idempotent(self):
        """Mounting twice after the same crash replays to the same
        state (redo can be repeated)."""
        disk = formatted_disk()
        fs = FSD.mount(disk)
        for index in range(10):
            fs.create(f"d/f{index}", b"data")
        fs.force()
        fs.crash()
        first = FSD.mount(disk)
        names_first = [p.name for p in first.list()]
        first.crash()
        second = FSD.mount(disk)
        assert [p.name for p in second.list()] == names_first

    def test_mount_report_timing_fields(self):
        disk = formatted_disk()
        fs = FSD.mount(disk)
        fs.create("a", b"x")
        fs.force()
        fs.crash()
        fs = FSD.mount(disk)
        report = fs.mount_report
        assert report.total_ms > 0
        assert report.replay_ms >= 0
        assert report.log_records_replayed >= 1
        assert report.pages_replayed >= 1


class TestRecoveryIdempotence:
    """Recovery must be a fixed point: recovering an already-recovered
    volume changes nothing (modulo the boot count in the root pages)
    and reports exactly the same replay work."""

    def test_second_recovery_is_byte_identical(self):
        disk = formatted_disk()
        fs = FSD.mount(disk)
        for index in range(24):
            fs.create(f"idem/f{index:02d}", b"q" * (37 * index + 5))
        fs.delete("idem/f09")
        fs.force()
        fs.create("idem/unforced", b"tail work the crash loses")
        fs.crash()

        recovered = FSD.mount(disk)
        first_report = recovered.mount_report
        layout = recovered.layout
        # Crash the recovered volume before it performs any further
        # file work (mount itself already wrote its recovery I/O).
        recovered.crash()
        roots = {layout.root_a, layout.root_b}
        image = {
            address: data
            for address, data in disk._data.items()
            if address not in roots
        }
        labels = dict(disk._labels)
        damaged = set(disk.faults.damaged)

        again = FSD.mount(disk)
        second_report = again.mount_report
        again.crash()

        assert {
            address: data
            for address, data in disk._data.items()
            if address not in roots
        } == image
        assert dict(disk._labels) == labels
        assert set(disk.faults.damaged) == damaged

        assert second_report.boot_count == first_report.boot_count + 1
        for counter in (
            "log_records_replayed",
            "pages_replayed",
            "vam_loaded",
            "vam_rebuild_entries",
        ):
            assert getattr(second_report, counter) == getattr(
                first_report, counter
            ), counter
