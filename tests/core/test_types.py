"""Unit and property tests for FSD value types and codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.types import (
    FileKind,
    FileProperties,
    MAX_INLINE_RUNS,
    Run,
    RunTable,
    decode_continuation,
    decode_key,
    decode_main_entry,
    encode_continuation,
    encode_key,
    encode_main_entry,
    make_uid,
    name_prefix,
    validate_name,
)
from repro.errors import FsError


class TestRun:
    def test_end_and_contains(self):
        run = Run(10, 5)
        assert run.end == 15
        assert 10 in run and 14 in run
        assert 9 not in run and 15 not in run

    @pytest.mark.parametrize("start,count", [(-1, 5), (0, 0), (3, -2)])
    def test_invalid_rejected(self, start, count):
        with pytest.raises(ValueError):
            Run(start, count)


class TestRunTable:
    def test_total_sectors(self):
        table = RunTable([Run(0, 3), Run(10, 2)])
        assert table.total_sectors == 5

    def test_sector_of_page_across_runs(self):
        table = RunTable([Run(100, 3), Run(200, 2)])
        assert [table.sector_of_page(p) for p in range(5)] == [
            100, 101, 102, 200, 201,
        ]

    def test_sector_of_page_out_of_range(self):
        with pytest.raises(FsError):
            RunTable([Run(0, 2)]).sector_of_page(2)

    def test_extents_for_spans_runs(self):
        table = RunTable([Run(100, 3), Run(200, 4)])
        extents = table.extents_for(1, 4)
        assert extents == [Run(101, 2), Run(200, 2)]

    def test_extents_for_whole_file(self):
        table = RunTable([Run(5, 2), Run(9, 1)])
        assert table.extents_for(0, 3) == [Run(5, 2), Run(9, 1)]

    def test_append_coalesces_adjacent(self):
        table = RunTable()
        table.append(Run(10, 2))
        table.append(Run(12, 3))
        assert table.runs == [Run(10, 5)]

    def test_append_keeps_gaps(self):
        table = RunTable()
        table.append(Run(10, 2))
        table.append(Run(20, 1))
        assert len(table.runs) == 2

    def test_truncate_exact_boundary(self):
        table = RunTable([Run(0, 3), Run(10, 3)])
        freed = table.truncate_sectors(3)
        assert freed == [Run(10, 3)]
        assert table.runs == [Run(0, 3)]

    def test_truncate_mid_run(self):
        table = RunTable([Run(0, 6)])
        freed = table.truncate_sectors(2)
        assert freed == [Run(2, 4)]
        assert table.runs == [Run(0, 2)]
        assert table.total_sectors == 2

    def test_truncate_to_zero(self):
        table = RunTable([Run(0, 2), Run(5, 2)])
        freed = table.truncate_sectors(0)
        assert freed == [Run(0, 2), Run(5, 2)]
        assert table.runs == []

    def test_copy_is_shallow_safe(self):
        table = RunTable([Run(0, 1)])
        clone = table.copy()
        clone.append(Run(5, 1))
        assert len(table.runs) == 1


class TestNameValidation:
    def test_valid(self):
        assert validate_name("dir/file.txt") == b"dir/file.txt"

    @pytest.mark.parametrize("bad", ["", "x" * 65, "nul\x00name"])
    def test_invalid(self, bad):
        with pytest.raises(FsError):
            validate_name(bad)


class TestKeyCodec:
    def test_roundtrip(self):
        key = encode_key("a/b.txt", 3, 1)
        assert decode_key(key) == ("a/b.txt", 3, 1)

    def test_versions_sort_numerically(self):
        assert encode_key("f", 2) < encode_key("f", 10)
        assert encode_key("f", 255) < encode_key("f", 256)

    def test_chunks_follow_their_entry(self):
        main = encode_key("f", 1, 0)
        chunk = encode_key("f", 1, 1)
        next_version = encode_key("f", 2, 0)
        assert main < chunk < next_version

    def test_prefix_matches_all_versions(self):
        prefix = name_prefix("f")
        assert encode_key("f", 1).startswith(prefix)
        assert encode_key("f", 9).startswith(prefix)
        assert not encode_key("fx", 1).startswith(prefix)

    def test_out_of_range_version(self):
        with pytest.raises(FsError):
            encode_key("f", 70000)

    @given(
        name=st.text(
            alphabet=st.characters(
                blacklist_characters="\x00",
                min_codepoint=32,
                blacklist_categories=("Cs",),  # no surrogates
            ),
            min_size=1,
            max_size=20,
        ),
        version=st.integers(min_value=0, max_value=0xFFFF),
        chunk=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_roundtrip_property(self, name, version, chunk):
        if len(name.encode("utf-8")) > 64:
            return
        assert decode_key(encode_key(name, version, chunk)) == (
            name, version, chunk,
        )


class TestEntryCodecs:
    def _props(self, **overrides) -> FileProperties:
        base = dict(
            name="dir/file",
            version=2,
            uid=make_uid(3, 99),
            kind=FileKind.LOCAL,
            byte_size=12345,
            create_time_ms=100.5,
            last_used_ms=200.25,
            keep=4,
            leader_addr=777,
        )
        base.update(overrides)
        return FileProperties(**base)

    def test_main_entry_roundtrip(self):
        props = self._props()
        runs = RunTable([Run(778, 10), Run(900, 14)])
        value = encode_main_entry(props, runs)
        back, back_runs, total = decode_main_entry("dir/file", 2, value)
        assert back == props
        assert back_runs.runs == runs.runs
        assert total == 2

    def test_inline_run_cap(self):
        runs = RunTable([Run(i * 10, 1) for i in range(MAX_INLINE_RUNS + 5)])
        value = encode_main_entry(self._props(), runs)
        _, inline, total = decode_main_entry("dir/file", 2, value)
        assert len(inline.runs) == MAX_INLINE_RUNS
        assert total == MAX_INLINE_RUNS + 5

    def test_symlink_entry(self):
        props = self._props(kind=FileKind.SYMLINK, remote_target="server/x")
        value = encode_main_entry(props, RunTable())
        back, _, _ = decode_main_entry("dir/file", 2, value)
        assert back.kind == FileKind.SYMLINK
        assert back.remote_target == "server/x"

    def test_continuation_roundtrip(self):
        runs = [Run(5, 2), Run(50, 7)]
        assert decode_continuation(encode_continuation(runs)) == runs

    def test_with_updates(self):
        props = self._props()
        updated = props.with_updates(byte_size=1)
        assert updated.byte_size == 1
        assert props.byte_size == 12345  # original untouched


class TestUid:
    def test_unique_across_boots(self):
        assert make_uid(1, 5) != make_uid(2, 5)

    def test_unique_within_boot(self):
        assert make_uid(1, 5) != make_uid(1, 6)

    def test_sequence_masked_to_40_bits(self):
        assert make_uid(0, 1 << 41) == make_uid(0, 0)
