"""Unit tests for the FSD facade: the public file-system API."""

from __future__ import annotations

import pytest

from repro.core.types import FileKind
from repro.errors import FileNotFound, FsError, NotMounted, VolumeFull
from repro.workloads.generators import payload


class TestCreateReadWrite:
    def test_create_and_read(self, fsd):
        fsd.create("d/a.txt", b"hello")
        assert fsd.read(fsd.open("d/a.txt")) == b"hello"

    def test_empty_file(self, fsd):
        fsd.create("d/empty")
        handle = fsd.open("d/empty")
        assert handle.byte_size == 0
        assert fsd.read(handle) == b""

    def test_one_byte_file_costs_one_io_warm(self, fsd, disk):
        fsd.create("warm/first", b"x")
        writes_before = disk.stats.total_ios
        fsd.create("warm/second", b"y")
        assert disk.stats.total_ios - writes_before == 1

    def test_multi_sector_content(self, fsd):
        blob = payload(5_000, 1)
        fsd.create("d/big", blob)
        assert fsd.read(fsd.open("d/big")) == blob

    def test_ranged_read(self, fsd):
        blob = payload(3_000, 2)
        fsd.create("d/f", blob)
        handle = fsd.open("d/f")
        assert fsd.read(handle, 700, 900) == blob[700:1600]
        assert fsd.read(handle, 0, 1) == blob[:1]
        assert fsd.read(handle, 2_999, 1) == blob[2_999:]

    def test_read_beyond_eof_rejected(self, fsd):
        fsd.create("d/f", b"abc")
        with pytest.raises(FsError):
            fsd.read(fsd.open("d/f"), 0, 4)
        with pytest.raises(FsError):
            fsd.read(fsd.open("d/f"), -1, 1)

    def test_overwrite_within_file(self, fsd):
        fsd.create("d/f", payload(2_000, 3))
        handle = fsd.open("d/f")
        fsd.write(handle, 100, b"PATCH")
        data = fsd.read(fsd.open("d/f"))
        assert data[100:105] == b"PATCH"
        assert data[:100] == payload(2_000, 3)[:100]
        assert data[105:] == payload(2_000, 3)[105:]

    def test_extend_by_writing_past_eof(self, fsd):
        fsd.create("d/f", b"start")
        handle = fsd.open("d/f")
        fsd.write(handle, 5, b"-extended" * 300)
        data = fsd.read(fsd.open("d/f"))
        assert data.startswith(b"start-extended")
        assert len(data) == 5 + 9 * 300

    def test_sparse_extension_zero_filled(self, fsd):
        fsd.create("d/f", b"ab")
        handle = fsd.open("d/f")
        fsd.write(handle, 1_000, b"tail")
        data = fsd.read(fsd.open("d/f"))
        assert data[2:1_000] == b"\x00" * 998
        assert data[1_000:] == b"tail"

    def test_unaligned_boundary_writes(self, fsd):
        blob = payload(1_500, 4)
        fsd.create("d/f", blob)
        handle = fsd.open("d/f")
        fsd.write(handle, 510, b"ABCD")  # straddles sector 0/1 boundary
        expected = blob[:510] + b"ABCD" + blob[514:]
        assert fsd.read(fsd.open("d/f")) == expected


class TestVersions:
    def test_create_makes_next_version(self, fsd):
        fsd.create("d/v", b"one", keep=0)
        fsd.create("d/v", b"two", keep=0)
        assert fsd.versions("d/v") == [1, 2]
        assert fsd.read(fsd.open("d/v")) == b"two"
        assert fsd.read(fsd.open("d/v", version=1)) == b"one"

    def test_keep_trims_old_versions(self, fsd):
        for index in range(5):
            fsd.create("d/k", payload(100, index), keep=2)
        assert fsd.versions("d/k") == [4, 5]

    def test_keep_zero_retains_all(self, fsd):
        for _ in range(4):
            fsd.create("d/all", b"x", keep=0)
        assert len(fsd.versions("d/all")) == 4

    def test_set_keep_trims(self, fsd):
        for _ in range(4):
            fsd.create("d/s", b"x", keep=0)
        fsd.set_keep("d/s", 1)
        assert fsd.versions("d/s") == [4]

    def test_trimmed_version_pages_freed_at_commit(self, fsd):
        first = fsd.create("d/t", payload(600, 0), keep=1)
        sector = first.runs.runs[0].start
        fsd.create("d/t", payload(600, 1), keep=1)
        fsd.force()
        assert fsd.vam.is_free(sector)


class TestDeleteListRename:
    def test_delete_latest(self, fsd):
        fsd.create("d/del", b"x")
        fsd.delete("d/del")
        assert not fsd.exists("d/del")
        with pytest.raises(FileNotFound):
            fsd.open("d/del")

    def test_delete_specific_version(self, fsd):
        fsd.create("d/dv", b"one", keep=0)
        fsd.create("d/dv", b"two", keep=0)
        fsd.delete("d/dv", version=1)
        assert fsd.versions("d/dv") == [2]

    def test_delete_missing(self, fsd):
        with pytest.raises(FileNotFound):
            fsd.delete("ghost")

    def test_list_prefix(self, fsd):
        for name in ("a/1", "a/2", "b/3"):
            fsd.create(name, b"x")
        assert [p.name for p in fsd.list("a/")] == ["a/1", "a/2"]
        assert len(fsd.list()) == 3

    def test_list_needs_no_io_when_warm(self, fsd, disk):
        for index in range(10):
            fsd.create(f"d/l{index}", b"x")
        ios_before = disk.stats.total_ios
        props = fsd.list("d/")
        assert disk.stats.total_ios == ios_before
        assert len(props) == 10
        assert all(p.byte_size == 1 for p in props)

    def test_rename(self, fsd):
        fsd.create("d/old", b"content")
        fsd.rename("d/old", "d/new")
        assert not fsd.exists("d/old")
        assert fsd.read(fsd.open("d/new")) == b"content"

    def test_rename_then_read_verifies_new_leader(self, fsd):
        fsd.create("d/old", payload(900, 9))
        fsd.rename("d/old", "d/renamed")
        fsd.force()
        fsd.unmount()
        import repro.core.fsd as fsd_mod

        remounted = fsd_mod.FSD.mount(fsd.disk)
        assert remounted.read(remounted.open("d/renamed")) == payload(900, 9)

    def test_truncate(self, fsd):
        fsd.create("d/t", payload(4_000, 5))
        handle = fsd.open("d/t")
        fsd.truncate(handle, 1_000)
        assert fsd.read(fsd.open("d/t")) == payload(4_000, 5)[:1_000]

    def test_truncate_cannot_grow(self, fsd):
        fsd.create("d/t", b"ab")
        with pytest.raises(FsError):
            fsd.truncate(fsd.open("d/t"), 10)

    def test_truncate_frees_sectors_at_commit(self, fsd):
        fsd.create("d/t", payload(4_000, 5))
        handle = fsd.open("d/t")
        freed_sector = handle.runs.runs[-1].end - 1
        fsd.truncate(handle, 512)
        fsd.force()
        assert fsd.vam.is_free(freed_sector)


class TestKinds:
    def test_cached_file_open_updates_last_used(self, fsd):
        fsd.create("remote/c", b"df", kind=FileKind.CACHED)
        fsd.force()
        fsd.clock.advance_idle(1_000)
        before = fsd.name_table.get("remote/c", 1)[0].last_used_ms
        fsd.open("remote/c")
        after = fsd.name_table.get("remote/c", 1)[0].last_used_ms
        assert after > before

    def test_local_open_does_not_dirty(self, fsd):
        fsd.create("local/f", b"x")
        fsd.force()
        assert fsd.cache.pending_log_pages() == 0
        fsd.open("local/f")
        assert fsd.cache.pending_log_pages() == 0

    def test_symlink_entry(self, fsd):
        fsd.create(
            "links/l", kind=FileKind.SYMLINK, remote_target="server/real"
        )
        props = fsd.open("links/l").props
        assert props.kind == FileKind.SYMLINK
        assert props.remote_target == "server/real"


class TestLeaderChecking:
    def test_piggyback_read_verifies(self, fsd, disk):
        fsd.create("d/p", payload(700, 7))
        fsd.force()
        fsd.unmount()
        from repro.core.fsd import FSD as FSDClass

        fs = FSDClass.mount(disk)
        handle = fs.open("d/p")
        assert not handle.leader_verified
        fs.read(handle, 0, 100)
        assert handle.leader_verified
        assert fs.ops.leader_piggyback_reads == 1

    def test_wild_write_on_leader_detected(self, fsd, disk):
        from repro.errors import CorruptMetadata
        from repro.core.fsd import FSD as FSDClass

        fsd.create("d/w", payload(700, 8))
        fsd.force()
        fsd.unmount()
        fs = FSDClass.mount(disk)
        handle = fs.open("d/w")
        disk.poke(handle.props.leader_addr, b"\xbe\xef" * 100)
        with pytest.raises(CorruptMetadata):
            fs.read(handle, 0, 10)

    def test_leader_refreshed_on_extension(self, fsd):
        fsd.create("d/e", b"small")
        handle = fsd.open("d/e")
        fsd.write(handle, 5, payload(5_000, 3))  # forces new runs
        # The cached leader matches the new run table.
        fresh = fsd.open("d/e")
        fsd.read(fresh, 0, 10)  # verifies against cache copy
        assert fresh.leader_verified


class TestLifecycle:
    def test_unmounted_volume_rejects_ops(self, fsd):
        fsd.unmount()
        with pytest.raises(NotMounted):
            fsd.create("x", b"y")
        with pytest.raises(NotMounted):
            fsd.list()

    def test_crashed_volume_rejects_ops(self, fsd):
        fsd.crash()
        with pytest.raises(NotMounted):
            fsd.open("x")

    def test_volume_full(self, fsd):
        with pytest.raises(VolumeFull):
            fsd.create("d/huge", b"", keep=0)
            # allocate more sectors than the disk has
            handle = fsd.open("d/huge")
            fsd.write(handle, 0, payload(fsd.disk.geometry.total_bytes, 1))

    def test_mounted_property(self, fsd):
        assert fsd.mounted
        fsd.unmount()
        assert not fsd.mounted

    def test_metadata_io_stats_shape(self, fsd):
        fsd.create("d/s", b"x")
        fsd.force()
        stats = fsd.metadata_io_stats()
        assert stats["log_records"] >= 1
        assert stats["pages_logged"] >= 1
        assert stats["forces"] >= 1
