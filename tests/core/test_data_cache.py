"""The data-page buffer cache: unit behavior, FSD integration, and
the strict-invalidation edges (truncate, delete/recreate, rename,
crash replay, read-ahead racing a write)."""

from __future__ import annotations

import pytest

from repro.core.data_cache import DataPageCache
from repro.core.fsd import FSD
from repro.disk.disk import SimDisk
from repro.workloads.generators import payload
from tests.conftest import TEST_FSD_PARAMS, TEST_GEOMETRY

SECTOR = 512


@pytest.fixture
def cached_fsd(disk: SimDisk) -> FSD:
    FSD.format(disk, TEST_FSD_PARAMS)
    return FSD.mount(disk, data_cache_pages=64, readahead_pages=8)


def paged_read(fs: FSD, handle, pages: int) -> bytes:
    """Read ``pages`` sequential 512-byte pages, one call each (the
    cached-client access pattern that triggers read-ahead)."""
    out = b""
    for page in range(pages):
        length = min(SECTOR, handle.byte_size - page * SECTOR)
        out += fs.read(handle, page * SECTOR, length)
    return out


# ----------------------------------------------------------------------
# unit behavior
# ----------------------------------------------------------------------
class TestUnit:
    def test_disabled_cache_is_inert(self):
        dc = DataPageCache(capacity_pages=0)
        assert not dc.enabled
        dc.put(7, b"x" * SECTOR)
        assert dc.lookup(7) is None
        assert dc.hits == 0 and dc.misses == 0
        assert not dc.note_read(1, 1, 1)

    def test_lookup_counts_and_lru_eviction(self):
        dc = DataPageCache(capacity_pages=2)
        dc.put(1, b"a" * SECTOR)
        dc.put(2, b"b" * SECTOR)
        assert dc.lookup(1) == b"a" * SECTOR  # 1 is now most recent
        dc.put(3, b"c" * SECTOR)              # evicts 2, not 1
        assert dc.lookup(2) is None
        assert dc.lookup(1) is not None
        assert dc.evictions == 1
        assert dc.hits == 2 and dc.misses == 1
        assert dc.hit_ratio == pytest.approx(2 / 3)

    def test_short_sector_padded(self):
        dc = DataPageCache(capacity_pages=4, sector_bytes=SECTOR)
        dc.put(9, b"tail")
        assert dc.lookup(9) == b"tail" + b"\x00" * (SECTOR - 4)

    def test_sequential_detection(self):
        dc = DataPageCache(capacity_pages=4)
        assert not dc.note_read(uid=5, first_page=0, page_count=2)
        assert dc.note_read(uid=5, first_page=2, page_count=2)
        assert not dc.note_read(uid=5, first_page=7, page_count=1)  # jump
        assert dc.note_read(uid=5, first_page=8, page_count=1)
        dc.forget_file(5)
        assert not dc.note_read(uid=5, first_page=9, page_count=1)

    def test_readahead_accuracy_tracking(self):
        dc = DataPageCache(capacity_pages=8)
        dc.put(1, b"x" * SECTOR, prefetched=True)
        dc.put(2, b"y" * SECTOR, prefetched=True)
        assert dc.readahead_issued == 2
        assert dc.lookup(1) is not None
        assert dc.readahead_used == 1
        assert dc.readahead_accuracy == pytest.approx(0.5)
        # a second demand hit on the same page counts once
        assert dc.lookup(1) is not None
        assert dc.readahead_used == 1

    def test_invalidate_and_discard(self):
        dc = DataPageCache(capacity_pages=8)
        for address in range(4):
            dc.put(address, bytes([address]) * SECTOR)
        assert dc.invalidate(1, 2) == 2
        assert dc.lookup(1) is None and dc.lookup(2) is None
        assert dc.lookup(0) is not None
        dc.discard_all()
        assert len(dc) == 0

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            DataPageCache(capacity_pages=-1)
        with pytest.raises(ValueError):
            DataPageCache(capacity_pages=4, readahead_pages=-1)


# ----------------------------------------------------------------------
# FSD integration
# ----------------------------------------------------------------------
class TestFsdIntegration:
    def test_cache_off_by_default(self, fsd):
        assert not fsd.data_cache.enabled
        fsd.create("d/f", payload(3_000, 1))
        assert fsd.read(fsd.open("d/f")) == payload(3_000, 1)
        assert fsd.data_cache.hits == 0 and fsd.data_cache.misses == 0

    def test_cached_reads_match_platter(self, cached_fsd):
        blob = payload(9_000, 7)
        cached_fsd.create("d/f", blob)
        handle = cached_fsd.open("d/f")
        assert cached_fsd.read(handle) == blob           # warm (write-through)
        assert cached_fsd.read(handle, 700, 1500) == blob[700:2200]
        assert cached_fsd.read(handle, 0, 1) == blob[:1]

    def test_cold_sequential_read_uses_readahead(self, disk):
        FSD.format(disk, TEST_FSD_PARAMS)
        fs = FSD.mount(disk, data_cache_pages=64, readahead_pages=8)
        blob = payload(12 * SECTOR, 3)
        fs.create("d/seq", blob)
        fs.force()
        fs.unmount()
        fs = FSD.mount(disk, data_cache_pages=64, readahead_pages=8)
        handle = fs.open("d/seq")
        assert paged_read(fs, handle, 12) == blob
        assert fs.data_cache.readahead_issued > 0
        assert fs.data_cache.readahead_used == fs.data_cache.readahead_issued
        assert fs.data_cache.hits >= fs.data_cache.readahead_used

    def test_cached_content_identical_to_uncached_mount(self, disk):
        FSD.format(disk, TEST_FSD_PARAMS)
        fs = FSD.mount(disk, data_cache_pages=64)
        blob = payload(20 * SECTOR + 37, 11)
        fs.create("d/x", blob)
        fs.unmount()
        cold = FSD.mount(disk)                     # cache off
        expected = cold.read(cold.open("d/x"))
        cold.unmount()
        warm = FSD.mount(disk, data_cache_pages=64, readahead_pages=8)
        handle = warm.open("d/x")
        assert paged_read(warm, handle, 21) == expected == blob
        assert warm.read(handle) == expected       # fully cached pass

    def test_write_through_population(self, cached_fsd):
        blob = payload(4 * SECTOR, 5)
        handle = cached_fsd.create("d/w", blob)
        reads_before = cached_fsd.io.stats.reads
        assert cached_fsd.read(handle) == blob
        # every page was populated by the write; the read does no I/O
        assert cached_fsd.io.stats.reads == reads_before


# ----------------------------------------------------------------------
# invalidation edges
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_truncate_then_read(self, cached_fsd):
        blob = payload(8 * SECTOR, 2)
        handle = cached_fsd.create("d/t", blob)
        assert cached_fsd.read(handle) == blob
        cached_fsd.truncate(handle, 3 * SECTOR)
        freed = [
            address
            for run in handle.runs.runs
            for address in range(run.start, run.end)
        ]
        assert cached_fsd.read(handle) == blob[: 3 * SECTOR]
        # regrow with different bytes: no stale image may resurface
        tail = payload(5 * SECTOR, 9)
        cached_fsd.write(handle, 3 * SECTOR, tail)
        assert (
            cached_fsd.read(handle) == blob[: 3 * SECTOR] + tail
        ), freed

    def test_delete_invalidates_freed_sectors(self, cached_fsd):
        blob = payload(6 * SECTOR, 4)
        handle = cached_fsd.create("d/del", blob)
        assert cached_fsd.read(handle) == blob
        freed = [
            address
            for run in handle.runs.runs
            for address in range(run.start, run.end)
        ]
        cached_fsd.delete("d/del")
        for address in freed:
            assert not cached_fsd.data_cache.contains(address)

    def test_delete_then_recreate_same_name(self, cached_fsd):
        old = payload(6 * SECTOR, 4)
        new = payload(6 * SECTOR, 8)
        cached_fsd.create("d/name", old)
        assert cached_fsd.read(cached_fsd.open("d/name")) == old
        cached_fsd.delete("d/name")
        cached_fsd.force()          # freed sectors become allocatable
        cached_fsd.create("d/name", new)
        assert cached_fsd.read(cached_fsd.open("d/name")) == new

    def test_rename_then_read(self, cached_fsd):
        blob = payload(6 * SECTOR, 6)
        handle = cached_fsd.create("d/old", blob)
        assert cached_fsd.read(handle) == blob
        cached_fsd.rename("d/old", "d/new")
        assert cached_fsd.read(cached_fsd.open("d/new")) == blob

    def test_read_after_crash_replay(self, disk):
        FSD.format(disk, TEST_FSD_PARAMS)
        fs = FSD.mount(disk, data_cache_pages=64, readahead_pages=8)
        blob = payload(8 * SECTOR, 13)
        fs.create("d/crash", blob)
        fs.force()
        assert fs.read(fs.open("d/crash")) == blob   # cache is warm
        assert len(fs.data_cache) > 0
        fs.crash()
        assert len(fs.data_cache) == 0               # discarded at crash
        recovered = FSD.mount(disk, data_cache_pages=64, readahead_pages=8)
        assert len(recovered.data_cache) == 0        # mounts start cold
        handle = recovered.open("d/crash")
        assert paged_read(recovered, handle, 8) == blob

    def test_readahead_racing_concurrent_write(self, disk):
        FSD.format(disk, TEST_FSD_PARAMS)
        fs = FSD.mount(disk, data_cache_pages=64, readahead_pages=16)
        blob = payload(20 * SECTOR, 1)
        fs.create("d/race", blob)
        fs.force()
        fs.unmount()
        fs = FSD.mount(disk, data_cache_pages=64, readahead_pages=16)
        handle = fs.open("d/race")
        # two sequential page reads trigger read-ahead over the rest
        assert fs.read(handle, 0, SECTOR) == blob[:SECTOR]
        assert fs.read(handle, SECTOR, SECTOR) == blob[SECTOR : 2 * SECTOR]
        assert fs.data_cache.readahead_issued > 0
        # overwrite a page inside the prefetched range, then read it:
        # the write-through copy must win over the prefetched image
        fresh = payload(SECTOR, 99)
        fs.write(handle, 5 * SECTOR, fresh)
        assert fs.read(handle, 5 * SECTOR, SECTOR) == fresh
        expected = blob[: 5 * SECTOR] + fresh + blob[6 * SECTOR :]
        assert fs.read(handle) == expected
