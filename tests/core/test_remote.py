"""Tests for the remote file server and the caching layer."""

from __future__ import annotations

import pytest

from repro.core.remote import (
    CachingFS,
    RemoteFileServer,
    parse_ref,
)
from repro.core.types import FileKind
from repro.errors import FileNotFound, FsError
from repro.workloads.generators import payload


@pytest.fixture
def server() -> RemoteFileServer:
    server = RemoteFileServer("ivy")
    server.store("cedar/defs.mesa", payload(2_000, 1))
    server.store("cedar/impl.mesa", payload(3_000, 2))
    return server


@pytest.fixture
def caching(fsd, server) -> CachingFS:
    return CachingFS(fsd, {server.name: server})


class TestServer:
    def test_store_and_fetch(self, server):
        version, data = server.fetch("cedar/defs.mesa")
        assert version == 1
        assert data == payload(2_000, 1)

    def test_versions_accumulate(self, server):
        assert server.store("cedar/defs.mesa", b"v2") == 2
        assert server.highest_version("cedar/defs.mesa") == 2
        assert server.fetch("cedar/defs.mesa", 1)[1] == payload(2_000, 1)
        assert server.fetch("cedar/defs.mesa", 2)[1] == b"v2"

    def test_missing(self, server):
        with pytest.raises(FileNotFound):
            server.fetch("nope")
        with pytest.raises(FileNotFound):
            server.fetch("cedar/defs.mesa", 9)
        assert server.highest_version("nope") is None


class TestRefs:
    def test_parse(self):
        assert parse_ref("ivy:cedar/defs.mesa") == ("ivy", "cedar/defs.mesa")

    @pytest.mark.parametrize("bad", ["noserver", ":path", "server:", ""])
    def test_bad_refs(self, bad):
        with pytest.raises(FsError):
            parse_ref(bad)


class TestCaching:
    def test_first_open_fetches(self, caching, server):
        handle = caching.open_remote("ivy:cedar/defs.mesa")
        assert caching.read(handle) == payload(2_000, 1)
        assert caching.stats.misses == 1
        assert server.fetches == 1
        assert handle.props.kind == FileKind.CACHED

    def test_second_open_hits(self, caching, server):
        caching.open_remote("ivy:cedar/defs.mesa")
        handle = caching.open_remote("ivy:cedar/defs.mesa")
        assert caching.stats.hits == 1
        assert server.fetches == 1  # no second network round trip
        assert caching.read(handle) == payload(2_000, 1)

    def test_hit_updates_last_used(self, caching, fsd):
        first = caching.open_remote("ivy:cedar/defs.mesa")
        fsd.force()
        fsd.clock.advance_idle(2_000)
        again = caching.open_remote("ivy:cedar/defs.mesa")
        assert again.props.last_used_ms > first.props.last_used_ms

    def test_new_remote_version_fetched_alongside(self, caching, server):
        caching.open_remote("ivy:cedar/defs.mesa")
        server.store("cedar/defs.mesa", b"fresh")
        handle = caching.open_remote("ivy:cedar/defs.mesa")
        assert caching.read(handle) == b"fresh"
        assert caching.stats.misses == 2
        # Old version still cached locally (immutable).
        assert len(caching.cached_entries()) == 2

    def test_unknown_server(self, caching):
        with pytest.raises(FileNotFound):
            caching.open_remote("mars:x")

    def test_unknown_remote_file(self, caching):
        with pytest.raises(FileNotFound):
            caching.open_remote("ivy:ghost")

    def test_network_time_charged(self, caching, fsd):
        before = fsd.clock.now_ms
        caching.open_remote("ivy:cedar/impl.mesa")
        assert fsd.clock.now_ms - before >= 3_000 / 300.0


class TestLinks:
    def test_link_resolution(self, caching, fsd):
        caching.make_link("defs.mesa", "ivy:cedar/defs.mesa")
        handle = caching.open("defs.mesa")
        assert handle.props.kind == FileKind.CACHED
        assert caching.read(handle) == payload(2_000, 1)

    def test_read_link(self, caching):
        caching.make_link("defs.mesa", "ivy:cedar/defs.mesa")
        assert caching.read_link("defs.mesa") == "ivy:cedar/defs.mesa"

    def test_read_link_on_regular_file(self, caching, fsd):
        fsd.create("plain", b"x")
        with pytest.raises(FsError):
            caching.read_link("plain")

    def test_open_local_passthrough(self, caching, fsd):
        fsd.create("local.txt", b"here")
        handle = caching.open("local.txt")
        assert caching.read(handle) == b"here"
        assert caching.stats.misses == 0

    def test_bad_link_target_rejected_early(self, caching):
        with pytest.raises(FsError):
            caching.make_link("bad", "no-colon")


class TestFlushing:
    def test_lru_flush(self, caching, server, fsd):
        server.store("a", payload(1_000, 10))
        server.store("b", payload(1_000, 11))
        server.store("c", payload(1_000, 12))
        caching.open_remote("ivy:a")
        fsd.clock.advance_idle(100)
        caching.open_remote("ivy:b")
        fsd.clock.advance_idle(100)
        caching.open_remote("ivy:c")
        fsd.clock.advance_idle(100)
        caching.open_remote("ivy:a")  # refresh a's last-used
        released = caching.flush(bytes_needed=1_500)
        assert released >= 1_500
        remaining = {
            h.props.remote_target for h in caching.cached_entries()
        }
        # b was least recently used, then c; a stays.
        assert any(target.startswith("ivy:a") for target in remaining)
        assert not any(target.startswith("ivy:b") for target in remaining)

    def test_flush_survives_crash(self, caching, server, fsd, disk):
        from repro.core.fsd import FSD

        caching.open_remote("ivy:cedar/defs.mesa")
        caching.flush(bytes_needed=10_000)
        fsd.force()
        fsd.crash()
        recovered = FSD.mount(disk)
        fresh = CachingFS(recovered, {server.name: server})
        assert fresh.cached_entries() == []
        # Opening again refetches cleanly.
        handle = fresh.open_remote("ivy:cedar/defs.mesa")
        assert fresh.read(handle) == payload(2_000, 1)


class TestFlushEdges:
    def test_flush_zero_bytes_is_noop(self, caching):
        caching.open_remote("ivy:cedar/defs.mesa")
        assert caching.flush(bytes_needed=0) == 0
        assert len(caching.cached_entries()) == 1

    def test_flush_more_than_cached_releases_everything(self, caching):
        caching.open_remote("ivy:cedar/defs.mesa")
        caching.open_remote("ivy:cedar/impl.mesa")
        released = caching.flush(bytes_needed=10**9)
        assert released == 5_000  # both copies
        assert caching.cached_entries() == []

    def test_flush_on_empty_cache(self, caching):
        assert caching.flush(bytes_needed=1_000) == 0
