"""Unit and property tests for the Volume Allocation Map."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.layout import VolumeLayout, VolumeParams
from repro.core.types import Run
from repro.core.vam import VolumeAllocationMap
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import CorruptMetadata, FsError


class TestBitmap:
    def test_fresh_map_all_free(self):
        vam = VolumeAllocationMap(100)
        assert vam.free_count == 100
        assert all(vam.is_free(s) for s in range(100))

    def test_mark_allocated_and_free(self):
        vam = VolumeAllocationMap(100)
        vam.mark_allocated(Run(10, 5))
        assert vam.free_count == 95
        assert not vam.is_free(12)
        vam.mark_free(Run(10, 5))
        assert vam.free_count == 100
        assert vam.is_free(12)

    def test_double_allocation_is_corruption(self):
        vam = VolumeAllocationMap(100)
        vam.mark_allocated(Run(10, 5))
        with pytest.raises(CorruptMetadata):
            vam.mark_allocated(Run(12, 2))

    def test_double_free_is_corruption(self):
        vam = VolumeAllocationMap(100)
        with pytest.raises(CorruptMetadata):
            vam.mark_free(Run(10, 1))

    def test_out_of_range(self):
        vam = VolumeAllocationMap(100)
        with pytest.raises(FsError):
            vam.is_free(100)

    def test_padding_bits_not_free(self):
        """Sectors past total (bitmap padding) stay allocated."""
        vam = VolumeAllocationMap(13)  # not a multiple of 8
        vam.mark_allocated(Run(0, 13))
        assert vam.free_count == 0


class TestShadow:
    def test_shadow_defers_freeing(self):
        vam = VolumeAllocationMap(100)
        vam.mark_allocated(Run(10, 5))
        vam.shadow_free(Run(10, 5))
        assert not vam.is_free(10)  # not yet
        assert vam.shadow_sectors == 5
        vam.commit_shadow()
        assert vam.is_free(10)
        assert vam.shadow_sectors == 0

    def test_commit_empty_shadow(self):
        VolumeAllocationMap(10).commit_shadow()  # no error


class TestFindFreeRun:
    def test_ascending_finds_first_fit(self):
        vam = VolumeAllocationMap(64)
        vam.mark_allocated(Run(0, 10))
        run = vam.find_free_run(0, 64, 5, ascending=True)
        assert run == Run(10, 5)

    def test_ascending_partial(self):
        vam = VolumeAllocationMap(64)
        vam.mark_allocated(Run(0, 10))
        vam.mark_allocated(Run(13, 51))
        run = vam.find_free_run(0, 64, 8, ascending=True)
        assert run == Run(10, 3)

    def test_descending(self):
        vam = VolumeAllocationMap(64)
        vam.mark_allocated(Run(60, 4))
        run = vam.find_free_run(0, 64, 5, ascending=False)
        assert run == Run(55, 5)

    def test_no_space(self):
        vam = VolumeAllocationMap(16)
        vam.mark_allocated(Run(0, 16))
        assert vam.find_free_run(0, 16, 1) is None
        assert vam.find_free_run(0, 16, 1, ascending=False) is None

    def test_window_respected(self):
        vam = VolumeAllocationMap(64)
        run = vam.find_free_run(20, 30, 100, ascending=True)
        assert run is not None
        assert run.start >= 20 and run.end <= 30

    def test_bad_want(self):
        with pytest.raises(FsError):
            VolumeAllocationMap(8).find_free_run(0, 8, 0)

    @given(
        allocated=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=250),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=20,
        ),
        want=st.integers(min_value=1, max_value=30),
        ascending=st.booleans(),
    )
    def test_found_runs_are_really_free(self, allocated, want, ascending):
        vam = VolumeAllocationMap(256)
        taken = set()
        for start, count in allocated:
            run = Run(start, min(count, 256 - start))
            if any(s in taken for s in range(run.start, run.end)):
                continue
            vam.mark_allocated(run)
            taken.update(range(run.start, run.end))
        run = vam.find_free_run(0, 256, want, ascending=ascending)
        if run is None:
            # no free sector at all
            assert len(taken) == 256
        else:
            assert run.count <= want
            assert all(vam.is_free(s) for s in range(run.start, run.end))
            # maximality: a free neighbour on the search side would have
            # been included unless the length cap hit first
            if run.count < want:
                if ascending:
                    assert run.end == 256 or not vam.is_free(run.end)
                else:
                    assert run.start == 0 or not vam.is_free(run.start - 1)


class TestSaveLoad:
    GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
    PARAMS = VolumeParams(nt_pages=512, log_record_sectors=300)

    def _setup(self):
        disk = SimDisk(geometry=self.GEO)
        layout = VolumeLayout.compute(self.GEO, self.PARAMS)
        vam = VolumeAllocationMap(self.GEO.total_sectors)
        for run in layout.metadata_runs():
            vam.mark_allocated(run)
        vam.mark_allocated(Run(layout.small_area.start, 37))
        return disk, layout, vam

    def test_roundtrip(self):
        disk, layout, vam = self._setup()
        vam.save(disk, layout, boot_count=5)
        loaded = VolumeAllocationMap(self.GEO.total_sectors)
        assert loaded.load(disk, layout, expect_boot_count=5)
        assert loaded.free_count == vam.free_count
        assert loaded._bits == vam._bits

    def test_stale_boot_count_rejected(self):
        disk, layout, vam = self._setup()
        vam.save(disk, layout, boot_count=5)
        loaded = VolumeAllocationMap(self.GEO.total_sectors)
        assert not loaded.load(disk, layout, expect_boot_count=6)

    def test_damaged_save_rejected(self):
        disk, layout, vam = self._setup()
        vam.save(disk, layout, boot_count=5)
        disk.faults.damage(layout.vam_start + 1)
        loaded = VolumeAllocationMap(self.GEO.total_sectors)
        assert not loaded.load(disk, layout, expect_boot_count=5)

    def test_missing_save_rejected(self):
        disk, layout, _ = self._setup()
        loaded = VolumeAllocationMap(self.GEO.total_sectors)
        assert not loaded.load(disk, layout, expect_boot_count=0)

    def test_cannot_save_with_shadow(self):
        disk, layout, vam = self._setup()
        vam.shadow_free(Run(layout.small_area.start, 1))
        with pytest.raises(FsError):
            vam.save(disk, layout, boot_count=1)
