"""Background checkpointer: stall elimination, incremental REDO,
idempotence of the install/anchor window, and scheduler yielding."""

from __future__ import annotations

import pytest

from repro.core.fsd import FSD
from repro.disk.disk import SimDisk
from repro.disk.sched import IoRequest, IoScheduler
from repro.harness.scenarios import SMALL
from repro.obs import Observer
from repro.workloads.generators import payload
from repro.workloads.traffic import TrafficConfig, TrafficEngine


def _volume(checkpoint_interval_ms=None, obs=None):
    disk = SimDisk(geometry=SMALL.geometry)
    FSD.format(disk, SMALL.fsd_params)
    fs = FSD.mount(
        disk, obs=obs, checkpoint_interval_ms=checkpoint_interval_ms
    )
    return disk, fs


class TestCheckpointerOff:
    def test_default_mount_has_no_checkpointer(self):
        _, fs = _volume()
        assert fs.checkpointer is None
        fs.unmount()

    def test_stall_accrues_without_checkpointer(self):
        obs = Observer()
        _, fs = _volume(obs=obs)
        for index in range(400):
            fs.create(f"w/f-{index:04d}", payload(1200, index))
        fs.unmount()
        snap = obs.snapshot()
        assert snap.counters["wal.third_entries"] > 0
        # The synchronous protocol pays write-home on the commit path.
        assert snap.counters["wal.stall_ms"] > 0
        assert fs.wal.stall_ms == pytest.approx(
            snap.counters["wal.stall_ms"]
        )


class TestCheckpointerTick:
    def test_tick_installs_and_advances_anchor(self):
        obs = Observer()
        _, fs = _volume(checkpoint_interval_ms=1e12, obs=obs)
        for index in range(20):
            fs.create(f"w/f-{index:02d}", payload(900, index))
        fs.force()
        assert fs.wal.anchor_offset != fs.wal.write_offset
        written = fs.checkpointer.tick()
        assert written > 0
        assert fs.wal.anchor_offset == fs.wal.write_offset
        assert fs.wal.anchor_record_number == fs.wal.next_record_number
        snap = obs.snapshot()
        assert snap.counters["ckpt.pages_written"] == written
        assert snap.counters["ckpt.anchor_advances"] == 1
        assert snap.gauges["ckpt.lsn"] == fs.wal.anchor_record_number
        fs.unmount()

    def test_idle_tick_is_free(self):
        obs = Observer()
        _, fs = _volume(checkpoint_interval_ms=1e12, obs=obs)
        fs.create("one", payload(600, 1))
        fs.force()
        fs.checkpointer.tick()
        checkpoints = obs.snapshot().counters["wal.checkpoints"]
        assert fs.checkpointer.tick() == 0
        # No new anchor write: the volume was idle since the last tick.
        assert obs.snapshot().counters["wal.checkpoints"] == checkpoints
        fs.unmount()

    def test_checkpointed_state_survives_crash(self):
        disk, fs = _volume(checkpoint_interval_ms=1e12)
        for index in range(30):
            fs.create(f"keep/f-{index:02d}", payload(1500, index))
        fs.force()
        fs.checkpointer.tick()
        fs.crash()
        recovered = FSD.mount(disk)
        # Everything up to the checkpoint LSN is already home: redo has
        # nothing newer to replay.
        assert recovered.mount_report.log_records_replayed == 0
        for index in range(30):
            handle = recovered.open(f"keep/f-{index:02d}")
            assert recovered.read(handle, 0, 1500) == payload(1500, index)
        recovered.unmount()

    def test_crash_between_install_and_anchor_is_idempotent(self):
        """The mid-checkpoint window: home writes durable, anchor not
        yet advanced.  Recovery replays the still-anchored records over
        the already-installed pages — redo must be idempotent."""
        disk, fs = _volume(checkpoint_interval_ms=1e12)
        for index in range(30):
            fs.create(f"keep/f-{index:02d}", payload(1500, index))
        fs.force()
        # First half of a checkpoint only: install every logged image
        # and make it durable, but crash before the anchor advances.
        fs.cache.flush_all_home()
        fs.io.barrier()
        fs.crash()
        recovered = FSD.mount(disk)
        assert recovered.mount_report.log_records_replayed > 0
        for index in range(30):
            handle = recovered.open(f"keep/f-{index:02d}")
            assert recovered.read(handle, 0, 1500) == payload(1500, index)
        recovered.unmount()

    def test_unmount_removes_timer(self):
        disk, fs = _volume(checkpoint_interval_ms=500.0)
        fs.create("one", payload(600, 1))
        fs.unmount()
        assert disk.clock.next_timer_due_ms() is None

    def test_crash_removes_timer(self):
        disk, fs = _volume(checkpoint_interval_ms=500.0)
        fs.crash()
        assert disk.clock.next_timer_due_ms() is None


class TestStallElimination:
    def test_steady_state_stall_is_zero_under_traffic(self):
        """The acceptance criterion: with the checkpointer keeping
        ahead of the append cursor, third entries find the third clean
        and the anchor already advanced — commits never block."""
        obs = Observer()
        _, fs = _volume(checkpoint_interval_ms=500.0, obs=obs)
        engine = TrafficEngine(
            fs,
            TrafficConfig(
                clients=8,
                ops_per_client=60,
                mean_think_ms=30.0,
                seed=7,
            ),
        )
        engine.run()
        fs.unmount()
        snap = obs.snapshot()
        assert snap.counters["wal.third_entries"] > 0
        assert snap.counters["wal.stall_ms"] == 0.0
        assert snap.counters["ckpt.anchor_advances"] > 0

    def test_same_traffic_stalls_without_checkpointer(self):
        obs = Observer()
        _, fs = _volume(obs=obs)
        engine = TrafficEngine(
            fs,
            TrafficConfig(
                clients=8,
                ops_per_client=60,
                mean_think_ms=30.0,
                seed=7,
            ),
        )
        engine.run()
        fs.unmount()
        assert obs.snapshot().counters["wal.stall_ms"] > 0


class TestBackgroundYield:
    def _flush_order(self, policy: str) -> list[int]:
        disk = SimDisk(geometry=SMALL.geometry)
        io = IoScheduler(disk, policy=policy)
        sector = b"\x00" * disk.geometry.sector_bytes
        # Background writeback lands in the queue first, at low
        # addresses the elevator would otherwise prefer.
        io.background_mode = True
        io.submit_write(100, [sector])
        io.submit_write(200, [sector])
        io.background_mode = False
        io.submit_write(5_000, [sector])
        io.submit_write(6_000, [sector], deadline_ms=0.0)
        order: list[int] = []
        original = disk.write

        def spy(address, sectors, **kwargs):
            order.append(address)
            return original(address, sectors, **kwargs)

        disk.write = spy
        io.flush()
        return order

    def test_scan_services_foreground_first(self):
        order = self._flush_order("scan")
        assert order.index(5_000) < order.index(100)
        assert order.index(5_000) < order.index(200)

    def test_deadline_services_foreground_first(self):
        order = self._flush_order("deadline")
        assert order[0] == 6_000  # expired deadline leads
        assert order.index(5_000) < order.index(100)

    def test_explicit_flag_overrides_mode(self):
        disk = SimDisk(geometry=SMALL.geometry)
        io = IoScheduler(disk, policy="scan")
        sector = b"\x00" * disk.geometry.sector_bytes
        io.submit_write(100, [sector], background=True)
        assert io._queue[-1].background
        io.submit_write(200, [sector])
        assert not io._queue[-1].background

    def test_request_default_is_foreground(self):
        request = IoRequest(tag=1, address=0, sectors=[b""])
        assert not request.background
