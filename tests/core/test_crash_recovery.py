"""Crash-recovery integration tests: the heart of the paper's claim.

The durability contract under test: after a crash, every operation
that committed (its force returned) is fully present; operations after
the last force may be lost, but *atomically* — the name table is
structurally valid, the VAM rebuild never finds a double allocation,
and every surviving file reads back byte-for-byte.

The sweep test arms a crash at every k-th disk I/O of a fixed workload
and recovers each time, which exercises torn log records, crashes
during home writebacks, and crashes inside the third-entry protocol.
"""

from __future__ import annotations

import pytest

from repro.core.fsd import FSD
from repro.core.layout import VolumeParams
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import SimulatedCrash
from repro.workloads.generators import payload

GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
#: A small log so workloads wrap it and exercise the thirds protocol.
PARAMS = VolumeParams(
    nt_pages=512, log_record_sectors=231, cache_pages=32, max_record_pages=16
)


def fresh_fs() -> tuple[SimDisk, FSD]:
    disk = SimDisk(geometry=GEO)
    FSD.format(disk, PARAMS)
    return disk, FSD.mount(disk)


def committed_workload(fs: FSD, rounds: int) -> dict[str, bytes]:
    """Runs a create/update/delete mix, forcing after each round; returns
    the expected post-recovery contents."""
    expected: dict[str, bytes] = {}
    for round_index in range(rounds):
        for index in range(6):
            name = f"w/r{round_index:02d}-{index}"
            data = payload(200 + 97 * index + round_index, round_index)
            fs.create(name, data, keep=0)
            expected[name] = data
        if round_index % 3 == 2:
            victim = f"w/r{round_index - 1:02d}-0"
            fs.delete(victim)
            expected.pop(victim)
        fs.force()
    return expected


def verify_contents(fs: FSD, expected: dict[str, bytes]) -> None:
    listed = {props.name for props in fs.list("w/")}
    assert listed == set(expected)
    for name, data in expected.items():
        assert fs.read(fs.open(name)) == data
    fs.name_table.tree.check_invariants()


class TestCommittedSurvives:
    def test_basic(self):
        disk, fs = fresh_fs()
        expected = committed_workload(fs, rounds=4)
        fs.crash()
        recovered = FSD.mount(disk)
        verify_contents(recovered, expected)

    def test_after_log_wrap(self):
        """Enough committed work to cycle the log several times."""
        disk, fs = fresh_fs()
        expected = committed_workload(fs, rounds=20)
        fs.crash()
        recovered = FSD.mount(disk)
        verify_contents(recovered, expected)

    def test_uncommitted_tail_lost_atomically(self):
        disk, fs = fresh_fs()
        expected = committed_workload(fs, rounds=3)
        fs.create("w/uncommitted", b"gone")
        fs.crash()
        recovered = FSD.mount(disk)
        assert not recovered.exists("w/uncommitted")
        verify_contents(recovered, expected)

    def test_repeated_crash_recover_cycles(self):
        disk, fs = fresh_fs()
        expected: dict[str, bytes] = {}
        for cycle in range(5):
            for index in range(4):
                name = f"w/c{cycle}-{index}"
                data = payload(150 + index * 31, cycle)
                fs.create(name, data, keep=0)
                expected[name] = data
            fs.force()
            fs.crash()
            fs = FSD.mount(disk)
            verify_contents(fs, expected)

    def test_crash_without_any_force_since_mount(self):
        disk, fs = fresh_fs()
        expected = committed_workload(fs, rounds=2)
        fs.crash()
        fs = FSD.mount(disk)
        fs.crash()  # immediately crash again: nothing new
        fs = FSD.mount(disk)
        verify_contents(fs, expected)


class TestCrashPointSweep:
    """Arm a crash at the k-th I/O during a committed workload; after
    recovery, everything committed before the crash must be intact."""

    @pytest.mark.parametrize("crash_after", list(range(0, 240, 7)))
    def test_sweep(self, crash_after):
        disk, fs = fresh_fs()
        committed: dict[str, bytes] = {}
        pending: dict[str, bytes] = {}
        disk.faults.arm_crash(
            after_ios=crash_after, surviving_sectors=2, damage_tail=2
        )
        try:
            for round_index in range(12):
                for index in range(5):
                    name = f"w/r{round_index:02d}-{index}"
                    data = payload(180 + 53 * index, round_index)
                    fs.create(name, data, keep=0)
                    pending[name] = data
                fs.force()
                committed.update(pending)
                pending.clear()
            disk.faults.disarm_crash()
        except SimulatedCrash:
            pass
        fs.crash()

        recovered = FSD.mount(disk)
        listed = {props.name for props in recovered.list("w/")}
        # Everything committed must be present and correct...
        for name, data in committed.items():
            assert name in listed, f"lost committed {name}"
            assert recovered.read(recovered.open(name)) == data
        # ...anything else present must be an un-acked pending file
        # whose log record happened to survive (allowed), never garbage.
        for extra in listed - set(committed):
            assert extra in pending
            assert recovered.read(recovered.open(extra)) == pending[extra]
        recovered.name_table.tree.check_invariants()

    def test_crash_during_recovery_itself(self):
        """Redo is idempotent: a crash in the middle of recovery's home
        writes leaves a volume that recovers fine on the next try."""
        disk, fs = fresh_fs()
        expected = committed_workload(fs, rounds=6)
        fs.crash()
        disk.faults.arm_crash(after_ios=10, surviving_sectors=1, damage_tail=1)
        with pytest.raises(SimulatedCrash):
            FSD.mount(disk)
        recovered = FSD.mount(disk)
        verify_contents(recovered, expected)
