"""Tests for the §5.3 VAM-logging extension.

"The log could also be used to record changes to the VAM...  VAM
logging would greatly decrease worst case crash recovery time from
about twenty five seconds to about two seconds.  VAM logging was not
done since it was a complicated modification."  We do it, behind
``VolumeParams.log_vam``, and verify the safety argument: recovery
never double-allocates; at worst it leaks the final batch's frees.
"""

from __future__ import annotations

from repro.core.fsd import FSD
from repro.core.layout import VolumeParams
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import SimulatedCrash
from repro.workloads.generators import payload

GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
PARAMS = VolumeParams(
    nt_pages=512, log_record_sectors=300, cache_pages=48, log_vam=True
)


def fresh() -> tuple[SimDisk, FSD]:
    disk = SimDisk(geometry=GEO)
    FSD.format(disk, PARAMS)
    return disk, FSD.mount(disk)


class TestVamLogging:
    def test_flag_persisted_in_root(self):
        disk, fs = fresh()
        assert fs.params.log_vam
        fs.unmount()
        assert FSD.mount(disk).params.log_vam

    def test_recovery_skips_rebuild(self):
        disk, fs = fresh()
        for index in range(20):
            fs.create(f"d/f{index:02d}", payload(700, index))
        fs.force()
        fs.crash()
        recovered = FSD.mount(disk)
        assert recovered.mount_report.vam_loaded
        assert recovered.mount_report.vam_rebuild_entries == 0
        assert recovered.exists("d/f19")

    def test_recovered_vam_matches_rebuild(self):
        """The logged VAM must agree exactly with what a rebuild from
        the name table would produce (no leaks in this scenario: the
        frees committed before the crash)."""
        disk, fs = fresh()
        for index in range(25):
            fs.create(f"d/f{index:02d}", payload(600 + index * 37, index))
        fs.delete("d/f05")
        fs.delete("d/f15")
        fs.force()
        fs.force()  # second force commits the shadow-freed VAM pages
        fs.crash()
        recovered = FSD.mount(disk)
        assert recovered.mount_report.vam_loaded
        from repro.core.recovery import MountReport, rebuild_vam

        reference = rebuild_vam(
            disk, recovered.layout, recovered.name_table, MountReport()
        )
        assert bytes(recovered.vam._bits) == bytes(reference._bits)
        assert recovered.vam.free_count == reference.free_count

    def test_never_double_allocates_after_crash(self):
        """The safety half of the ordering argument: allocations commit
        with their creates, so a recovered volume can always allocate
        without colliding with live data."""
        disk, fs = fresh()
        for index in range(15):
            fs.create(f"d/f{index:02d}", payload(900, index))
        fs.force()
        fs.crash()
        recovered = FSD.mount(disk)
        before = {
            name.props.name: recovered.read(recovered.open(name.props.name))
            for name in [recovered.open(f"d/f{i:02d}") for i in range(15)]
        }
        # Fill more files; if the VAM lied, these would overwrite data.
        for index in range(30):
            recovered.create(f"post/p{index:02d}", payload(800, 100 + index))
        recovered.force()
        for name, data in before.items():
            assert recovered.read(recovered.open(name)) == data

    def test_uncommitted_frees_leak_at_most(self):
        """Frees whose commit record never made it are leaked (pages
        stay allocated), never handed out twice."""
        disk, fs = fresh()
        handle = fs.create("d/victim", payload(900, 1))
        fs.force()
        victim_run = handle.runs.runs[0]
        fs.delete("d/victim")
        # Crash before the delete's shadow-free commits its VAM pages.
        fs.force()  # commits the delete (entry gone, shadow applied)...
        fs.crash()  # ...but the freed VAM bits were dirtied post-append
        recovered = FSD.mount(disk)
        assert recovered.mount_report.vam_loaded
        assert not recovered.exists("d/victim")
        # The pages may be leaked (still allocated) but never corrupt:
        # a rebuild-based volume must be a subset of the logged one.
        from repro.core.recovery import MountReport, rebuild_vam

        reference = rebuild_vam(
            disk, recovered.layout, recovered.name_table, MountReport()
        )
        for sector in range(victim_run.start, victim_run.end):
            if reference.is_free(sector):
                # logged VAM may still hold it (leak) — acceptable —
                # but if it says free it must truly be free.
                if recovered.vam.is_free(sector):
                    assert reference.is_free(sector)

    def test_recovery_faster_than_rebuild(self):
        """The headline: recovery cost drops to about log-replay time."""
        def crash_and_measure(log_vam: bool) -> float:
            params = VolumeParams(
                nt_pages=512, log_record_sectors=300, cache_pages=48,
                log_vam=log_vam,
            )
            disk = SimDisk(geometry=GEO)
            FSD.format(disk, params)
            fs = FSD.mount(disk)
            for index in range(60):
                fs.create(f"d/f{index:02d}", payload(700, index))
            fs.force()
            fs.crash()
            before = disk.clock.now_ms
            FSD.mount(disk)
            return disk.clock.now_ms - before

        with_logging = crash_and_measure(True)
        without = crash_and_measure(False)
        # On the tiny test volume the rebuild is cheap, so the margin
        # is modest; the full-scale ablation bench shows the ~10x gap.
        assert with_logging < 0.85 * without

    def test_damaged_vam_page_falls_back_to_rebuild(self):
        disk, fs = fresh()
        fs.create("d/a", b"x")
        fs.force()
        fs.crash()
        layout = fs.layout
        disk.faults.damage(layout.vam_start + 2)
        recovered = FSD.mount(disk)
        assert not recovered.mount_report.vam_loaded
        assert recovered.mount_report.vam_rebuild_entries >= 1
        assert recovered.exists("d/a")

    def test_crash_sweep_with_vam_logging(self):
        """The crash-point sweep must stay sound with logging on."""
        for crash_after in range(0, 120, 11):
            disk = SimDisk(geometry=GEO)
            FSD.format(disk, PARAMS)
            fs = FSD.mount(disk)
            committed = {}
            disk.faults.arm_crash(
                after_ios=crash_after, surviving_sectors=1, damage_tail=1
            )
            try:
                for round_index in range(8):
                    batch = {}
                    for index in range(4):
                        name = f"w/r{round_index}-{index}"
                        data = payload(300 + index * 41, round_index)
                        fs.create(name, data, keep=0)
                        batch[name] = data
                    fs.force()
                    committed.update(batch)
                disk.faults.disarm_crash()
            except SimulatedCrash:
                pass
            fs.crash()
            recovered = FSD.mount(disk)
            for name, data in committed.items():
                assert recovered.read(recovered.open(name)) == data
            # And the volume stays allocatable without collisions.
            recovered.create("w/probe", payload(500, 999))
            recovered.force()
            for name, data in committed.items():
                assert recovered.read(recovered.open(name)) == data
