"""Unit tests for the circular redo log: record format, thirds
protocol, anchor management, wrap handling and damage tolerance."""

from __future__ import annotations

import pytest

from repro.core.layout import VolumeLayout, VolumeParams
from repro.core.wal import (
    LoggedPage,
    PAGE_LEADER,
    PAGE_NAME_TABLE,
    RECORD_OVERHEAD_SECTORS,
    WriteAheadLog,
    record_sectors,
)
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import CorruptMetadata, LogFull, SimulatedCrash

GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
PARAMS = VolumeParams(nt_pages=512, log_record_sectors=300, cache_pages=16)


def fresh_wal(params: VolumeParams = PARAMS) -> tuple[SimDisk, WriteAheadLog]:
    disk = SimDisk(geometry=GEO)
    layout = VolumeLayout.compute(GEO, params)
    wal = WriteAheadLog(disk, layout)
    wal.boot_count = 1
    wal.format()
    return disk, wal


def nt_page(page_id: int, fill: int) -> LoggedPage:
    return LoggedPage(
        kind=PAGE_NAME_TABLE, page_id=page_id, data=bytes([fill]) * 512
    )


class TestRecordArithmetic:
    def test_paper_sizes(self):
        assert RECORD_OVERHEAD_SECTORS == 5
        assert record_sectors(1) == 7
        assert record_sectors(14) == 33

    def test_log_must_hold_max_record(self):
        disk = SimDisk(geometry=GEO)
        params = VolumeParams(
            nt_pages=512, log_record_sectors=150, max_record_pages=36
        )
        layout = VolumeLayout.compute(GEO, params)
        with pytest.raises(ValueError):
            WriteAheadLog(disk, layout)


class TestAppendScan:
    def test_empty_scan(self):
        _, wal = fresh_wal()
        assert wal.scan() == []
        assert wal.next_record_number == 1
        assert wal.write_offset == 0

    def test_single_record_roundtrip(self):
        disk, wal = fresh_wal()
        pages = [nt_page(3, 0xAA), nt_page(9, 0xBB)]
        wal.append(pages)
        layout = wal.layout
        reopened = WriteAheadLog(disk, layout)
        records = reopened.scan()
        assert len(records) == 1
        assert records[0].record_number == 1
        assert [(p.kind, p.page_id) for p in records[0].pages] == [
            (PAGE_NAME_TABLE, 3),
            (PAGE_NAME_TABLE, 9),
        ]
        assert records[0].pages[0].data == bytes([0xAA]) * 512

    def test_scan_resumes_append_position(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(1, 1)])
        wal.append([nt_page(2, 2)])
        reopened = WriteAheadLog(disk, wal.layout)
        reopened.scan()
        assert reopened.write_offset == wal.write_offset
        assert reopened.next_record_number == 3
        # Appending after recovery continues the sequence.
        reopened.boot_count = 2
        reopened.append([nt_page(3, 3)])
        final = WriteAheadLog(disk, wal.layout)
        assert len(final.scan()) == 3

    def test_leader_pages_carry_disk_addresses(self):
        disk, wal = fresh_wal()
        wal.append(
            [LoggedPage(kind=PAGE_LEADER, page_id=4242, data=b"leader")]
        )
        records = WriteAheadLog(disk, wal.layout).scan()
        assert records[0].pages[0].kind == PAGE_LEADER
        assert records[0].pages[0].page_id == 4242

    def test_batch_splits_at_record_cap(self):
        disk, wal = fresh_wal()
        cap = wal.layout.params.max_record_pages
        results = wal.append_records([nt_page(i, i % 250) for i in range(cap + 5)])
        assert len(results) == 2
        assert len(results[0][2]) == cap
        assert len(results[1][2]) == 5

    def test_record_too_big_for_a_third(self):
        _, wal = fresh_wal()
        huge = (wal.third_sectors - RECORD_OVERHEAD_SECTORS) // 2 + 1
        with pytest.raises(LogFull):
            wal._append_record([nt_page(i, 0) for i in range(huge)])

    def test_empty_append_is_noop(self):
        disk, wal = fresh_wal()
        assert wal.append([]) == 0
        assert disk.stats.writes == 1  # only the format anchor write

    def test_record_size_accounting(self):
        _, wal = fresh_wal()
        wal.append([nt_page(1, 1)])
        assert wal.record_sizes == [7]
        assert wal.sectors_logged == 7
        assert wal.pages_logged == 1


class TestOnDiskFormat:
    def test_no_identical_adjacent_sectors(self):
        """The paper's rule: the same data never on adjacent sectors,
        so one 2-sector fault cannot kill both copies of anything."""
        disk, wal = fresh_wal()
        wal.append([nt_page(i, 10 + i) for i in range(5)])
        size = record_sectors(5)
        sectors = [disk.peek(wal.area_start + i) for i in range(size)]
        for a, b in zip(sectors, sectors[1:]):
            assert a != b

    def test_one_page_record_is_seven_sectors(self):
        _, wal = fresh_wal()
        wal.append([nt_page(1, 1)])
        assert wal.write_offset == 7


class TestDamageTolerance:
    def test_header_copy_damaged(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(5, 0x55)])
        disk.faults.damage(wal.area_start + 0)  # primary header
        records = WriteAheadLog(disk, wal.layout).scan()
        assert len(records) == 1

    def test_data_copy_damaged(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(5, 0x55)])
        disk.faults.damage(wal.area_start + 3)  # primary data page
        records = WriteAheadLog(disk, wal.layout).scan()
        assert records[0].pages[0].data == bytes([0x55]) * 512

    def test_end_page_damaged(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(5, 0x55)])
        disk.faults.damage(wal.area_start + 4)  # end page (copy survives)
        assert len(WriteAheadLog(disk, wal.layout).scan()) == 1

    def test_two_consecutive_sectors_damaged(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(5, 0x55), nt_page(6, 0x66)])
        disk.faults.damage(wal.area_start + 3, count=2)  # both primary datas
        records = WriteAheadLog(disk, wal.layout).scan()
        assert len(records) == 1
        assert records[0].pages[1].data == bytes([0x66]) * 512

    def test_torn_final_record_discarded(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(1, 1)])
        disk.faults.arm_crash(after_ios=0, surviving_sectors=4, damage_tail=2)
        with pytest.raises(SimulatedCrash):
            wal.append([nt_page(2, 2), nt_page(3, 3)])
        records = WriteAheadLog(disk, wal.layout).scan()
        assert len(records) == 1
        assert records[0].pages[0].page_id == 1

    def test_anchor_copy_damaged(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(1, 1)])
        disk.faults.damage(wal.layout.log_start)  # anchor page 0
        reopened = WriteAheadLog(disk, wal.layout)
        assert reopened.read_anchor() == (0, 1)
        assert len(reopened.scan()) == 1

    def test_both_anchor_copies_damaged_is_fatal(self):
        disk, wal = fresh_wal()
        disk.faults.damage(wal.layout.log_start)
        disk.faults.damage(wal.layout.log_start + 2)
        with pytest.raises(CorruptMetadata):
            WriteAheadLog(disk, wal.layout).read_anchor()


class TestThirdsProtocol:
    def test_flush_called_on_entering_new_third(self):
        _, wal = fresh_wal()
        entered = []
        wal.flush_third = entered.append
        pages_per_record = 10
        appended = 0
        while wal.third_of(wal.write_offset) == 0 and appended < 50:
            wal.append([nt_page(i, i) for i in range(pages_per_record)])
            appended += 1
        # The write position reached third 1; the next record (or the
        # one that crossed) must have announced entering it.
        wal.append([nt_page(0, 0)])
        assert 1 in entered

    def test_anchor_advances_when_wrapping(self):
        _, wal = fresh_wal()
        wal.flush_third = lambda third: None
        first_anchor = wal.anchor_offset, wal.anchor_record_number
        # Fill well past one full log cycle.
        for i in range(60):
            wal.append([nt_page(i % 30, i % 251) for _ in range(10)])
        assert (wal.anchor_offset, wal.anchor_record_number) != first_anchor
        assert wal.anchor_record_number > 1

    def test_scan_after_many_wraps(self):
        disk, wal = fresh_wal()
        wal.flush_third = lambda third: None
        for i in range(80):
            wal.append([nt_page(i % 40, (i * 3) % 251) for _ in range(8)])
        records = WriteAheadLog(disk, wal.layout).scan()
        assert records, "wrapped log must still recover its tail"
        # Record numbers are consecutive from the anchor.
        numbers = [r.record_number for r in records]
        assert numbers == list(range(numbers[0], numbers[0] + len(numbers)))
        assert numbers[-1] == wal.next_record_number - 1

    def test_skip_record_at_tail(self):
        """A record that does not fit the tail wraps via a skip record
        and scanning follows it."""
        disk, wal = fresh_wal()
        wal.flush_third = lambda third: None
        # Append 8-page records (21 sectors); 300 is not a multiple of
        # 21, so the last record cannot fit the tail exactly.
        while wal.area_sectors - wal.write_offset >= 21:
            wal.append([nt_page(i, 7) for i in range(8)])
        tail_before_wrap = wal.write_offset
        wal.append([nt_page(1, 8) for _ in range(8)])  # forces the wrap
        assert wal.write_offset < tail_before_wrap  # wrapped
        records = WriteAheadLog(disk, wal.layout).scan()
        assert records[-1].pages[0].data == bytes([8]) * 512

    def test_checkpoint_empties_recovery(self):
        disk, wal = fresh_wal()
        wal.append([nt_page(1, 1)])
        wal.checkpoint()
        assert WriteAheadLog(disk, wal.layout).scan() == []
