"""Property-based tests for the allocator and run tables.

Invariants under arbitrary allocate/free interleavings:

* no sector is ever owned by two live allocations,
* every allocation delivers exactly the requested sector count,
* freeing returns the VAM to a consistent state (free_count balances),
* run tables map pages to sectors bijectively.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.allocator import RunAllocator
from repro.core.layout import VolumeLayout, VolumeParams
from repro.core.types import Run, RunTable
from repro.core.vam import VolumeAllocationMap
from repro.disk.geometry import DiskGeometry
from repro.errors import VolumeFull

GEO = DiskGeometry(cylinders=60, heads=4, sectors_per_track=16)
PARAMS = VolumeParams(nt_pages=64, log_record_sectors=99, max_file_runs=128)


def fresh_allocator() -> RunAllocator:
    layout = VolumeLayout.compute(GEO, PARAMS)
    vam = VolumeAllocationMap(GEO.total_sectors)
    for run in layout.metadata_runs():
        vam.mark_allocated(run)
    return RunAllocator(vam, layout)


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("alloc"),
            st.integers(min_value=1, max_value=200),
            st.booleans(),
        ),
        st.tuples(st.just("free"), st.integers(min_value=0), st.booleans()),
    ),
    max_size=60,
)


@settings(
    max_examples=80, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_allocations_never_overlap(ops):
    allocator = fresh_allocator()
    vam = allocator.vam
    live: list[RunTable] = []
    owned: set[int] = set()
    free_before = vam.free_count

    for kind, value, flag in ops:
        if kind == "alloc":
            try:
                table = allocator.allocate(value, big=flag)
            except VolumeFull:
                continue
            assert table.total_sectors == value
            sectors = {
                s for run in table.runs for s in range(run.start, run.end)
            }
            assert len(sectors) == value  # runs internally disjoint
            assert sectors.isdisjoint(owned)  # and disjoint from others
            owned |= sectors
            live.append(table)
        elif live:
            victim = live.pop(value % len(live))
            allocator.free(victim, deferred=flag)
            if flag:
                vam.commit_shadow()
            for run in victim.runs:
                owned -= set(range(run.start, run.end))

    # Conservation: free count balances exactly.
    assert vam.free_count == free_before - len(owned)
    # And every owned sector is marked allocated.
    for table in live:
        for run in table.runs:
            for sector in range(run.start, run.end):
                assert not vam.is_free(sector)


@given(
    runs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100_000),
            st.integers(min_value=1, max_value=50),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_run_table_page_mapping_is_bijective(runs):
    # Make the runs disjoint by spacing them out deterministically.
    spaced = []
    cursor = 0
    for start, count in runs:
        spaced.append(Run(cursor, count))
        cursor += count + 3
    table = RunTable(list(spaced))
    total = table.total_sectors
    sectors = [table.sector_of_page(page) for page in range(total)]
    assert len(set(sectors)) == total  # no two pages share a sector
    # extents_for over any window covers exactly those pages, in order.
    if total >= 2:
        window = table.extents_for(1, total - 1)
        flattened = [
            sector
            for run in window
            for sector in range(run.start, run.end)
        ]
        assert flattened == sectors[1:]


@given(
    runs=st.lists(
        st.integers(min_value=1, max_value=30), min_size=1, max_size=8
    ),
    keep=st.integers(min_value=0, max_value=200),
)
def test_truncate_conserves_sectors(runs, keep):
    cursor = 0
    table = RunTable()
    for count in runs:
        table.append(Run(cursor, count))
        cursor += count + 2
    total = table.total_sectors
    freed = table.truncate_sectors(keep)
    kept = table.total_sectors
    assert kept == min(keep, total)
    assert kept + sum(run.count for run in freed) == total
