"""Unit tests for the FSD volume layout and root page."""

from __future__ import annotations

import pytest

from repro.core.layout import RootPage, VolumeLayout, VolumeParams
from repro.disk.geometry import DiskGeometry, TRIDENT_T300
from repro.errors import CorruptMetadata, FsError


def layout_for(geometry=TRIDENT_T300, **param_overrides) -> VolumeLayout:
    return VolumeLayout.compute(geometry, VolumeParams(**param_overrides))


class TestParams:
    def test_log_must_divide_in_thirds(self):
        with pytest.raises(ValueError):
            VolumeParams(log_record_sectors=100)

    def test_tiny_name_table_rejected(self):
        with pytest.raises(ValueError):
            VolumeParams(nt_pages=4)


class TestLayout:
    def test_metadata_is_central(self):
        layout = layout_for()
        central = TRIDENT_T300.cylinder_start(TRIDENT_T300.central_cylinder)
        assert layout.log_start == central

    def test_regions_do_not_overlap(self):
        layout = layout_for()
        regions = [
            ("root_a", layout.root_a, 1),
            ("root_b", layout.root_b, 1),
            ("log", layout.log_start, layout.log_sectors),
            ("nt_a", layout.nt_a_start, layout.params.nt_pages),
            ("nt_b", layout.nt_b_start, layout.params.nt_pages),
            ("vam", layout.vam_start, layout.vam_sectors),
            ("big", layout.big_area.start, layout.big_area.count),
            ("small", layout.small_area.start, layout.small_area.count),
        ]
        for i, (name_a, start_a, count_a) in enumerate(regions):
            for name_b, start_b, count_b in regions[i + 1:]:
                overlap = max(
                    0,
                    min(start_a + count_a, start_b + count_b)
                    - max(start_a, start_b),
                )
                assert overlap == 0, f"{name_a} overlaps {name_b}"

    def test_everything_inside_the_disk(self):
        layout = layout_for()
        assert layout.small_area.end <= TRIDENT_T300.total_sectors
        assert layout.meta_end <= TRIDENT_T300.total_sectors

    def test_root_copies_on_different_cylinders(self):
        layout = layout_for()
        assert TRIDENT_T300.cylinder_of(layout.root_a) != TRIDENT_T300.cylinder_of(
            layout.root_b
        )

    def test_nt_page_addresses(self):
        layout = layout_for()
        a0, b0 = layout.nt_page_addresses(0)
        a5, b5 = layout.nt_page_addresses(5)
        assert a0 == layout.nt_a_start and b0 == layout.nt_b_start
        assert a5 - a0 == 5 and b5 - b0 == 5
        # Copies never adjacent (independent failure modes).
        assert abs(a0 - b0) > 2

    def test_nt_page_out_of_range(self):
        layout = layout_for()
        with pytest.raises(FsError):
            layout.nt_page_addresses(layout.params.nt_pages)

    def test_big_area_below_small_area(self):
        layout = layout_for()
        assert layout.big_area.end <= layout.small_area.start

    def test_volume_too_small(self):
        tiny = DiskGeometry(cylinders=6, heads=2, sectors_per_track=8)
        with pytest.raises(FsError):
            VolumeLayout.compute(tiny, VolumeParams(nt_pages=64, log_record_sectors=99))

    def test_metadata_runs_cover_boot_and_meta(self):
        layout = layout_for()
        covered = set()
        for run in layout.metadata_runs():
            covered.update(range(run.start, run.end))
        assert layout.root_a in covered
        assert layout.root_b in covered
        assert layout.log_start in covered
        assert layout.nt_a_start in covered
        assert layout.vam_start + layout.vam_sectors - 1 in covered
        assert layout.big_area.start not in covered
        assert layout.small_area.start not in covered


class TestRootPage:
    def test_roundtrip(self):
        root = RootPage(
            params=VolumeParams(nt_pages=1024, cache_pages=33),
            total_sectors=999,
            boot_count=7,
            vam_saved=True,
        )
        back = RootPage.decode(root.encode(512))
        assert back == root

    def test_checksum_detects_corruption(self):
        root = RootPage(params=VolumeParams(), total_sectors=10)
        blob = bytearray(root.encode(512))
        blob[20] ^= 0xFF
        with pytest.raises(CorruptMetadata):
            RootPage.decode(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(CorruptMetadata):
            RootPage.decode(b"\x00" * 512)
