"""Unit and property tests for the transaction brackets
(:mod:`repro.core.txn`): counter balance, log-space admission,
deferred commits, and wakeup discipline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.txn import TxnManager
from repro.errors import FsError


class StubCache:
    """Just the ``pending_log_pages`` surface the manager reads."""

    def __init__(self):
        self.pending = 0

    def pending_log_pages(self) -> int:
        return self.pending


class StubCoordinator:
    """A coordinator with the force/defer protocol and nothing else."""

    def __init__(self):
        self.cache = StubCache()
        self.txn: TxnManager | None = None
        self.forces = 0
        self.deferred = 0
        self.now_ms = 0.0

    def force(self) -> int:
        if self.txn is not None and not self.txn.can_commit():
            self.txn.request_commit()
            self.deferred += 1
            return 0
        self.txn.committing = True
        try:
            self.forces += 1
            self.cache.pending = 0
            self.now_ms += 10.0
        finally:
            self.txn.committing = False
        self.txn.after_force(self.now_ms)
        return 1


def manager(capacity=72, max_op=36):
    coord = StubCoordinator()
    txn = TxnManager(coord, capacity_pages=capacity, max_op_pages=max_op)
    return coord, txn


class TestBracketBalance:
    def test_unbalanced_end_op_raises(self):
        _, txn = manager()
        with pytest.raises(FsError, match="unbalanced end_op"):
            txn.end_op()

    def test_end_op_during_commit_raises(self):
        _, txn = manager()
        txn.begin_op()
        txn.committing = True
        with pytest.raises(FsError, match="during commit"):
            txn.end_op()

    def test_op_context_manager_balances(self):
        _, txn = manager()
        with txn.op():
            assert txn.outstanding == 1
        assert txn.outstanding == 0

    def test_op_inside_passthrough_is_a_noop(self):
        _, txn = manager()
        with txn.passthrough():
            with txn.op():
                # The driver holds the bracket; the FSD-internal one
                # must not double count.
                assert txn.outstanding == 0
        assert txn.outstanding == 0

    def test_serial_begin_never_blocks_even_without_space(self):
        coord, txn = manager(capacity=36, max_op=36)
        coord.cache.pending = 1_000
        assert txn.begin_op() is True
        assert coord.forces == 0

    def test_invalid_max_op_pages_raises(self):
        coord = StubCoordinator()
        with pytest.raises(FsError):
            TxnManager(coord, capacity_pages=10, max_op_pages=0)

    def test_capacity_clamped_to_one_op(self):
        coord = StubCoordinator()
        txn = TxnManager(coord, capacity_pages=1, max_op_pages=36)
        assert txn.capacity_pages == 36


class TestAdmission:
    def test_second_client_parks_while_bracket_held(self):
        # capacity 72 = exactly two worst-case ops; a third must wait.
        coord, txn = manager(capacity=72, max_op=36)
        woken = []
        assert txn.begin_op(lambda: woken.append("a"))
        assert txn.begin_op(lambda: woken.append("b"))
        assert not txn.begin_op(lambda: woken.append("c"))
        assert txn.waiting == 1
        assert woken == []

    def test_end_op_wakes_parked_client(self):
        coord, txn = manager(capacity=72, max_op=36)
        woken = []
        txn.begin_op(lambda: woken.append("a"))
        txn.begin_op(lambda: woken.append("b"))
        txn.begin_op(lambda: woken.append("c"))
        txn.end_op()
        assert woken == ["c"]
        # Woken exactly once: later end_ops must not call it again.
        txn.end_op()
        assert woken == ["c"]

    def test_lone_blocked_client_forces_inline(self):
        # Nobody else holds a bracket, so no end_op will ever free the
        # log: begin_op must force on the caller's behalf.
        coord, txn = manager(capacity=36, max_op=36)
        coord.cache.pending = 20
        admitted = txn.begin_op(lambda: None)
        assert admitted is True
        assert coord.forces == 1

    def test_admission_respects_pending_pages(self):
        coord, txn = manager(capacity=72, max_op=36)
        coord.cache.pending = 40   # 40 + 1*36 > 72
        txn.begin_op()             # serial holder
        assert not txn.begin_op(lambda: None)

    def test_wakeups_limited_to_free_slots_then_chain(self):
        # One slot: parked clients wake one at a time as slots free.
        coord, txn = manager(capacity=36, max_op=36)
        txn.begin_op()
        order = []

        def parked(tag):
            def wake():
                order.append(tag)
                txn.begin_op()   # re-attempt; stub has space now
            return wake

        assert not txn.begin_op(parked("a"))
        assert not txn.begin_op(parked("b"))
        txn.end_op()
        assert order == ["a"]    # one slot, one wakeup
        txn.end_op()
        assert order == ["a", "b"]
        txn.end_op()
        assert txn.outstanding == 0


class TestDeferredCommit:
    def test_force_mid_bracket_defers_to_last_end_op(self):
        coord, txn = manager()
        txn.begin_op()
        txn.begin_op()
        coord.force()
        assert coord.forces == 0 and txn.commit_pending
        txn.end_op()
        assert coord.forces == 0      # still one bracket open
        txn.end_op()
        assert coord.forces == 1      # the drain ran it
        assert not txn.commit_pending

    def test_commit_pending_blocks_new_admissions(self):
        coord, txn = manager(capacity=720, max_op=36)
        txn.begin_op()
        coord.force()                  # deferred
        assert not txn.begin_op(lambda: None)   # space is fine; drain
        txn.end_op()                   # runs the force, wakes the waiter
        assert coord.forces == 1

    def test_commit_waiter_woken_with_completion_time(self):
        coord, txn = manager()
        times = []
        txn.await_commit(times.append)
        coord.force()
        assert times == [coord.now_ms]
        coord.force()
        assert len(times) == 1         # one-shot

    def test_begin_during_commit_parks_until_after_force(self):
        coord, txn = manager()
        woken = []
        txn.committing = True
        assert not txn.begin_op(lambda: woken.append("x"))
        txn.committing = False
        coord.force()
        assert woken == ["x"]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.sampled_from(["begin", "end", "dirty", "force"]),
        min_size=1,
        max_size=60,
    )
)
def test_bracket_invariants_hold_under_any_interleaving(script):
    """outstanding == begins - ends, never negative; admission via a
    waiter never overruns capacity; every waiter runs exactly once."""
    coord, txn = manager(capacity=108, max_op=36)
    wakes: list[int] = []
    parked = 0
    begins = ends = 0
    for step in script:
        if step == "begin":
            admitted = txn.begin_op(lambda: wakes.append(1))
            if admitted:
                begins += 1
                pending = coord.cache.pending
                assert (
                    pending + txn.outstanding * txn.max_op_pages
                    <= txn.capacity_pages
                )
            else:
                parked += 1
        elif step == "end":
            if txn.outstanding:
                txn.end_op()
                ends += 1
        elif step == "dirty":
            coord.cache.pending += 7
        else:
            coord.force()
        # Woken waiters re-attempt in real drivers; here they just
        # record.  A waiter runs at most once per park.
        assert len(wakes) <= parked
        assert txn.outstanding == begins - ends
        assert txn.outstanding >= 0
    # Drain everything: remaining brackets end, then one force frees
    # every remaining waiter.
    while txn.outstanding:
        txn.end_op()
    coord.force()
    while txn.waiting:
        before = len(wakes)
        coord.force()
        assert len(wakes) > before    # progress: no lost wakeups
    assert len(wakes) == parked


def test_fsd_mutations_bracket_and_balance(fsd):
    """On a real volume every mutating op runs one bracket and leaves
    the counters balanced."""
    txn = fsd.txn
    assert txn.outstanding == 0
    fsd.create("t/a", b"x" * 600)
    handle = fsd.open("t/a")
    fsd.write(handle, 0, b"y" * 600)
    fsd.rename("t/a", "t/b")
    fsd.delete("t/b")
    assert txn.outstanding == 0
    assert txn.waiting == 0


class TestDiscardWaiters:
    def test_discard_drops_parked_and_resets_state(self):
        coord, txn = manager(capacity=36, max_op=36)
        fired: list[str] = []
        assert txn.begin_op() is True
        # Fill the budget so the next client parks on admission.
        coord.cache.pending = 1_000
        assert txn.begin_op(lambda: fired.append("admitted")) is False
        txn.await_commit(lambda now: fired.append("durable"))
        assert txn.waiting == 2
        dropped = txn.discard_waiters()
        # The crash vaporized both parked continuations — they belong
        # to a dead mount and must never run.
        assert dropped == 2
        assert txn.waiting == 0
        assert txn.outstanding == 0
        assert not txn.committing and not txn.commit_pending
        assert fired == []

    def test_discard_on_idle_manager_is_a_noop(self):
        _, txn = manager()
        assert txn.discard_waiters() == 0
        assert txn.waiting == 0
