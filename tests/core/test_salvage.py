"""Tests for the full-volume salvager (:mod:`repro.core.salvage`).

The salvager is the last rung of the escalation ladder: when a volume
cannot even mount, it sweeps leader pages, surviving name-table
fragments and log images into a freshly formatted image.  The
acceptance scenario from the failure model: both copies of name-table
pages destroyed *plus* the overlapping log third — every file whose
leader and data pages survive must still come back.
"""

from __future__ import annotations

import pytest

from repro.core.fsd import FSD
from repro.core.layout import VolumeLayout, VolumeParams
from repro.core.salvage import salvage_volume
from repro.core.types import FileKind
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import DegradedVolumeError, SimulatedCrash
from repro.workloads.generators import payload

GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
PARAMS = VolumeParams(nt_pages=512, log_record_sectors=300, cache_pages=48)


def _populated_volume(files: int = 12) -> tuple[SimDisk, dict[str, bytes]]:
    """A cleanly unmounted volume with ``files`` distinct files."""
    disk = SimDisk(geometry=GEO)
    FSD.format(disk, PARAMS)
    fs = FSD.mount(disk)
    contents: dict[str, bytes] = {}
    for index in range(files):
        name = f"salvage/f{index:02d}"
        contents[name] = payload(400 + index * 211, index)
        fs.create(name, contents[name])
    # A multi-sector file exercises run tables beyond one sector.
    contents["salvage/big"] = payload(9_000, 99)
    fs.create("salvage/big", contents["salvage/big"])
    fs.unmount()
    return disk, contents


def _verify_recovered(rebuilt: SimDisk, contents: dict[str, bytes]) -> None:
    fs = FSD.mount(rebuilt)
    for name, data in contents.items():
        assert fs.read(fs.open(name)) == data, name
    fs.unmount()


class TestCleanVolume:
    def test_salvage_of_undamaged_volume_recovers_everything(self):
        disk, contents = _populated_volume()
        rebuilt, report = salvage_volume(disk)
        assert report.files_recovered == len(contents)
        assert report.recovered_from_name_table == len(contents)
        assert report.lost == []
        _verify_recovered(rebuilt, contents)

    def test_salvage_preserves_identity(self):
        """uid, version, kind and keep survive the rebuild — a salvaged
        file is the *same* file, not a copy with fresh identity."""
        disk = SimDisk(geometry=GEO)
        FSD.format(disk, PARAMS)
        fs = FSD.mount(disk)
        fs.create("id/file", b"v1")
        handle = fs.create("id/file", b"v2", keep=3)
        fs.create("id/link", kind=FileKind.SYMLINK, remote_target="[x]<y>z")
        fs.unmount()

        rebuilt, report = salvage_volume(disk)
        assert report.lost == []
        fs2 = FSD.mount(rebuilt)
        reopened = fs2.open("id/file")
        assert reopened.version == handle.version
        assert reopened.props.uid == handle.props.uid
        assert reopened.props.keep == 3
        assert fs2.read(fs2.open("id/file", version=1)) == b"v1"
        link = fs2.open("id/link")
        assert link.props.kind == FileKind.SYMLINK
        assert link.props.remote_target == "[x]<y>z"

    def test_source_is_never_written(self):
        disk, _ = _populated_volume(files=4)
        before = dict(disk._data)
        salvage_volume(disk)
        assert disk._data == before

    def test_report_summary_mentions_counts(self):
        disk, contents = _populated_volume(files=4)
        _, report = salvage_volume(disk)
        assert f"{len(contents)} files recovered" in report.summary()
        assert report.duration_ms > 0


class TestDamagedNameTable:
    def test_nt_pair_loss_healed_from_log_images(self):
        """Both home copies of name-table pages dead, log intact: the
        log sweep supplies the newest images and nothing is lost."""
        disk, contents = _populated_volume()
        layout = VolumeLayout.compute(GEO, PARAMS)
        for page in range(1, 40):
            for addr in layout.nt_page_addresses(page):
                disk.faults.damaged.add(addr)
        rebuilt, report = salvage_volume(disk)
        assert report.lost == []
        assert report.files_recovered == len(contents)
        _verify_recovered(rebuilt, contents)

    def test_acceptance_nt_pairs_and_log_destroyed(self):
        """The ISSUE acceptance scenario, taken to its extreme: both
        copies of *every* name-table page destroyed plus the entire
        log (a superset of the overlapping third).  Recovery then
        rests purely on leader pages — and every file whose leader and
        data pages survive comes back with its exact contents."""
        disk, contents = _populated_volume()
        layout = VolumeLayout.compute(GEO, PARAMS)
        for page in range(PARAMS.nt_pages):
            for addr in layout.nt_page_addresses(page):
                disk.faults.damaged.add(addr)
        log_sectors = 3 + PARAMS.log_record_sectors
        for offset in range(log_sectors):
            disk.faults.damaged.add(layout.log_start + offset)

        rebuilt, report = salvage_volume(disk)
        assert report.files_recovered == len(contents)
        assert report.recovered_from_leaders == len(contents)
        assert report.lost == []
        _verify_recovered(rebuilt, contents)

    def test_orphan_symlink_is_honestly_lost(self):
        """A symlink's remote target lives only in the name table; with
        the table gone its orphan leader cannot resurrect it.  It must
        be *reported* lost, never silently dropped."""
        disk = SimDisk(geometry=GEO)
        FSD.format(disk, PARAMS)
        fs = FSD.mount(disk)
        fs.create("o/data", b"plain file")
        fs.create("o/link", kind=FileKind.SYMLINK, remote_target="[s]<d>f")
        fs.unmount()
        layout = VolumeLayout.compute(GEO, PARAMS)
        for page in range(PARAMS.nt_pages):
            for addr in layout.nt_page_addresses(page):
                disk.faults.damaged.add(addr)
        for offset in range(3 + PARAMS.log_record_sectors):
            disk.faults.damaged.add(layout.log_start + offset)

        rebuilt, report = salvage_volume(disk)
        assert report.files_recovered == 1
        labels = [label for label, _ in report.lost]
        assert any("o/link" in label for label in labels)
        fs2 = FSD.mount(rebuilt)
        assert fs2.read(fs2.open("o/data")) == b"plain file"

    def test_damaged_data_pages_reported_lost(self):
        disk, contents = _populated_volume(files=3)
        fs = FSD.mount(disk)
        victim = fs.open("salvage/big")
        first_run = victim.runs.runs[0]
        fs.unmount()
        disk.faults.damaged.add(first_run.start)

        _, report = salvage_volume(disk)
        reasons = dict(report.lost)
        assert any("salvage/big" in label for label in reasons)
        assert report.files_recovered == len(contents) - 1


class TestRootLoss:
    def test_both_roots_dead_needs_params_hint(self):
        disk, contents = _populated_volume(files=3)
        layout = VolumeLayout.compute(GEO, PARAMS)
        disk.faults.damaged.add(layout.root_a)
        disk.faults.damaged.add(layout.root_b)
        with pytest.raises(DegradedVolumeError):
            salvage_volume(disk)
        rebuilt, report = salvage_volume(disk, params_hint=PARAMS)
        assert report.files_recovered == len(contents)
        _verify_recovered(rebuilt, contents)


class TestIdempotence:
    def test_crash_mid_salvage_then_rerun(self):
        """A crash while *writing the rebuilt volume* must be harmless:
        the salvager reformats its destination from scratch, so simply
        running it again converges to the same result."""
        disk, contents = _populated_volume()
        victim = SimDisk(geometry=GEO)
        victim.faults.arm_crash(after_ios=10)
        with pytest.raises(SimulatedCrash):
            salvage_volume(disk, destination=victim)

        # Source untouched, crash plan consumed: run it again.
        rebuilt, report = salvage_volume(disk, destination=victim)
        assert report.files_recovered == len(contents)
        _verify_recovered(rebuilt, contents)

        # And the re-run output matches a never-crashed salvage.
        clean, clean_report = salvage_volume(disk)
        assert report.files_recovered == clean_report.files_recovered
        assert report.lost == clean_report.lost
        fs_a, fs_b = FSD.mount(rebuilt), FSD.mount(clean)
        names_a = [p.name for p in fs_a.list()]
        names_b = [p.name for p in fs_b.list()]
        assert names_a == names_b
        for name in names_a:
            assert fs_a.read(fs_a.open(name)) == fs_b.read(fs_b.open(name))
