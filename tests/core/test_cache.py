"""Unit tests for the metadata cache state machine.

The crucial invariant (from the WAL-steal analysis): the third-entry
writeback writes the *logged* image home, never a newer unlogged one —
otherwise a crash could leave a multi-page update half-applied.
"""

from __future__ import annotations

import pytest

from repro.core.cache import MetadataCache
from repro.core.wal import PAGE_LEADER, PAGE_NAME_TABLE, LoggedPage
from repro.errors import CorruptMetadata


class Home:
    """Fake home store recording writes."""

    def __init__(self):
        self.pages: dict[int, bytes] = {}
        self.leaders: dict[int, bytes] = {}
        self.reads = 0

    def read_page(self, page_no: int) -> bytes:
        self.reads += 1
        return self.pages.get(page_no, b"\x00" * 512)

    def write_pages(self, batch):
        for page_no, data in batch:
            self.pages[page_no] = data

    def write_leader(self, addr, data):
        self.leaders[addr] = data


@pytest.fixture
def home() -> Home:
    return Home()


@pytest.fixture
def cache(home: Home) -> MetadataCache:
    return MetadataCache(
        capacity_pages=4,
        nt_reader=home.read_page,
        nt_writer=home.write_pages,
        leader_writer=home.write_leader,
    )


class TestReadPath:
    def test_miss_then_hit(self, cache, home):
        home.pages[7] = b"seven".ljust(512, b"\x00")
        assert cache.read_nt(7).startswith(b"seven")
        assert cache.read_nt(7).startswith(b"seven")
        assert home.reads == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_of_clean_pages(self, cache, home):
        for page in range(8):
            cache.read_nt(page)
        assert len(cache) <= 4
        assert cache.evictions >= 4

    def test_lru_order(self, cache):
        for page in range(4):
            cache.read_nt(page)
        cache.read_nt(0)  # refresh page 0
        cache.read_nt(99)  # evicts page 1 (oldest)
        assert (PAGE_NAME_TABLE, 1) not in cache._entries
        assert (PAGE_NAME_TABLE, 0) in cache._entries


class TestDirtyLifecycle:
    def test_write_marks_needs_log(self, cache):
        cache.write_nt(3, b"x" * 512)
        pages = cache.pages_needing_log()
        assert [(p.kind, p.page_id) for p in pages] == [(PAGE_NAME_TABLE, 3)]

    def test_note_logged_clears_needs_log(self, cache):
        cache.write_nt(3, b"x" * 512)
        pages = cache.pages_needing_log()
        cache.note_logged(pages, third=0)
        assert cache.pages_needing_log() == []
        assert cache.pending_log_pages() == 0

    def test_dirty_pages_are_pinned(self, cache):
        cache.write_nt(3, b"x" * 512)
        for page in range(10, 20):
            cache.read_nt(page)
        assert (PAGE_NAME_TABLE, 3) in cache._entries

    def test_logged_but_not_home_pages_are_pinned(self, cache):
        cache.write_nt(3, b"x" * 512)
        cache.note_logged(cache.pages_needing_log(), third=0)
        for page in range(10, 20):
            cache.read_nt(page)
        assert (PAGE_NAME_TABLE, 3) in cache._entries

    def test_logging_unknown_page_is_corruption(self, cache):
        with pytest.raises(CorruptMetadata):
            cache.note_logged(
                [LoggedPage(PAGE_NAME_TABLE, 42, b"")], third=0
            )


class TestFlushThird:
    def test_flush_writes_logged_image_home(self, cache, home):
        cache.write_nt(3, b"v1".ljust(512, b"\x00"))
        cache.note_logged(cache.pages_needing_log(), third=1)
        cache.flush_third(1)
        assert home.pages[3].startswith(b"v1")

    def test_flush_other_third_is_noop(self, cache, home):
        cache.write_nt(3, b"v1" * 256)
        cache.note_logged(cache.pages_needing_log(), third=1)
        cache.flush_third(2)
        assert 3 not in home.pages

    def test_flush_never_writes_unlogged_data(self, cache, home):
        """The steal-avoidance invariant."""
        cache.write_nt(3, b"v1".ljust(512, b"\x00"))
        cache.note_logged(cache.pages_needing_log(), third=1)
        cache.write_nt(3, b"v2-unlogged".ljust(512, b"\x00"))  # newer, dirty
        cache.flush_third(1)
        assert home.pages[3].startswith(b"v1")
        # ...and the newer version is still awaiting its own commit.
        assert cache.pending_log_pages() == 1

    def test_flush_idempotent(self, cache, home):
        cache.write_nt(3, b"v1".ljust(512, b"\x00"))
        cache.note_logged(cache.pages_needing_log(), third=1)
        cache.flush_third(1)
        writes_before = cache.home_writes
        cache.flush_third(1)
        assert cache.home_writes == writes_before

    def test_flush_batches_contiguous_pages(self, cache, home):
        for page in (5, 6, 7, 20):
            cache.write_nt(page, bytes([page]) * 512)
        cache.note_logged(cache.pages_needing_log(), third=0)
        cache.flush_third(0)
        assert set(home.pages) == {5, 6, 7, 20}

    def test_flush_all_home(self, cache, home):
        for page, third in ((1, 0), (2, 1), (3, 2)):
            cache.write_nt(page, bytes([page]) * 512)
            cache.note_logged(cache.pages_needing_log(), third=third)
        cache.flush_all_home()
        assert set(home.pages) == {1, 2, 3}

    def test_flushed_page_becomes_evictable(self, cache, home):
        cache.write_nt(3, b"x" * 512)
        cache.note_logged(cache.pages_needing_log(), third=0)
        cache.flush_third(0)
        for page in range(10, 20):
            cache.read_nt(page)
        assert (PAGE_NAME_TABLE, 3) not in cache._entries


class TestLeaders:
    def test_leader_logged_and_flushed(self, cache, home):
        cache.write_leader(500, b"leader!")
        pages = cache.pages_needing_log()
        assert pages[-1].kind == PAGE_LEADER
        cache.note_logged(pages, third=2)
        cache.flush_third(2)
        assert home.leaders[500].startswith(b"leader!")

    def test_piggyback_pending_until_home(self, cache):
        cache.write_leader(500, b"leader!")
        assert cache.leader_pending_piggyback(500) == b"leader!"
        cache.note_leader_home(500)
        assert cache.leader_pending_piggyback(500) is None

    def test_piggyback_skips_logging_code_write(self, cache, home):
        """The paper: a piggybacked leader avoids the write by the
        logging code at third entry."""
        cache.write_leader(500, b"leader!")
        cache.note_logged(cache.pages_needing_log(), third=0)
        cache.note_leader_home(500)  # piggybacked onto a data write
        cache.flush_third(0)
        assert 500 not in home.leaders  # no second write

    def test_drop_leader(self, cache):
        cache.write_leader(500, b"leader!")
        cache.drop_leader(500)
        assert cache.pages_needing_log() == []

    def test_unknown_leader_queries(self, cache):
        assert cache.leader_pending_piggyback(123) is None
        cache.note_leader_home(123)  # no error
        cache.drop_leader(123)  # no error


class TestCrash:
    def test_discard_all(self, cache):
        cache.write_nt(1, b"x" * 512)
        cache.write_leader(2, b"y")
        cache.discard_all()
        assert len(cache) == 0
        assert cache.pages_needing_log() == []
