"""Edge-case tests for the FSD facade: the corners a downstream user
will eventually hit."""

from __future__ import annotations

import pytest

from repro.core.fsd import FSD
from repro.core.types import MAX_NAME_BYTES
from repro.errors import FileNotFound, FsError
from repro.workloads.generators import payload


class TestNames:
    def test_max_length_name_works(self, fsd):
        name = "n" * MAX_NAME_BYTES
        fsd.create(name, b"x")
        assert fsd.exists(name)

    def test_overlong_name_rejected(self, fsd):
        with pytest.raises(FsError):
            fsd.create("n" * (MAX_NAME_BYTES + 1), b"x")

    def test_empty_name_rejected(self, fsd):
        with pytest.raises(FsError):
            fsd.create("", b"x")

    def test_nul_in_name_rejected(self, fsd):
        with pytest.raises(FsError):
            fsd.create("bad\x00name", b"x")

    def test_unicode_names(self, fsd):
        fsd.create("日本語/ファイル.txt", b"konnichiwa")
        assert fsd.read(fsd.open("日本語/ファイル.txt")) == b"konnichiwa"

    def test_names_sort_like_strings(self, fsd):
        for name in ("z", "a/x", "a/y", "m"):
            fsd.create(name, b"-")
        assert [p.name for p in fsd.list()] == ["a/x", "a/y", "m", "z"]


class TestVersionEdges:
    def test_version_numbers_grow_past_gaps(self, fsd):
        fsd.create("v", b"1", keep=0)
        fsd.create("v", b"2", keep=0)
        fsd.delete("v", version=1)
        handle = fsd.create("v", b"3", keep=0)
        assert handle.version == 3
        assert fsd.versions("v") == [2, 3]

    def test_open_explicit_missing_version(self, fsd):
        fsd.create("v", b"1")
        with pytest.raises(FileNotFound):
            fsd.open("v", version=9)

    def test_recreate_after_full_delete_restarts(self, fsd):
        fsd.create("v", b"1")
        fsd.delete("v")
        handle = fsd.create("v", b"again")
        assert handle.version == 1


class TestSizeEdges:
    def test_exact_sector_multiple(self, fsd):
        blob = payload(1024, 1)
        fsd.create("s", blob)
        assert fsd.read(fsd.open("s")) == blob

    def test_one_byte_less_than_sector(self, fsd):
        blob = payload(511, 2)
        fsd.create("s", blob)
        assert fsd.read(fsd.open("s")) == blob

    def test_zero_length_read_of_empty_file(self, fsd):
        fsd.create("empty")
        assert fsd.read(fsd.open("empty"), 0, 0) == b""

    def test_write_empty_payload_is_noop(self, fsd):
        fsd.create("f", b"data")
        handle = fsd.open("f")
        fsd.write(handle, 2, b"")
        assert fsd.read(fsd.open("f")) == b"data"

    def test_truncate_to_zero(self, fsd):
        fsd.create("t", payload(2_000, 3))
        handle = fsd.open("t")
        fsd.truncate(handle, 0)
        assert fsd.open("t").byte_size == 0
        assert fsd.read(fsd.open("t")) == b""

    def test_grow_after_truncate_to_zero(self, fsd):
        fsd.create("t", payload(2_000, 3))
        handle = fsd.open("t")
        fsd.truncate(handle, 0)
        fsd.write(handle, 0, b"reborn")
        assert fsd.read(fsd.open("t")) == b"reborn"


class TestHandleSemantics:
    def test_stale_handle_reads_old_runs(self, fsd):
        """Handles are snapshots: a handle taken before a new version
        still reads the version it opened."""
        fsd.create("h", b"old", keep=0)
        old = fsd.open("h")
        fsd.create("h", b"new!", keep=0)
        assert fsd.read(old) == b"old"

    def test_two_handles_same_file(self, fsd):
        fsd.create("h", payload(1_000, 1))
        a = fsd.open("h")
        b = fsd.open("h")
        assert fsd.read(a) == fsd.read(b)


class TestRenameEdges:
    def test_rename_onto_existing_name_makes_next_version(self, fsd):
        fsd.create("a", b"from-a")
        fsd.create("b", b"from-b", keep=0)
        renamed = fsd.rename("a", "b")
        assert renamed.version == 2
        assert fsd.read(fsd.open("b")) == b"from-a"
        assert fsd.read(fsd.open("b", version=1)) == b"from-b"

    def test_rename_missing(self, fsd):
        with pytest.raises(FileNotFound):
            fsd.rename("ghost", "new")

    def test_rename_survives_crash(self, fsd, disk):
        fsd.create("old-name", payload(700, 5))
        fsd.rename("old-name", "new-name")
        fsd.force()
        fsd.crash()
        recovered = FSD.mount(disk)
        assert not recovered.exists("old-name")
        assert recovered.read(recovered.open("new-name")) == payload(700, 5)
