"""Unit tests for the big/small-area run allocator."""

from __future__ import annotations

import pytest

from repro.core.allocator import RunAllocator
from repro.core.layout import VolumeLayout, VolumeParams
from repro.core.types import Run
from repro.core.vam import VolumeAllocationMap
from repro.disk.geometry import DiskGeometry
from repro.errors import VolumeFull

GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
PARAMS = VolumeParams(nt_pages=512, log_record_sectors=300, max_file_runs=64)


@pytest.fixture
def setup():
    layout = VolumeLayout.compute(GEO, PARAMS)
    vam = VolumeAllocationMap(GEO.total_sectors)
    for run in layout.metadata_runs():
        vam.mark_allocated(run)
    return layout, vam, RunAllocator(vam, layout)


class TestAreas:
    def test_small_files_go_above_the_metadata(self, setup):
        layout, vam, allocator = setup
        table = allocator.allocate(10, big=False)
        assert table.runs[0].start >= layout.small_area.start

    def test_big_files_go_below_the_metadata(self, setup):
        layout, vam, allocator = setup
        table = allocator.allocate(100, big=True)
        assert table.runs[0].end <= layout.big_area.end
        assert table.runs[0].start >= layout.big_area.start

    def test_small_allocations_are_sequential(self, setup):
        _, _, allocator = setup
        first = allocator.allocate(4, big=False)
        second = allocator.allocate(4, big=False)
        assert second.runs[0].start == first.runs[0].end

    def test_big_first_fit_from_top_reuses_holes(self, setup):
        """Freed big-area space is found again (first-fit from end)."""
        _, vam, allocator = setup
        a = allocator.allocate(50, big=True)
        b = allocator.allocate(50, big=True)
        allocator.free(a, deferred=False)
        c = allocator.allocate(30, big=True)
        assert c.runs[0].start >= a.runs[0].start
        assert c.runs[0].end <= a.runs[0].end

    def test_fragmented_hole_yields_multiple_runs(self, setup):
        _, vam, allocator = setup
        chunks = [allocator.allocate(10, big=True) for _ in range(6)]
        for chunk in chunks[::2]:
            allocator.free(chunk, deferred=False)
        table = allocator.allocate(25, big=True)
        assert len(table.runs) >= 2
        assert table.total_sectors == 25


class TestOverflow:
    def test_small_overflows_into_big(self, setup):
        layout, vam, allocator = setup
        # Exhaust the small area.
        vam.mark_allocated(
            Run(layout.small_area.start, layout.small_area.count)
        )
        table = allocator.allocate(5, big=False)
        assert table.total_sectors == 5
        assert table.runs[0].end <= layout.big_area.end
        assert allocator.stats.overflow_allocations == 1

    def test_volume_full_rolls_back(self, setup):
        layout, vam, allocator = setup
        free_before = vam.free_count
        with pytest.raises(VolumeFull):
            allocator.allocate(GEO.total_sectors, big=False)
        assert vam.free_count == free_before

    def test_zero_request_rejected(self, setup):
        _, _, allocator = setup
        with pytest.raises(VolumeFull):
            allocator.allocate(0, big=False)

    def test_max_runs_enforced(self, setup):
        layout, vam, allocator = setup
        # Riddle the small area with single-sector holes.
        start = layout.small_area.start
        vam.mark_allocated(Run(start, 512))
        for sector in range(start, start + 512, 2):
            vam.mark_free(Run(sector, 1))
        # Block the rest of the disk so the request must use the holes.
        blocker_small = Run(start + 512, layout.small_area.end - start - 512)
        vam.mark_allocated(blocker_small)
        vam.mark_allocated(Run(layout.big_area.start, layout.big_area.count))
        free_before = vam.free_count
        with pytest.raises(VolumeFull):
            allocator.allocate(100, big=False)  # would need 100 runs > 64
        assert vam.free_count == free_before


class TestDeferredFree:
    def test_deferred_free_goes_through_shadow(self, setup):
        _, vam, allocator = setup
        table = allocator.allocate(8, big=False)
        allocator.free(table)
        assert vam.shadow_sectors == 8
        assert not vam.is_free(table.runs[0].start)
        vam.commit_shadow()
        assert vam.is_free(table.runs[0].start)

    def test_immediate_free(self, setup):
        _, vam, allocator = setup
        table = allocator.allocate(8, big=False)
        allocator.free(table, deferred=False)
        assert vam.is_free(table.runs[0].start)

    def test_free_accepts_plain_run_list(self, setup):
        _, vam, allocator = setup
        table = allocator.allocate(3, big=False)
        allocator.free(list(table.runs), deferred=False)
        assert vam.is_free(table.runs[0].start)


class TestStats:
    def test_counters(self, setup):
        _, _, allocator = setup
        allocator.allocate(4, big=False)
        allocator.allocate(6, big=True)
        stats = allocator.stats
        assert stats.allocations == 2
        assert stats.sectors_handed_out == 10
        assert stats.runs_handed_out >= 2

    def test_fragmentation_report_keys(self, setup):
        _, _, allocator = setup
        allocator.allocate(4, big=False)
        report = allocator.fragmentation_report()
        assert "small_free_runs" in report
        assert "big_free_sectors" in report
        assert report["big_free_sectors"] > 0
