"""The read-path fault escalation ladder, rung by rung.

transient retry -> duplicate-copy repair -> (mirror fallback, covered
in tests/disk/test_mirror.py) -> degraded read-only.  Plus the replay
hazard the ladder's bookkeeping exposed: stale leader images in the
log must not be redone over reallocated sectors.
"""

from __future__ import annotations

import pytest

from repro.core.fsd import FSD
from repro.core.layout import VolumeLayout, VolumeParams
from repro.core.name_table import NameTableHome
from repro.disk.disk import SimDisk
from repro.disk.geometry import DiskGeometry
from repro.errors import DegradedVolumeError
from repro.obs import Observer

GEO = DiskGeometry(cylinders=120, heads=8, sectors_per_track=24)
PARAMS = VolumeParams(nt_pages=512, log_record_sectors=300, cache_pages=48)


@pytest.fixture
def world():
    disk = SimDisk(geometry=GEO)
    layout = VolumeLayout.compute(GEO, PARAMS)
    home = NameTableHome(disk, layout)
    return disk, layout, home


def page(byte: int) -> bytes:
    return bytes([byte]) * GEO.sector_bytes


class TestRetryRung:
    def test_transient_fault_on_both_copies_absorbed(self, world):
        """Dust on both copies: each read fails once, each retry
        succeeds — the ladder never escalates past its first rung."""
        disk, layout, home = world
        home.write_pages([(3, page(0x77))])
        addr_a, addr_b = layout.nt_page_addresses(3)
        disk.faults.damage_transient(addr_a)
        disk.faults.damage_transient(addr_b)
        assert home.read_page(3) == page(0x77)
        assert home.retries == 2
        assert home.repairs == 0

    def test_retry_costs_real_simulated_time(self, world):
        disk, layout, home = world
        home.write_pages([(3, page(0x01))])
        addr_a, _ = layout.nt_page_addresses(3)
        before = disk.clock.now_ms
        home.read_page(3)
        clean_cost = disk.clock.now_ms - before
        disk.faults.damage_transient(addr_a)
        before = disk.clock.now_ms
        home.read_page(3)
        assert disk.clock.now_ms - before > clean_cost

    def test_retry_counters_emitted(self, world):
        disk, layout, home = world
        obs = Observer()
        home.obs = obs
        home.write_pages([(4, page(0x02))])
        addr_a, _ = layout.nt_page_addresses(4)
        disk.faults.damage_transient(addr_a)
        home.read_page(4)
        counters = obs.snapshot().counters
        assert counters["ladder.retries"] == 1
        assert counters["ladder.retry_successes"] == 1


class TestRepairRung:
    def test_latent_fault_surfaces_then_repaired_from_twin(self, world):
        """A latent flaw planted long ago surfaces as permanent damage
        on read; the twin copy rebuilds it in place."""
        disk, layout, home = world
        home.write_pages([(5, page(0x33))])
        addr_a, _ = layout.nt_page_addresses(5)
        disk.faults.damage_latent(addr_a)
        assert home.read_page(5) == page(0x33)
        assert home.repairs == 1
        assert disk.faults.latent_surfaced == 1
        # Repaired for good: the next read costs no ladder work.
        assert home.read_page(5) == page(0x33)
        assert home.repairs == 1


class TestDegradedRung:
    def test_both_copies_dead_raises_degraded_not_garbage(self, world):
        """Exhausting the ladder must raise ``DegradedVolumeError`` —
        never return bytes that were not the page's contents."""
        disk, layout, home = world
        home.write_pages([(6, page(0x44))])
        addr_a, addr_b = layout.nt_page_addresses(6)
        disk.faults.damage(addr_a)
        disk.faults.damage(addr_b)
        noted: list[tuple[str, int | None]] = []
        home.on_degraded = lambda reason, site: noted.append((reason, site))
        with pytest.raises(DegradedVolumeError, match="both copies"):
            home.read_page(6)
        assert noted and "6" in noted[0][0]
        # The hook names the fault site: one of the two dead copies.
        assert noted[0][1] in (addr_a, addr_b)

    def test_fsd_flips_read_only_when_ladder_exhausts(self):
        """End to end: a mounted volume whose name-table pages all die
        serves the failure as ``DegradedVolumeError`` and then refuses
        mutations — degraded read-only, not silent corruption."""
        disk = SimDisk(geometry=GEO)
        FSD.format(disk, PARAMS)
        fs = FSD.mount(disk)
        fs.create("deg/file", b"before the fault")
        fs.force()
        layout = VolumeLayout.compute(GEO, PARAMS)
        for p in range(PARAMS.nt_pages):
            for addr in layout.nt_page_addresses(p):
                disk.faults.damaged.add(addr)
        fs.cache.discard_all()  # force the next read back to home

        with pytest.raises(DegradedVolumeError):
            fs.open("deg/file")
        assert fs.degraded
        with pytest.raises(DegradedVolumeError):
            fs.create("deg/new", b"refused")


class TestStaleLeaderReplay:
    def test_deleted_files_leader_not_redone(self):
        """Regression: the log holds a leader image for a file deleted
        before the crash.  Its sector may have been reallocated as
        plain data, so replay must skip it — the recovered name table
        vetoes addresses it no longer claims."""
        disk = SimDisk(geometry=GEO)
        FSD.format(disk, PARAMS)
        fs = FSD.mount(disk)
        fs.create("stale/victim", b"doomed")
        fs.force()
        fs.delete("stale/victim")
        fs.force()
        fs.crash()

        obs = Observer()
        recovered = FSD.mount(disk, obs=obs)
        counters = obs.snapshot().counters
        assert counters.get("recovery.stale_leaders_skipped", 0) >= 1
        assert recovered.list() == []

    def test_reused_sector_contents_survive_replay(self):
        """The concrete corruption the skip prevents: delete a file,
        let a new file's data land on the freed sectors, crash —
        replay must leave the new file's bytes alone."""
        disk = SimDisk(geometry=GEO)
        FSD.format(disk, PARAMS)
        fs = FSD.mount(disk)
        fs.create("reuse/old", b"x" * 900)
        fs.force()
        fs.delete("reuse/old")
        fs.force()
        # Fill the freed sectors (first-fit reuses them promptly).
        contents = {}
        for index in range(6):
            name = f"reuse/new{index}"
            contents[name] = bytes([0x60 + index]) * 700
            fs.create(name, contents[name])
        fs.force()
        fs.crash()

        recovered = FSD.mount(disk)
        for name, data in contents.items():
            assert recovered.read(recovered.open(name)) == data
